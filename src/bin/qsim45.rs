//! `qsim45` — command-line driver for the workspace.
//!
//! ```text
//! qsim45 plan   --rows 9 --cols 5 --depth 25 --local 30 [--kmax 4]
//! qsim45 run    --rows 4 --cols 5 --depth 25 [--ranks 4] [--backend mem|ooc]
//!               [--precision f64|f32] [--compress none|shuffle-rle|lossy-<bits>]
//!               [--schedule greedy|search] [--schedule-cache DIR]
//!               [--search-budget N]
//!               [--checkpoint-dir DIR [--resume]]
//!               [--trace-out trace.json] [--metrics-out metrics.json]
//!               [--status-addr HOST:PORT] [--progress]
//! qsim45 sample --rows 4 --cols 4 --depth 25 --shots 16
//! qsim45 kernels [--state-qubits 22]
//! ```
//!
//! `plan` works at the paper's full scale (pure pre-computation); `run`
//! allocates amplitudes and should stay ≤ ~26 qubits on a laptop.
//!
//! `--precision f32` runs the whole hot path — compiled stages, swap
//! wire format, OOC chunk files — in single precision (§5 of the
//! paper: half the bytes per amplitude end to end). The default `f64`
//! path is bit-identical to the pre-tiering engine. Checkpoints record
//! the precision; resuming across precisions is rejected.
//!
//! `--compress` (OOC backend only) selects the chunk codec on the IO
//! path: `shuffle-rle` is lossless — the simulated state is bit-exact —
//! while `lossy-<bits>` additionally truncates that many low mantissa
//! bits before encoding. Encoding happens on the writeback thread and
//! decoding on the prefetch thread, so with the pipeline enabled the
//! codec hides behind compute. Checkpoints record the codec; resuming
//! across codecs is rejected. Composes with `--precision`.
//!
//! `--schedule search` runs the cost-model-guided schedule search on
//! top of the greedy planner (greedy stays the floor: a searched plan is
//! adopted only when its modeled cost is strictly lower).
//! `--schedule-cache DIR` stores the result keyed by the greedy plan's
//! fingerprint, so a second run of the same circuit family skips both
//! the search and the tile-size autotune probe (`sched.cache_hit` in
//! the metrics snapshot); corrupted cache artifacts are rejected and
//! rewritten. `--search-budget N` caps the extra planning evaluations.
//!
//! `--checkpoint-dir` makes the run crash-recoverable: every engine
//! publishes an atomic manifest per completed unit of work (stage,
//! stage run, or streaming pass), and `--resume` picks the run back up
//! from the last one — bit-exact with an uninterrupted run. A missing
//! manifest under `--resume` is a fresh start, so the flag pair is safe
//! to use unconditionally in retry loops.
//!
//! `--trace-out` writes a Chrome `trace_event` timeline of the run (one
//! track per rank / pipeline thread; open in `chrome://tracing` or
//! <https://ui.perfetto.dev>); `--metrics-out` writes the flat metrics
//! snapshot. Either flag enables telemetry for the run.
//!
//! `--status-addr HOST:PORT` serves the run live over HTTP while it
//! executes: `/metrics` is a Prometheus text exposition of every
//! counter/gauge/histogram (with `_approx` quantile summaries), and
//! `/status` is a JSON document with the run phase, progress fraction,
//! cost-model-anchored ETA, and per-rank / per-pipeline-thread live
//! gauges. Port `0` binds an ephemeral port; the chosen address is
//! printed on startup. `--progress` prints a one-line progress/ETA
//! report to stderr every ticker beat. Either flag enables telemetry.
//!
//! Any `run` with telemetry enabled also arms a crash **flight
//! recorder**: on a panic, a rank failure (fabric poisoning), a run
//! error, or SIGTERM, the final spans, the metrics snapshot, and a
//! rolling window of recent snapshots are written to `FLIGHT.json` —
//! next to the checkpoint manifest when `--checkpoint-dir` is set, else
//! in the working directory. A clean exit writes nothing.

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::observables::sample_bitstrings;
use qsim45::core::{
    Backend, BackendStats, DistBackend, DistConfig, DistSimulator, ScheduleMode, SingleBackend,
    SingleNodeSimulator,
};
use qsim45::kernels::apply::KernelConfig;
use qsim45::kernels::SweepDispatch;
use qsim45::ooc::{OocBackend, OocConfig, OocSimulator};
use qsim45::sched::{global_gate_count, plan, SchedulerConfig, SearchConfig};
use qsim45::telemetry::Telemetry;
use qsim45::util::Xoshiro256;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "plan" => cmd_plan(),
        "run" => cmd_run(),
        "sample" => cmd_sample(),
        "kernels" => cmd_kernels(),
        _ => {
            eprintln!("usage: qsim45 <plan|run|sample|kernels> [options]");
            eprintln!("  plan   --rows R --cols C --depth D --local L [--kmax K]");
            eprintln!("  run    --rows R --cols C --depth D [--ranks N] [--backend mem|ooc]");
            eprintln!("         [--precision f64|f32] [--compress none|shuffle-rle|lossy-<bits>]");
            eprintln!(
                "         [--schedule greedy|search] [--schedule-cache DIR] [--search-budget N]"
            );
            eprintln!("         [--checkpoint-dir DIR [--resume]]");
            eprintln!("         [--status-addr HOST:PORT] [--progress]");
            eprintln!("  sample --rows R --cols C --depth D [--shots S] [--seed X]");
            eprintln!("  kernels [--state-qubits N]");
            std::process::exit(2);
        }
    }
}

fn arg(name: &str, default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("bad value for {name}"));
        }
    }
    default
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned().unwrap_or_else(|| default.into());
        }
    }
    default.into()
}

fn arg_opt(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Write the requested telemetry exports after a `run`.
fn write_exports(t: &Telemetry, trace: &Option<String>, metrics: &Option<String>) {
    if let Some(p) = trace {
        t.write_chrome_trace(std::path::Path::new(p))
            .expect("write --trace-out");
        println!("trace       : {p}");
    }
    if let Some(p) = metrics {
        t.write_metrics(std::path::Path::new(p))
            .expect("write --metrics-out");
        println!("metrics     : {p}");
    }
}

fn spec() -> SupremacySpec {
    SupremacySpec {
        rows: arg("--rows", 4),
        cols: arg("--cols", 5),
        depth: arg("--depth", 25),
        seed: arg("--seed", 0) as u64,
    }
}

fn cmd_plan() {
    let s = spec();
    let n = s.n_qubits();
    let l = arg("--local", n.saturating_sub(2).max(1));
    let kmax = arg("--kmax", 4);
    let circuit = supremacy_circuit(&s);
    let t0 = std::time::Instant::now();
    let schedule = plan(&circuit, &SchedulerConfig::distributed(l, kmax));
    let dt = t0.elapsed().as_secs_f64();
    schedule.verify(&circuit);
    println!(
        "{}x{} = {n} qubits, depth {}, {} gates",
        s.rows,
        s.cols,
        s.depth,
        circuit.len()
    );
    println!("local qubits    : {l} ({} ranks)", 1u64 << (n - l));
    println!("swaps           : {}", schedule.n_swaps());
    println!(
        "clusters        : {} ({:.1} gates/cluster, kmax {kmax})",
        schedule.n_clusters(),
        schedule.gates_per_cluster()
    );
    println!("diagonal ops    : {}", schedule.n_diagonal_ops());
    println!(
        "per-gate scheme : {} comm steps (worst case)",
        global_gate_count(&circuit, l, true)
    );
    println!("plan time       : {dt:.3} s");
}

fn cmd_run() {
    match arg_str("--precision", "f64").as_str() {
        "f64" => run_at::<f64>(),
        "f32" => run_at::<f32>(),
        other => {
            eprintln!("bad --precision '{other}' (expected f64 or f32)");
            std::process::exit(2);
        }
    }
}

/// The `run` subcommand at working precision `R` — one code path for
/// both tiers; `R = f64` is bit-identical to the pre-tiering driver.
fn run_at<R: SweepDispatch>() {
    let s = spec();
    let n = s.n_qubits();
    assert!(
        n <= 28,
        "run allocates 2^{n} amplitudes; use `plan` for full scale"
    );
    let ranks = arg("--ranks", 1) as usize;
    let backend = arg_str("--backend", "mem");
    let trace_out = arg_opt("--trace-out");
    let metrics_out = arg_opt("--metrics-out");
    let checkpoint_dir = arg_opt("--checkpoint-dir");
    let resume = flag("--resume");
    if resume && checkpoint_dir.is_none() {
        // Silently ignoring the flag would rerun from scratch while the
        // caller believes they resumed — make it a hard usage error.
        eprintln!("--resume requires --checkpoint-dir (no directory to resume from)");
        std::process::exit(2);
    }
    let status_addr = arg_opt("--status-addr");
    let progress = flag("--progress");
    let telemetry =
        if trace_out.is_some() || metrics_out.is_some() || status_addr.is_some() || progress {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
    // Crash flight recorder: armed for the whole run whenever telemetry
    // is on, disarmed only on a clean exit. Lands next to the checkpoint
    // manifest when there is one, else in the working directory.
    let recorder = telemetry.is_enabled().then(|| {
        let dir = checkpoint_dir
            .as_deref()
            .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from);
        let rec = qsim45::telemetry::FlightRecorder::new(telemetry.clone(), dir);
        qsim45::telemetry::recorder::arm_process(&rec);
        qsim45::telemetry::recorder::install_sigterm_recorder();
        rec
    });
    let _status = status_addr.as_deref().map(|addr| {
        let srv =
            qsim45::telemetry::StatusServer::bind(telemetry.clone(), addr).unwrap_or_else(|e| {
                eprintln!("status: cannot bind {addr}: {e}");
                std::process::exit(2);
            });
        // Printed before the run starts so a harness using port 0 can
        // discover the ephemeral port and poll mid-run.
        println!("status      : listening on http://{}", srv.local_addr());
        srv
    });
    let _ticker = telemetry.is_enabled().then(|| {
        qsim45::telemetry::ProgressTicker::spawn(
            telemetry.clone(),
            recorder.clone(),
            progress,
            std::time::Duration::from_millis(500),
        )
    });
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("run failed: {e}");
        let _ = qsim45::telemetry::recorder::flush_armed(&format!("error: {e}"));
        std::process::exit(1);
    };
    let disarm = || {
        if let Some(r) = &recorder {
            r.disarm();
        }
        qsim45::telemetry::recorder::disarm_process();
    };
    let schedule_mode = {
        let v = arg_str("--schedule", "greedy");
        ScheduleMode::parse(&v).unwrap_or_else(|| {
            eprintln!("bad --schedule '{v}' (expected greedy or search)");
            std::process::exit(2);
        })
    };
    let schedule_cache = arg_opt("--schedule-cache").map(std::path::PathBuf::from);
    let search_budget = arg("--search-budget", SearchConfig::default().budget as u32) as usize;
    let circuit = supremacy_circuit(&s);
    let kmax = arg("--kmax", 4);
    let compress = if backend == "ooc" {
        qsim45::ooc::Codec::parse(&arg_str("--compress", "none")).unwrap_or_else(|e| {
            eprintln!("bad --compress: {e}");
            std::process::exit(2);
        })
    } else {
        qsim45::ooc::Codec::None
    };

    // One dispatch for all three engines: build the Backend, point it at
    // the checkpoint directory, plan, run. Everything below the match is
    // engine-agnostic.
    let single = ranks == 1 && backend == "mem";
    let mut engine: Box<dyn Backend<R>> = if single {
        Box::new(SingleBackend::new(SingleNodeSimulator {
            telemetry: telemetry.clone(),
            schedule_mode,
            schedule_cache,
            search_budget,
            ..Default::default()
        }))
    } else if backend == "ooc" {
        let sim = OocSimulator::<R>::new(OocConfig {
            telemetry: telemetry.clone(),
            compress,
            ..Default::default()
        });
        let mut b = OocBackend::new(sim, ranks);
        b.kmax = kmax;
        b.schedule_mode = schedule_mode;
        b.schedule_cache = schedule_cache;
        b.search_budget = search_budget;
        Box::new(b)
    } else {
        let sim = DistSimulator::new(DistConfig {
            n_ranks: ranks,
            kernel: KernelConfig {
                threads: 1,
                ..KernelConfig::default()
            },
            telemetry: telemetry.clone(),
            // A rank death flushes the flight record from the dying
            // rank's own thread, before the poison wakes its peers.
            poison_hook: recorder.as_ref().map(|r| {
                let r = r.clone();
                std::sync::Arc::new(move |rank: usize| {
                    let _ = r.flush(&format!("fabric poisoned by rank {rank}"));
                }) as qsim45::net::PoisonHook
            }),
            ..Default::default()
        });
        let mut b = DistBackend::new(sim);
        b.kmax = kmax;
        b.schedule_mode = schedule_mode;
        b.schedule_cache = schedule_cache;
        b.search_budget = search_budget;
        Box::new(b)
    };
    if let Some(d) = &checkpoint_dir {
        let d = std::path::Path::new(d);
        if resume {
            engine.resume(d);
        } else {
            engine.checkpoint(d);
        }
    }

    let plan = engine.plan(&circuit).unwrap_or_else(|e| fail(&e));
    if !single {
        println!(
            "schedule    : {} ({} swaps, {:.3} s plan{}{})",
            if schedule_mode == ScheduleMode::Search {
                "search"
            } else {
                "greedy"
            },
            plan.schedule.n_swaps(),
            plan.plan_seconds,
            if plan.cache_hit { ", cache hit" } else { "" },
            if plan.adopted {
                ", searched plan adopted"
            } else {
                ""
            },
        );
    }
    // Seed the live ETA from the plan before execution starts, so the
    // status endpoint has a cost-model prior while the state allocates.
    engine.seed_progress(&plan);
    let out = engine.run(&plan).unwrap_or_else(|e| fail(&e));

    match &out.stats {
        BackendStats::Single { .. } => {
            println!(
                "single-node ({}): {:.3} s sim, {:.3} s plan",
                R::NAME,
                out.sim_seconds,
                plan.plan_seconds
            );
        }
        BackendStats::Dist { fabric, .. } => {
            println!(
                "distributed ({ranks} ranks, {}): {:.3} s ({:.1}% comm, {} swaps)",
                R::NAME,
                out.sim_seconds,
                100.0 * fabric.max_comm_seconds / out.sim_seconds.max(1e-12),
                plan.schedule.n_swaps()
            );
        }
        BackendStats::Ooc { io, runs, .. } => {
            println!(
                "out-of-core ({} chunks, {}): {:.3} s ({} runs, {} traversals)",
                ranks,
                R::NAME,
                out.sim_seconds,
                runs,
                io.traversals
            );
            println!(
                "disk traffic: {:.1} MiB read, {:.1} MiB written, {:.0}% IO overlapped",
                io.bytes_read as f64 / (1 << 20) as f64,
                io.bytes_written as f64 / (1 << 20) as f64,
                100.0 * io.overlap_fraction()
            );
            if !compress.is_none() {
                println!(
                    "compression : {} — {:.2}x ({:.1} MiB logical -> {:.1} MiB on disk)",
                    compress.name(),
                    io.compression_ratio(),
                    io.logical_bytes_written as f64 / (1 << 20) as f64,
                    io.bytes_written as f64 / (1 << 20) as f64
                );
            }
        }
    }
    println!("entropy     : {:.6} bits", out.entropy);
    println!("norm        : {:.12}", out.norm);
    disarm();
    write_exports(&telemetry, &trace_out, &metrics_out);
}

fn cmd_sample() {
    let s = spec();
    assert!(s.n_qubits() <= 26, "sampling allocates the full state");
    let shots = arg("--shots", 16) as usize;
    let circuit = supremacy_circuit(&s);
    let out = SingleNodeSimulator::default().run(&circuit);
    let mut rng = Xoshiro256::seed_from_u64(arg("--sample-seed", 1) as u64);
    let n = s.n_qubits() as usize;
    for shot in sample_bitstrings(&out.state, &mut rng, shots) {
        println!("{shot:0n$b}");
    }
}

fn cmd_kernels() {
    let n = arg("--state-qubits", 20);
    println!("k-qubit kernel throughput, state 2^{n} (GFLOPS, low-order qubits)");
    for k in 1..=5u32 {
        let qubits: Vec<u32> = (0..k).collect();
        let m = {
            let d = 1usize << k;
            let mut rng = Xoshiro256::seed_from_u64(k as u64);
            qsim45::util::matrix::GateMatrix::from_rows(
                k,
                (0..d * d)
                    .map(|_| qsim45::util::c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                    .collect(),
            )
        };
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut state: Vec<qsim45::util::c64> = (0..1usize << n)
            .map(|_| qsim45::util::c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let cfg = KernelConfig::default();
        let t0 = std::time::Instant::now();
        let reps = 3;
        for _ in 0..reps {
            qsim45::kernels::apply_gate(&mut state, &qubits, &m, &cfg);
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        let gf = qsim45::util::flops::gate_flops(n, k) as f64 / dt / 1e9;
        println!("  k={k}: {gf:7.2} GFLOPS");
    }
}
