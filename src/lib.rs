//! Umbrella crate for the `qsim45` workspace — a from-scratch Rust
//! reproduction of Häner & Steiger, *"0.5 Petabyte Simulation of a
//! 45-Qubit Quantum Circuit"* (SC'17).
//!
//! Re-exports every member crate so examples and downstream users can
//! depend on one crate:
//!
//! * [`util`] — complex arithmetic, bit tricks, aligned storage, PRNG.
//! * [`kernels`] — the optimized k-qubit gate kernels (§3.1–3.3).
//! * [`circuit`] — circuit IR and the supremacy-circuit generator (Fig. 1).
//! * [`sched`] — stage/cluster scheduling and qubit mapping (§3.6).
//! * [`net`] — the in-process multi-rank fabric standing in for MPI (§3.4).
//! * [`core`] — single-node, distributed and baseline simulators plus
//!   observables.
//! * [`telemetry`] — structured spans, metrics and the Chrome-trace /
//!   metrics-snapshot exporters (see `DESIGN.md` §10).
//!
//! See `README.md` for a tour, `DESIGN.md` for architecture and
//! substitutions, and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use qsim_circuit as circuit;
pub use qsim_compress as compress;
pub use qsim_core as core;
pub use qsim_kernels as kernels;
pub use qsim_net as net;
pub use qsim_ooc as ooc;
pub use qsim_sched as sched;
pub use qsim_telemetry as telemetry;
pub use qsim_util as util;
