//! Noise study — one of the simulator use-cases the paper's introduction
//! names ("carrying out studies of their behavior under noise").
//!
//! Sweeps the depolarizing strength on a supremacy circuit, measuring how
//! trajectory fidelity and the cross-entropy benchmarking score decay —
//! exactly the calibration curves a quantum-hardware team would extract
//! from such a simulator.
//!
//! ```text
//! cargo run --release --example noise_study
//! ```

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::noise::{average_fidelity, predicted_fidelity, run_trajectory, NoiseModel};
use qsim45::core::observables::{linear_xeb, sample_bitstrings};
use qsim45::core::SingleNodeSimulator;
use qsim45::kernels::apply::KernelConfig;
use qsim45::util::Xoshiro256;

fn main() {
    let spec = SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 16,
        seed: 8,
    };
    let circuit = supremacy_circuit(&spec);
    let pairs: usize = circuit.gates().iter().map(|g| g.arity()).sum();
    println!(
        "{}-qubit depth-{} supremacy circuit, {} gates ({} gate-qubit pairs)\n",
        spec.n_qubits(),
        spec.depth,
        circuit.len(),
        pairs
    );

    let ideal = SingleNodeSimulator::default().run(&circuit).state;
    let kernel = KernelConfig::default();
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "p", "fidelity", "(1-p)^pairs", "XEB"
    );
    for p in [0.0, 0.001, 0.003, 0.01, 0.03] {
        let noise = NoiseModel::depolarizing(p);
        let f = average_fidelity(&circuit, &noise, 10, 7, &kernel);
        // XEB of noisy samples scored against the IDEAL distribution —
        // the experiment's supremacy metric; decays with fidelity.
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut xeb_acc = 0.0;
        let runs = 6;
        for _ in 0..runs {
            let noisy = run_trajectory(&circuit, &noise, &mut rng, &kernel);
            let samples = sample_bitstrings(&noisy, &mut rng, 300);
            xeb_acc += linear_xeb(&ideal, &samples);
        }
        println!(
            "{:>8.3} {:>12.4} {:>12.4} {:>10.3}",
            p,
            f,
            predicted_fidelity(p, pairs),
            xeb_acc / runs as f64
        );
    }
    println!("\nfidelity and XEB decay together as noise grows — the curve a");
    println!("hardware team calibrates against (paper §1: calibration,");
    println!("validation, and benchmarking of near-term devices).");
}
