//! Explore the scheduler at the paper's FULL scale (30–49 qubits):
//! scheduling never touches amplitudes, so the exact communication plans
//! of the petabyte-class runs can be reproduced on a laptop in
//! milliseconds — the paper's "1–3 seconds of Python" (§3.6.1), here in
//! Rust.
//!
//! ```text
//! cargo run --release --example schedule_explorer -- [rows] [cols] [depth] [local_qubits]
//! ```

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::sched::{global_gate_count, plan, CommStats, SchedulerConfig, StageOp};
use std::time::Instant;

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (rows, cols, depth, l) = match args.as_slice() {
        [r, c, d, l, ..] => (*r, *c, *d, *l),
        _ => (9, 5, 25, 30), // the paper's record 45-qubit configuration
    };
    let spec = SupremacySpec {
        rows,
        cols,
        depth,
        seed: 0,
    };
    let n = spec.n_qubits();
    let circuit = supremacy_circuit(&spec);
    println!(
        "{rows}x{cols} = {n} qubits, depth {depth}: {} gates; l = {l} local qubits, {} ranks",
        circuit.len(),
        1u64 << (n - l)
    );

    // The paper-faithful configuration and three ablations.
    let full = SchedulerConfig::distributed(l, 4);
    let mut no_spec = full;
    no_spec.specialize_diagonal = false;
    let mut no_search = full;
    no_search.swap_search = false;
    let naive = SchedulerConfig::naive(l, 4);

    println!(
        "\n{:<34} {:>6} {:>9} {:>13} {:>9}",
        "configuration", "swaps", "clusters", "gates/cluster", "plan[ms]"
    );
    for (name, cfg) in [
        ("full (paper defaults)", full),
        ("no diagonal specialization §3.5", no_spec),
        ("no swap search §3.6.1", no_search),
        ("naive (all optimizations off)", naive),
    ] {
        let t0 = Instant::now();
        let s = plan(&circuit, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        s.verify(&circuit);
        println!(
            "{:<34} {:>6} {:>9} {:>13.1} {:>9.1}",
            name,
            s.n_swaps(),
            s.n_clusters(),
            s.gates_per_cluster(),
            ms
        );
    }

    // Detail view of the paper-default plan.
    let s = plan(&circuit, &full);
    println!("\nstage detail (full configuration):");
    for (i, stage) in s.stages.iter().enumerate() {
        let clusters = stage
            .ops
            .iter()
            .filter(|o| matches!(o, StageOp::Cluster(_)))
            .count();
        let diags = stage.ops.len() - clusters;
        let gates: usize = stage.ops.iter().map(|o| o.gate_indices().len()).sum();
        println!(
            "  stage {i}: {gates:>4} gates in {clusters:>3} clusters + {diags:>3} specialized diagonal ops{}",
            if stage.swap.is_some() {
                "  -> global-to-local swap (one all-to-all)"
            } else {
                ""
            }
        );
    }

    let gg = global_gate_count(&circuit, l, true);
    let stats = CommStats::new(n, l, gg, s.n_swaps(), 16);
    println!("\nper-gate scheme of [5] would need {gg} communication steps;");
    println!(
        "this plan needs {} all-to-alls ({:.1} GB per node each) — expected comm reduction ≈ {:.1}x",
        s.n_swaps(),
        (1u64 << l) as f64 * 16.0 / 1e9,
        stats.expected_reduction()
    );
}
