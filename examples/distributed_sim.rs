//! Distributed simulation across simulated MPI ranks — the paper's §3.4
//! pipeline: schedule → stage kernels → global-to-local swaps as
//! all-to-alls, with communication accounting.
//!
//! ```text
//! cargo run --release --example distributed_sim -- [ranks]
//! ```
//! Runs a 20-qubit depth-25 supremacy circuit on 1..=ranks ranks
//! (default 8) and compares against the per-gate baseline of \[5\]/\[19\].

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::single::strip_initial_hadamards;
use qsim45::core::{BaselineSimulator, DistConfig, DistSimulator};
use qsim45::kernels::apply::KernelConfig;
use qsim45::sched::{plan, SchedulerConfig};

fn main() {
    let max_ranks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let spec = SupremacySpec {
        rows: 4,
        cols: 5,
        depth: 25,
        seed: 1,
    };
    let circuit = supremacy_circuit(&spec);
    let n = circuit.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&circuit);
    println!(
        "{n}-qubit depth-25 supremacy circuit, {} gates\n",
        circuit.len()
    );
    println!(
        "{:>6} {:>4} {:>6} {:>10} {:>9} {:>12} {:>9} {:>9}",
        "ranks", "l", "swaps", "bytes", "time[s]", "baseline[s]", "speedup", "entropy"
    );

    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let l = n - ranks.trailing_zeros();
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
        schedule.verify(&exec);
        let kernel = KernelConfig {
            threads: 1,
            ..KernelConfig::default()
        };
        let sim = DistSimulator::new(DistConfig {
            n_ranks: ranks,
            kernel,
            gather_state: false,
            ..Default::default()
        });
        let out = sim.run(&exec, &schedule, uniform);
        let base = BaselineSimulator::new(ranks, kernel).run(&circuit);
        assert!(
            (out.entropy - base.entropy).abs() < 1e-6,
            "engines must agree on the physics"
        );
        println!(
            "{:>6} {:>4} {:>6} {:>10} {:>9.3} {:>12.3} {:>8.1}x {:>9.4}",
            ranks,
            l,
            schedule.n_swaps(),
            out.fabric.total_bytes_sent,
            out.sim_seconds,
            base.sim_seconds,
            base.sim_seconds / out.sim_seconds.max(1e-12),
            out.entropy,
        );
        ranks *= 2;
    }
    println!("\nswap count stays flat as ranks grow (the paper's Fig. 5a");
    println!("l-independence); the scheduled engine outruns the per-gate");
    println!("baseline by roughly the comm-step ratio (paper: >10x).");
}
