//! Single-precision simulation — the paper's §5 remark:
//!
//! > "With the same amount of compute resources, the simulation of 46
//! > qubits is feasible when using single-precision floating point
//! > numbers to represent the complex amplitudes."
//!
//! Halving bytes per amplitude buys one extra qubit at fixed memory AND
//! doubles the SIMD lane count. This example quantifies both sides of
//! the trade at laptop scale: memory, speed, and the accumulated rounding
//! error after a depth-25 supremacy circuit.
//!
//! ```text
//! cargo run --release --example single_precision -- [n_qubits]
//! ```

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::single::run_single_precision;
use qsim45::core::SingleNodeSimulator;
use qsim45::kernels::apply::KernelConfig;
use std::time::Instant;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let rows = match n {
        16 => 4,
        18 => 3,
        20 => 4,
        22 => 2,
        24 => 4,
        _ => 4,
    };
    let cols = n / rows;
    let spec = SupremacySpec {
        rows,
        cols,
        depth: 25,
        seed: 46,
    };
    let n = spec.n_qubits();
    let circuit = supremacy_circuit(&spec);
    println!(
        "{n}-qubit depth-25 supremacy circuit, {} gates\n",
        circuit.len()
    );

    // Double precision.
    let t0 = Instant::now();
    let f64_out = SingleNodeSimulator::default().run(&circuit);
    let t_f64 = t0.elapsed().as_secs_f64();

    // Single precision.
    let t1 = Instant::now();
    let f32_state = run_single_precision(&circuit, 4, &KernelConfig::default());
    let t_f32 = t1.elapsed().as_secs_f64();

    let mb64 = (1u64 << n) as f64 * 16.0 / (1 << 20) as f64;
    let mb32 = mb64 / 2.0;
    println!("              f64          f32");
    println!("memory     {mb64:8.1} MiB {mb32:8.1} MiB   (one extra qubit at fixed RAM)");
    println!(
        "time       {t_f64:8.3} s   {t_f32:8.3} s   ({:.2}x)",
        t_f64 / t_f32
    );
    println!(
        "norm       {:10.8}   {:10.8}",
        f64_out.state.norm_sqr(),
        f32_state.norm_sqr()
    );
    println!(
        "entropy    {:10.6}   {:10.6}  bits",
        f64_out.state.entropy(),
        f32_state.entropy()
    );

    let mut worst = 0.0f64;
    for (a, b) in f64_out
        .state
        .amplitudes()
        .iter()
        .zip(f32_state.amplitudes())
    {
        worst = worst
            .max((a.re - b.re as f64).abs())
            .max((a.im - b.im as f64).abs());
    }
    // Amplitudes are O(2^{-n/2}); express the error relative to that.
    let typical = 1.0 / ((1u64 << n) as f64).sqrt();
    println!(
        "max |Δamp| {worst:.3e}  ({:.4} of a typical amplitude)",
        worst / typical
    );
    assert!(worst / typical < 0.05, "f32 drift too large");
    println!("\nsingle precision stays within a few percent of a typical");
    println!("amplitude after depth 25 — the §5 trade-off, validated.");
}
