//! Quickstart: build a circuit, simulate it, inspect the output.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qsim45::circuit::Circuit;
use qsim45::core::observables::{marginals, sample_bitstrings};
use qsim45::core::SingleNodeSimulator;
use qsim45::util::Xoshiro256;

fn main() {
    // A 3-qubit GHZ state: H on qubit 0, then a CNOT chain.
    let mut circuit = Circuit::new(3);
    circuit.h(0).cnot(0, 1).cnot(1, 2);

    // The single-node engine plans the circuit (gate clustering, §3.6.1)
    // and executes fused kernels (§3.1–3.3).
    let sim = SingleNodeSimulator::default();
    let out = sim.run(&circuit);

    println!("final state (|q2 q1 q0⟩ amplitudes):");
    for (i, a) in out.state.amplitudes().iter().enumerate() {
        if a.abs() > 1e-12 {
            println!("  |{i:03b}⟩  {a}");
        }
    }
    println!("norm            : {:.12}", out.state.norm_sqr());
    println!("entropy         : {:.6} bits", out.state.entropy());
    println!("P(q=1) marginals: {:?}", marginals(&out.state));
    println!(
        "schedule        : {} cluster(s), {:.1} gates/cluster",
        out.schedule.n_clusters(),
        out.schedule.gates_per_cluster()
    );

    // Sample measurement outcomes: a GHZ state yields only 000 and 111.
    let mut rng = Xoshiro256::seed_from_u64(7);
    let shots = sample_bitstrings(&out.state, &mut rng, 10);
    println!("10 shots        : {shots:?}");
    assert!(shots.iter().all(|&s| s == 0 || s == 7));
}
