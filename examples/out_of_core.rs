//! Out-of-core simulation — the paper's §5 outlook, demonstrated: run a
//! supremacy circuit whose state lives on disk, touching the slow tier a
//! constant number of times thanks to the 2-swap schedules.
//!
//! ```text
//! cargo run --release --example out_of_core -- [n_qubits] [chunk_qubits]
//! ```
//! Defaults: 18 qubits total, 2^15-amplitude chunks (8 chunk files).

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::single::{strip_initial_hadamards, SingleNodeSimulator};
use qsim45::sched::{plan, SchedulerConfig};
use qsim_ooc::{OocSimulator, ScratchDir};

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (rows, cols, l) = match args.as_slice() {
        [n, l, ..] => {
            let rows = (*n as f64).sqrt().round() as u32;
            (rows, n / rows, *l)
        }
        _ => (3, 6, 15),
    };
    let spec = SupremacySpec {
        rows,
        cols,
        depth: 25,
        seed: 45,
    };
    let n = spec.n_qubits();
    let g = n - l;
    let circuit = supremacy_circuit(&spec);
    let (exec, uniform) = strip_initial_hadamards(&circuit);
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
    println!(
        "{n}-qubit depth-25 circuit, state on disk as {} chunks of {} MiB",
        1u32 << g,
        (1u64 << l) * 16 / (1 << 20)
    );
    println!(
        "schedule: {} stages, {} global-to-local swaps (external all-to-alls)",
        schedule.stages.len(),
        schedule.n_swaps()
    );

    let dir = ScratchDir::new("demo");
    let mut sim = OocSimulator::<f64>::default();
    let out = sim
        .run(dir.path(), &schedule, uniform)
        .expect("out-of-core run failed");
    println!("\nout-of-core run (batched + pipelined):");
    println!("  time      : {:.2} s", out.sim_seconds);
    println!(
        "  runs      : {} (one state traversal per swap boundary; {} traversals total)",
        out.runs, out.io.traversals
    );
    println!(
        "  overlap   : {:.0}% of IO hidden behind compute",
        100.0 * out.io.overlap_fraction()
    );
    println!(
        "  disk read : {:.1} MiB",
        out.io.bytes_read as f64 / (1 << 20) as f64
    );
    println!(
        "  disk write: {:.1} MiB",
        out.io.bytes_written as f64 / (1 << 20) as f64
    );
    let state_mb = (1u64 << n) as f64 * 16.0 / (1 << 20) as f64;
    println!(
        "  traffic   : {:.1}x the state size (constant in circuit depth!)",
        (out.io.bytes_read + out.io.bytes_written) as f64 / (1 << 20) as f64 / state_mb
    );
    println!("  norm      : {:.10}", out.norm);
    println!("  entropy   : {:.5} bits", out.entropy);

    // Cross-check against the in-memory engine.
    let single = SingleNodeSimulator::default().run(&circuit);
    assert!((single.state.entropy() - out.entropy).abs() < 1e-8);
    println!("\nmatches the in-memory engine to 1e-8 bits of entropy.");
}
