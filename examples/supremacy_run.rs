//! Simulate a quantum supremacy circuit end to end on one node — the
//! workload of the paper's §4 — and verify its output statistics against
//! the Porter–Thomas predictions used for supremacy benchmarking.
//!
//! ```text
//! cargo run --release --example supremacy_run -- [rows] [cols] [depth]
//! ```
//! Defaults: a 4×5 grid (20 qubits), depth 25 — the paper's depth at a
//! laptop-friendly width.

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::observables::{linear_xeb, porter_thomas_entropy_gap, sample_bitstrings};
use qsim45::core::SingleNodeSimulator;
use qsim45::util::Xoshiro256;
use std::time::Instant;

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (rows, cols, depth) = match args.as_slice() {
        [r, c, d, ..] => (*r, *c, *d),
        _ => (4, 5, 25),
    };
    let spec = SupremacySpec {
        rows,
        cols,
        depth,
        seed: 2017,
    };
    let n = spec.n_qubits();
    println!("generating a {rows}x{cols} ({n}-qubit) depth-{depth} supremacy circuit");
    let circuit = supremacy_circuit(&spec);
    println!(
        "  {} gates ({} CZ, {} single-qubit)",
        circuit.len(),
        circuit.count(|g| matches!(g, qsim45::circuit::Gate::CZ(_, _))),
        circuit.count(|g| g.arity() == 1),
    );

    let sim = SingleNodeSimulator::default();
    let t0 = Instant::now();
    let out = sim.run(&circuit);
    println!(
        "simulated in {:.2} s ({:.3} s planning, {} clusters, {:.1} gates/cluster)",
        t0.elapsed().as_secs_f64(),
        out.plan_seconds,
        out.schedule.n_clusters(),
        out.schedule.gates_per_cluster()
    );

    println!("norm    : {:.12}", out.state.norm_sqr());
    let h = out.state.entropy();
    println!(
        "entropy : {h:.4} bits (Porter–Thomas expects ≈ {:.4})",
        n as f64 - 0.6099
    );
    println!(
        "PT gap  : {:+.4} bits",
        porter_thomas_entropy_gap(&out.state)
    );

    // Cross-entropy benchmarking: sampling this distribution from itself
    // must score near 1 (the supremacy experiment's success criterion).
    let mut rng = Xoshiro256::seed_from_u64(99);
    let samples = sample_bitstrings(&out.state, &mut rng, 2000);
    println!(
        "linear XEB (own samples): {:.3} (ideal ≈ 1)",
        linear_xeb(&out.state, &samples)
    );
    let uniform: Vec<usize> = (0..2000)
        .map(|_| rng.next_below(out.state.len() as u64) as usize)
        .collect();
    println!(
        "linear XEB (uniform)    : {:.3} (ideal ≈ 0)",
        linear_xeb(&out.state, &uniform)
    );
}
