//! Gate-level QFT vs FFT emulation — the paper's §1 contrast (ref \[7\]):
//! emulation shortcuts beat gate-by-gate simulation when an operation's
//! action is known in advance, but supremacy circuits admit no shortcut.
//!
//! ```text
//! cargo run --release --example qft_emulation -- [n_qubits]
//! ```

use qsim45::circuit::algorithms::{brickwork_1d, qft};
use qsim45::core::emulate::emulate_qft;
use qsim45::core::{SingleNodeSimulator, StateVector};
use qsim45::kernels::apply::KernelConfig;
use qsim45::util::complex::max_dist;
use std::time::Instant;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    println!("QFT on {n} qubits: gate-level kernels vs FFT emulation\n");

    // A scrambled input state (emulation must work on arbitrary states).
    let input = SingleNodeSimulator::default()
        .run(&brickwork_1d(n, 6, 1))
        .state;

    // Gate-level execution through the fused-kernel engine.
    let circuit = qft(n);
    println!(
        "gate-level circuit: {} gates ({} H, {} controlled-phase, {} swap)",
        circuit.len(),
        n,
        n * (n - 1) / 2,
        n / 2
    );
    let mut gate_state = StateVector::from_amplitudes(input.amplitudes().to_vec());
    let cfg = KernelConfig::default();
    let t0 = Instant::now();
    for g in circuit.gates() {
        let m: qsim45::util::matrix::GateMatrix<f64> = g.matrix();
        if let Some(d) = m.as_diagonal() {
            gate_state.apply_diagonal(&g.qubits(), &d);
        } else {
            gate_state.apply(&g.qubits(), &m, &cfg);
        }
    }
    let t_gates = t0.elapsed().as_secs_f64();

    // FFT emulation.
    let mut fft_state = StateVector::from_amplitudes(input.amplitudes().to_vec());
    let t1 = Instant::now();
    emulate_qft(&mut fft_state);
    let t_fft = t1.elapsed().as_secs_f64();

    let dist = max_dist(gate_state.amplitudes(), fft_state.amplitudes());
    println!("gate-level : {t_gates:.4} s");
    println!(
        "emulated   : {t_fft:.4} s  ({:.1}x faster)",
        t_gates / t_fft
    );
    println!("max |Δamp| : {dist:.2e}");
    assert!(
        dist < 1e-8,
        "emulation must agree with gate-level execution"
    );
    println!("\nsupremacy circuits are *designed* so no such shortcut exists —");
    println!("which is why the paper's kernels/scheduling matter (§1).");
}
