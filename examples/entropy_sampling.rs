//! The §4.2.2 measurement, scaled down: compute the entropy of a
//! supremacy circuit's output distribution on the distributed engine,
//! timing simulation and the final entropy reduction separately (the
//! paper: "99 seconds, of which 90.9 s simulation and 8.1 s entropy"),
//! then cross-check entropy and samples against a single-node run.
//!
//! ```text
//! cargo run --release --example entropy_sampling
//! ```

use qsim45::circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim45::core::observables::{entropy_of, sample_bitstrings};
use qsim45::core::single::strip_initial_hadamards;
use qsim45::core::{DistConfig, DistSimulator, SingleNodeSimulator};
use qsim45::kernels::apply::KernelConfig;
use qsim45::sched::{plan, SchedulerConfig};
use qsim45::util::Xoshiro256;

fn main() {
    let spec = SupremacySpec {
        rows: 4,
        cols: 4,
        depth: 25,
        seed: 36,
    };
    let circuit = supremacy_circuit(&spec);
    let n = circuit.n_qubits();
    println!("{n}-qubit depth-25 supremacy circuit (Edison §4.2.2, scaled)\n");

    // Distributed run on 4 ranks, entropy via all-reduce.
    let (exec, uniform) = strip_initial_hadamards(&circuit);
    let schedule = plan(&exec, &SchedulerConfig::distributed(n - 2, 4));
    let sim = DistSimulator::new(DistConfig {
        n_ranks: 4,
        kernel: KernelConfig {
            threads: 1,
            ..KernelConfig::default()
        },
        gather_state: true,
        ..Default::default()
    });
    let out = sim.run(&exec, &schedule, uniform);
    println!("distributed (4 ranks):");
    println!(
        "  simulation : {:.4} s",
        out.sim_seconds - out.entropy_seconds
    );
    println!(
        "  entropy    : {:.4} s (final reduction)",
        out.entropy_seconds
    );
    println!("  H          = {:.6} bits", out.entropy);
    println!(
        "  comm       : {:.1} %",
        100.0 * out.fabric.max_comm_seconds / out.sim_seconds
    );

    // Single-node cross-check.
    let single = SingleNodeSimulator::default().run(&circuit);
    println!("\nsingle-node cross-check:");
    println!("  H          = {:.6} bits", single.state.entropy());
    assert!((single.state.entropy() - out.entropy).abs() < 1e-8);

    // The gathered distributed state matches, amplitude for amplitude.
    let gathered = out.state.expect("gather_state requested");
    let dist_probs: Vec<f64> = gathered.iter().map(|a| a.norm_sqr()).collect();
    assert!((entropy_of(&dist_probs) - out.entropy).abs() < 1e-9);

    // Sample bitstrings (what a supremacy experiment would measure).
    let mut rng = Xoshiro256::seed_from_u64(1);
    let shots = sample_bitstrings(&single.state, &mut rng, 8);
    println!("\n8 sampled bitstrings:");
    for s in shots {
        println!(
            "  |{s:0width$b}⟩  p = {:.3e}",
            dist_probs[s],
            width = n as usize
        );
    }
    println!("\nengines agree to 1e-8 bits — the §4.2.2 pipeline, reproduced.");
}
