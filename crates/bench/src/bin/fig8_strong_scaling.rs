//! Fig. 8 — strong scaling of the distributed simulator.
//!
//! The paper runs a 36-qubit circuit on {16, 32, 64} and a 42-qubit
//! circuit on {1024, 2048, 4096} Cori II nodes and reports near-ideal
//! speedups (kernel time shrinks with local size; the swap count stays
//! constant thanks to the scheduler's l-independence, Fig. 5a). Scaled
//! here: one circuit on {2, 4, 8} ranks and a larger one on {4, 8, 16}
//! ranks of the in-process fabric. The reproduced *shape*: wall-clock
//! decreases with rank count at fixed problem size, while the swap count
//! stays flat.
//!
//! Caveat recorded in EXPERIMENTS.md: the host has 2 physical cores, so
//! ranks beyond 2 time-share; speedups here are sub-ideal by
//! construction, and the flat swap count is the load-bearing claim.

use qsim_bench::harness::*;
use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::single::strip_initial_hadamards;
use qsim_core::{DistConfig, DistSimulator};
use qsim_kernels::apply::KernelConfig;
use qsim_sched::{plan, SchedulerConfig};

fn main() {
    let kmax = arg_u32("--kmax", 4);
    // (label, rows, cols, depth, rank counts)
    let cases: [(&str, u32, u32, u32, &[usize]); 2] = [
        ("36q-scaled (4x5)", 4, 5, 25, &[2, 4, 8]),
        ("42q-scaled (5x5)", 5, 5, 25, &[4, 8, 16]),
    ];
    println!("# Fig. 8 — multi-rank strong scaling (threads simulate ranks)");
    row(&[
        cell("circuit", 18),
        cell("ranks", 6),
        cell("l", 4),
        cell("swaps", 6),
        cell("time[s]", 9),
        cell("comm[s]", 9),
        cell("speedup", 8),
    ]);
    for (label, rows, cols, depth, rank_counts) in cases {
        let c = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth,
            seed: 0,
        });
        let n = c.n_qubits();
        let (exec, uniform) = strip_initial_hadamards(&c);
        let mut base_time = 0.0;
        for &ranks in rank_counts {
            let g = ranks.trailing_zeros();
            let l = n - g;
            let schedule = plan(&exec, &SchedulerConfig::distributed(l, kmax));
            let sim = DistSimulator::new(DistConfig {
                n_ranks: ranks,
                kernel: KernelConfig {
                    threads: 1,
                    ..KernelConfig::default()
                },
                gather_state: false,
                ..Default::default()
            });
            let out = sim.run(&exec, &schedule, uniform);
            if ranks == rank_counts[0] {
                base_time = out.sim_seconds;
            }
            row(&[
                cell(label, 18),
                cell(ranks, 6),
                cell(l, 4),
                cell(schedule.n_swaps(), 6),
                cell(format!("{:.3}", out.sim_seconds), 9),
                cell(format!("{:.3}", out.fabric.max_comm_seconds), 9),
                cell(format!("{:.2}x", base_time / out.sim_seconds), 8),
            ]);
        }
    }
    println!("# paper shape: near-ideal speedup with node count; the swap count");
    println!("# is independent of the rank count (the l-independence of Fig. 5a).");
}
