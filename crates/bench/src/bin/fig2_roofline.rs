//! Fig. 2 (a/b) — roofline placement of the 1- and 4-qubit kernels across
//! the optimization steps of §3.1–3.2.
//!
//! The paper's steps:
//!   step 0  two-vector textbook product (the pre-"step 1" baseline)
//!   step 1  in-place / lazy evaluation (halves traffic)
//!   step 2  + explicit vectorization of Eq. (1) (mul/permute/hadd lanes)
//!   step 3  + Eq. (2)–(3) re-ordering, register blocking, packed matrix
//!
//! Prints operational intensity (FLOP/byte) and measured GFLOPS per
//! (kernel, step), plus the memory-bandwidth roofline bound for this host
//! (estimated via a stream-like triad sweep). Shape to compare with the
//! paper: monotone improvement per step, 1-qubit kernel pinned to the
//! bandwidth roof, 4-qubit kernel ~8× higher intensity.

use qsim_bench::harness::*;
use qsim_kernels::apply::{KernelConfig, OptLevel, Simd};
use qsim_util::flops::{operational_intensity, roofline_bound};
use qsim_util::stats::{black_box, summarize, time_reps};

fn main() {
    let n = arg_u32("--state-qubits", 22);
    let threads = arg_u32("--threads", 1) as usize;
    println!("# Fig. 2 roofline — state 2^{n}, {threads} thread(s)");

    // Host bandwidth estimate (triad: a[i] = b[i] + s*c[i]).
    let bw = triad_bandwidth_gbs(n);
    println!("# stream-triad bandwidth ≈ {bw:.1} GB/s");
    println!(
        "# AVX2+FMA available: {}",
        qsim_kernels::avx::avx2_available()
    );
    row(&[
        cell("kernel", 8),
        cell("step", 24),
        cell("OI[F/B]", 9),
        cell("GFLOPS", 9),
        cell("roof[GFLOPS]", 13),
    ]);

    let steps: [(&str, KernelConfig); 4] = [
        (
            "0 two-vector",
            KernelConfig {
                opt: OptLevel::TwoVector,
                simd: Simd::Scalar,
                block: 1,
                threads,
            },
        ),
        (
            "1 in-place (lazy)",
            KernelConfig {
                opt: OptLevel::InPlace,
                simd: Simd::Scalar,
                block: 1,
                threads,
            },
        ),
        (
            "2 +vectorized Eq.(1)",
            // Marker config: the measurement below routes this step to
            // the dedicated Eq.-(1) SIMD kernel.
            KernelConfig {
                opt: OptLevel::Fma,
                simd: Simd::Auto,
                block: 1,
                threads,
            },
        ),
        (
            "3 +blocked/AVX2",
            KernelConfig {
                opt: OptLevel::Blocked,
                simd: Simd::Auto,
                block: 4,
                threads,
            },
        ),
    ];

    for k in [1u32, 4] {
        let qubits = low_order_qubits(k);
        // Two-vector traffic is 3 passes; in-place is 2.
        for (name, cfg) in &steps {
            let gf = if name.starts_with("2 ") {
                let m = random_gate(k, 0xbeef ^ k as u64);
                measure_fn_gflops(n, &qubits, 1, 3, |state, qs| {
                    qsim_kernels::avx::apply_avx_eq1(state, qs, &m);
                })
            } else {
                measure_kernel_gflops(n, &qubits, cfg, 1, 3)
            };
            let oi = match cfg.opt {
                OptLevel::TwoVector => qsim_util::flops::flops_per_amplitude(k) as f64 / 48.0,
                _ => operational_intensity(k, 8),
            };
            let roof = roofline_bound(f64::INFINITY, bw, oi);
            row(&[
                cell(format!("k={k}"), 8),
                cell(*name, 24),
                cell(format!("{oi:.3}"), 9),
                cell(format!("{gf:.2}"), 9),
                cell(format!("{roof:.1}"), 13),
            ]);
        }
    }
    println!("# paper shape: each step raises GFLOPS; k=1 saturates the bandwidth");
    println!("# roof while k=4 gains ~8x intensity and runs well above it.");
}

/// Estimate sustainable memory bandwidth with a triad sweep (GB/s).
fn triad_bandwidth_gbs(n: u32) -> f64 {
    let len = 1usize << n; // f64 elements
    let b = vec![1.0f64; len];
    let c = vec![2.0f64; len];
    let mut a = vec![0.0f64; len];
    let t = summarize(&time_reps(1, 3, || {
        for i in 0..len {
            a[i] = b[i] + 3.0 * c[i];
        }
        black_box(&a);
    }))
    .median;
    // 3 arrays × 8 bytes (+ write-allocate ignored).
    (3 * len * 8) as f64 / t / 1e9
}
