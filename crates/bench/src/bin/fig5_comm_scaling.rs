//! Fig. 5 (a/b) — required communication vs circuit depth and vs qubit
//! count, at the paper's FULL scale (scheduling is pure pre-computation).
//!
//! Upper panels: number of global-to-local swaps from our scheduler
//! (worst-case stage finding, as in the paper). Lower panels: number of
//! global gates the per-gate scheme of \[5\] would communicate for —
//! dashed = worst case (random 1q gates assumed dense), solid = the
//! actual ("median") instance.
//!
//! `fig5_comm_scaling depth` sweeps depth 10..50 on 42-qubit circuits for
//! 29–32 local qubits (Fig. 5a); `fig5_comm_scaling qubits` sweeps
//! {30, 36, 42, 45, 49} qubits at depth 25 (Fig. 5b). Default: both.

use qsim_bench::harness::*;
use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_sched::{global_gate_count, plan, SchedulerConfig};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let kmax = arg_u32("--kmax", 4);
    let seed = arg_u32("--seed", 0) as u64;
    if mode == "depth" || mode == "both" {
        fig5a(kmax, seed);
    }
    if mode == "qubits" || mode == "both" {
        fig5b(kmax, seed);
    }
}

fn fig5a(kmax: u32, seed: u64) {
    println!("# Fig. 5a — 42-qubit (7x6) circuits, depth 10..50");
    row(&[
        cell("depth", 6),
        cell("l=29", 6),
        cell("l=30", 6),
        cell("l=31", 6),
        cell("l=32", 6),
        cell("gg-worst", 9),
        cell("gg-median", 10),
    ]);
    for depth in (10..=50).step_by(5) {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 7,
            cols: 6,
            depth,
            seed,
        });
        let mut cells = vec![cell(depth, 6)];
        for l in [29u32, 30, 31, 32] {
            let s = plan(&c, &SchedulerConfig::distributed(l, kmax));
            cells.push(cell(s.n_swaps(), 6));
        }
        cells.push(cell(global_gate_count(&c, 30, true), 9));
        cells.push(cell(global_gate_count(&c, 30, false), 10));
        row(&cells);
    }
    println!("# paper shape: swaps grow ~1..3 over this range, mostly independent");
    println!("# of l; global gates grow ~linearly to ~200 (worst case).");
}

fn fig5b(kmax: u32, seed: u64) {
    println!("# Fig. 5b — depth-25 circuits, 30..49 qubits (30 local)");
    row(&[
        cell("grid", 6),
        cell("qubits", 7),
        cell("swaps l=29", 11),
        cell("l=30", 6),
        cell("l=31", 6),
        cell("l=32", 6),
        cell("gg-worst", 9),
        cell("gg-median", 10),
    ]);
    for (rows, cols) in [(6u32, 5u32), (6, 6), (7, 6), (9, 5), (7, 7)] {
        let n = rows * cols;
        let c = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth: 25,
            seed,
        });
        let mut cells = vec![cell(format!("{rows}x{cols}"), 6), cell(n, 7)];
        for l in [29u32, 30, 31, 32] {
            let l = l.min(n);
            if l == n {
                cells.push(cell("-", if l == 29 { 11 } else { 6 }));
                continue;
            }
            let s = plan(&c, &SchedulerConfig::distributed(l, kmax));
            cells.push(cell(s.n_swaps(), if l == 29 { 11 } else { 6 }));
        }
        let l = 30.min(n - 1).max(1);
        cells.push(cell(global_gate_count(&c, l, true), 9));
        cells.push(cell(global_gate_count(&c, l, false), 10));
        row(&cells);
    }
    println!("# paper: 1-2 swaps up to 45 qubits, 2 for 49; global gates ~50-140.");
}
