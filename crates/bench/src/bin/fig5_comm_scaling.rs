//! Fig. 5 (a/b) — required communication vs circuit depth and vs qubit
//! count, at the paper's FULL scale (scheduling is pure pre-computation).
//!
//! Upper panels: number of global-to-local swaps from our scheduler
//! (worst-case stage finding, as in the paper). Lower panels: number of
//! global gates the per-gate scheme of \[5\] would communicate for —
//! dashed = worst case (random 1q gates assumed dense), solid = the
//! actual ("median") instance.
//!
//! `fig5_comm_scaling depth` sweeps depth 10..50 on 42-qubit circuits for
//! 29–32 local qubits (Fig. 5a); `fig5_comm_scaling qubits` sweeps
//! {30, 36, 42, 45, 49} qubits at depth 25 (Fig. 5b). `fig5_comm_scaling
//! swap` executes the swap engine itself (shared-memory fabric) and
//! reports before/after bytes-copied plus the measured compute/comm
//! overlap of the fused pipelined path; knobs: `--swap-l` (local qubits,
//! default 16), `--iters` (swaps per measurement, default 8),
//! `--sub-chunks` (pipeline depth, 0 = size-based default). Default mode:
//! both scheduling panels plus the swap-engine table.

use qsim_bench::harness::*;
use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::dist::{perform_swap, perform_swap_reference, SwapBuffers};
use qsim_core::StateVector;
use qsim_net::run_cluster;
use qsim_sched::{global_gate_count, plan, SchedulerConfig, SwapOp};
use qsim_util::{c64, Xoshiro256};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let kmax = arg_u32("--kmax", 4);
    let seed = arg_u32("--seed", 0) as u64;
    if mode == "search" || arg_value("--mode").as_deref() == Some("search") {
        return search_mode(arg_value("--kmax").map(|_| kmax));
    }
    if mode == "depth" || mode == "both" {
        fig5a(kmax, seed);
    }
    if mode == "qubits" || mode == "both" {
        fig5b(kmax, seed);
    }
    if mode == "swap" || mode == "both" {
        let l = arg_u32("--swap-l", 16);
        let iters = arg_u32("--iters", 8);
        let sub_chunks = arg_u32("--sub-chunks", 0) as usize;
        swap_engine(seed, l, iters, sub_chunks);
    }
}

/// `search` mode: greedy vs cost-guided schedule search end-to-end
/// through the distributed engine at n = 22–24, cache-cold (search time
/// included in the searched wall-clock). Three rows cover the three
/// scenarios that matter:
///
/// 1. `3x8 d25, kmax 5, budget 5` — a base `kmax` set too high: the
///    beam axis corrects it to 4, which also packs into strictly fewer
///    stage passes (8 → 7) at equal swaps. The budget of 5 is exactly
///    the beam's `kmax`-neighbor sweep, making the row fully
///    deterministic: annealing relabelings can model marginally cheaper
///    than the plain corrected plan while trading the pass reduction
///    away, so the row demonstrates the beam axis in isolation;
/// 2. `4x6 d25, kmax 3, budget 16` — a base `kmax` set too low: the
///    other direction of the scenario search exists for;
/// 3. `2x11 d25, kmax 4, budget 4` — a tuned base on a shallow circuit:
///    search must at minimum not hurt it (the adoption margin keeps it
///    from chasing noise-level model deltas, and the budget scales down
///    with the problem so planning overhead stays within the ceiling).
///
/// The `kmax` rows are deliberately beam-axis wins: the beam always
/// evaluates the `kmax` neighbors, so unlike an annealing trajectory the
/// outcome does not depend on the per-host calibration details.
///
/// Rows run longest-first so the one-time cost-model calibration
/// (kernel autotune) is amortized against a long row. `--kmax K` /
/// `--depth D` / `--budget B` force one base for every row. Writes
/// `BENCH_schedule_search.json`.
fn search_mode(kmax_override: Option<u32>) {
    use qsim_bench::search_report::{run_search_bench, search_reports_to_json};
    let depth_override = arg_value("--depth").map(|_| arg_u32("--depth", 25));
    let budget_override = arg_value("--budget").map(|_| arg_u32("--budget", 16) as usize);
    let g = arg_u32("--g", 4);
    println!("# schedule search vs greedy, 2^{g} ranks");
    row(&[
        cell("n", 4),
        cell("depth", 6),
        cell("kmax", 5),
        cell("budget", 7),
        cell("swaps g/s", 10),
        cell("passes g/s", 11),
        cell("cost g/s", 16),
        cell("wall g/s (s)", 16),
        cell("ratio", 7),
        cell("adopted", 8),
    ]);
    let mut reports = Vec::new();
    for (rows, cols, base_kmax, base_depth, base_budget) in [
        (3u32, 8u32, 5u32, 25u32, 5usize),
        (4, 6, 3, 25, 16),
        (2, 11, 4, 25, 4),
    ] {
        let kmax = kmax_override.unwrap_or(base_kmax);
        let depth = depth_override.unwrap_or(base_depth);
        let budget = budget_override.unwrap_or(base_budget);
        let r = run_search_bench(rows, cols, depth, kmax, g, budget);
        row(&[
            cell(r.n_qubits, 4),
            cell(depth, 6),
            cell(kmax, 5),
            cell(budget, 7),
            cell(format!("{}/{}", r.greedy_swaps, r.search_swaps), 10),
            cell(format!("{}/{}", r.greedy_passes, r.search_passes), 11),
            cell(format!("{:.3}/{:.3}", r.greedy_cost, r.search_cost), 16),
            cell(
                format!(
                    "{:.2}/{:.2}",
                    r.greedy_total_seconds, r.search_total_seconds
                ),
                16,
            ),
            cell(format!("{:.3}", r.wall_ratio()), 7),
            cell(r.adopted, 8),
        ]);
        reports.push(r);
    }
    let json = search_reports_to_json(&reports);
    std::fs::write("BENCH_schedule_search.json", &json).expect("write BENCH_schedule_search.json");
    println!("# wrote BENCH_schedule_search.json");
    println!("# acceptance: search_cost <= greedy_cost always; wall ratio <= 1.02 cold-cache.");
}

fn fig5a(kmax: u32, seed: u64) {
    println!("# Fig. 5a — 42-qubit (7x6) circuits, depth 10..50");
    row(&[
        cell("depth", 6),
        cell("l=29", 6),
        cell("l=30", 6),
        cell("l=31", 6),
        cell("l=32", 6),
        cell("gg-worst", 9),
        cell("gg-median", 10),
    ]);
    for depth in (10..=50).step_by(5) {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 7,
            cols: 6,
            depth,
            seed,
        });
        let mut cells = vec![cell(depth, 6)];
        for l in [29u32, 30, 31, 32] {
            let s = plan(&c, &SchedulerConfig::distributed(l, kmax));
            cells.push(cell(s.n_swaps(), 6));
        }
        cells.push(cell(global_gate_count(&c, 30, true), 9));
        cells.push(cell(global_gate_count(&c, 30, false), 10));
        row(&cells);
    }
    println!("# paper shape: swaps grow ~1..3 over this range, mostly independent");
    println!("# of l; global gates grow ~linearly to ~200 (worst case).");
}

fn fig5b(kmax: u32, seed: u64) {
    println!("# Fig. 5b — depth-25 circuits, 30..49 qubits (30 local)");
    row(&[
        cell("grid", 6),
        cell("qubits", 7),
        cell("swaps l=29", 11),
        cell("l=30", 6),
        cell("l=31", 6),
        cell("l=32", 6),
        cell("gg-worst", 9),
        cell("gg-median", 10),
    ]);
    for (rows, cols) in [(6u32, 5u32), (6, 6), (7, 6), (9, 5), (7, 7)] {
        let n = rows * cols;
        let c = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth: 25,
            seed,
        });
        let mut cells = vec![cell(format!("{rows}x{cols}"), 6), cell(n, 7)];
        for l in [29u32, 30, 31, 32] {
            let l = l.min(n);
            if l == n {
                cells.push(cell("-", if l == 29 { 11 } else { 6 }));
                continue;
            }
            let s = plan(&c, &SchedulerConfig::distributed(l, kmax));
            cells.push(cell(s.n_swaps(), if l == 29 { 11 } else { 6 }));
        }
        let l = 30.min(n - 1).max(1);
        cells.push(cell(global_gate_count(&c, l, true), 9));
        cells.push(cell(global_gate_count(&c, l, false), 10));
        row(&cells);
    }
    println!("# paper: 1-2 swaps up to 45 qubits, 2 for 49; global gates ~50-140.");
}

/// Execute real swaps on the shared-memory fabric and compare the fused
/// pipelined engine against the textbook reference data path.
fn swap_engine(seed: u64, l: u32, iters: u32, sub_chunks: usize) {
    println!("# Swap engine — fused pipelined path vs textbook reference, 2^{l} amps/rank");
    println!("# copied = full-slice copies per swap per rank (reference: analytic ~6");
    println!("# traversals; fused: measured pack+unpack bytes). overlap = fraction of");
    println!("# comm wall-time spent making progress rather than blocked on peers.");
    row(&[
        cell("ranks", 5),
        cell("S", 3),
        cell("ref-copied", 11),
        cell("fused-copied", 13),
        cell("ref-ms/swap", 12),
        cell("fused-ms/swap", 14),
        cell("overlap", 8),
    ]);
    let slice = 1usize << l;
    let iters = iters.max(1);
    for g in [1u32, 2, 3] {
        let p = 1usize << g;
        let swap = SwapOp {
            local_slots: (0..g).collect(),
        };
        let init = |rank: usize| -> Vec<c64> {
            let mut rng = Xoshiro256::seed_from_u64(seed ^ ((rank as u64) << 8) ^ 0xf16);
            (0..slice)
                .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect()
        };

        let t0 = std::time::Instant::now();
        let (_, _ref_stats) = run_cluster(p, |ctx| {
            let mut state = StateVector::from_amplitudes(init(ctx.rank()));
            for _ in 0..iters {
                perform_swap_reference(ctx, &mut state, &swap, l);
            }
        });
        let ref_ms = t0.elapsed().as_secs_f64() / iters as f64 * 1e3;

        let depth_cfg = if sub_chunks == 0 {
            None
        } else {
            Some(sub_chunks)
        };
        let t1 = std::time::Instant::now();
        let (copied, fused_stats) = run_cluster(p, |ctx| {
            let mut bufs = SwapBuffers::new(depth_cfg);
            let mut state = StateVector::from_amplitudes(init(ctx.rank()));
            ctx.prewarm_wire(slice / p * 16, 2 * (p - 1));
            for _ in 0..iters {
                perform_swap(ctx, &mut state, &swap, l, &mut bufs);
            }
            (
                bufs.bytes_copied / bufs.swaps,
                bufs.depth_for(slice / p, 16),
            )
        });
        let fused_ms = t1.elapsed().as_secs_f64() / iters as f64 * 1e3;

        let slice_bytes = (slice * 16) as u64;
        let (fused_bytes, depth) = copied[0];
        row(&[
            cell(p, 5),
            cell(depth, 3),
            cell(format!("{:.1}x", 6.0), 11),
            cell(
                format!("{:.1}x", fused_bytes as f64 / slice_bytes as f64),
                13,
            ),
            cell(format!("{ref_ms:.2}"), 12),
            cell(format!("{fused_ms:.2}"), 14),
            cell(format!("{:.0}%", fused_stats.overlap_fraction() * 100.0), 8),
        ]);
    }
    println!("# fused path: <=2 full-slice copies/swap and zero steady-state allocations");
    println!("# (wire buffers recycle through per-rank pools; see FabricStats.wire_allocs).");
}
