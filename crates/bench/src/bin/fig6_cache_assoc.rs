//! Fig. 6 (KNL) / Fig. 9 (Edison) — k-qubit kernel performance on
//! low-order vs high-order target qubits.
//!
//! Applying a gate to high-order qubits strides the state by large powers
//! of two; once 2^k exceeds the effective set-associativity of the cache,
//! the gathered amplitudes evict each other and performance drops (§3.3).
//! The paper's observed cliffs: k=4..5 on Edison (8-way L1/L2), k=4..5 on
//! KNL (16-way L2 shared by 2 cores). This harness measures the same two
//! series on the present host; the *shape* (high-order ≤ low-order, gap
//! opening with k) is the reproduced claim.

use qsim_bench::harness::*;
use qsim_kernels::apply::KernelConfig;

fn main() {
    let n = arg_u32("--state-qubits", 24);
    let threads = arg_u32("--threads", rayon::current_num_threads() as u32) as usize;
    let cfg = KernelConfig {
        threads,
        ..KernelConfig::default()
    };
    println!("# Fig. 6/9 — cache-associativity cliff, state 2^{n}, {threads} thread(s)");
    row(&[
        cell("k", 3),
        cell("low-order GFLOPS", 17),
        cell("high-order GFLOPS", 18),
        cell("ratio", 7),
    ]);
    for k in 1..=5u32 {
        let low = measure_kernel_gflops(n, &low_order_qubits(k), &cfg, 1, 5);
        let high = measure_kernel_gflops(n, &high_order_qubits(n, k), &cfg, 1, 5);
        row(&[
            cell(k, 3),
            cell(format!("{low:.2}"), 17),
            cell(format!("{high:.2}"), 18),
            cell(format!("{:.2}", high / low), 7),
        ]);
    }
    println!("# paper shape: low-order rises with k (up to ~1000 GFLOPS on KNL,");
    println!("# ~300 on Edison); high-order collapses once 2^k exceeds the");
    println!("# cache set-associativity (k >= 4).");
}
