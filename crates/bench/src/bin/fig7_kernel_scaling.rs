//! Fig. 7 (KNL) / Fig. 10 (Edison) — strong scaling of the k-qubit
//! kernels with core count.
//!
//! The paper applies one k-qubit kernel to a 28-qubit state on 1..64 KNL
//! cores (1..24 Edison cores); the low-k kernels are bandwidth-bound and
//! stop scaling once the memory system saturates, while k=4..5 scale
//! further. This harness sweeps thread counts 1..nproc on a scaled state
//! and prints speedups relative to 1 thread.
//!
//! `--mode sweep` instead benchmarks the cache-tiled stage executor
//! against the per-gate path on a depth-25 supremacy circuit (default
//! n = 24, the 4×6 grid; kmax = 4), reporting full-state passes per
//! stage, DRAM bytes streamed and ms/stage, and writing the
//! machine-readable `BENCH_stage_sweep.json`.
//!
//! `--mode precision` compares the same compiled-stage executor at f64
//! and f32 (same default instance): wall-clock, bytes streamed, norm and
//! per-amplitude drift of the narrow tier, writing
//! `BENCH_precision.json`. Acceptance target: ≥ 1.3x wall-clock speedup
//! from halving the bytes per amplitude.

use qsim_bench::harness::*;
use qsim_bench::precision_report::run_precision_bench;
use qsim_bench::sweep_report::run_sweep_bench;
use qsim_kernels::apply::KernelConfig;

fn main() {
    match arg_value("--mode").as_deref() {
        Some("sweep") => return sweep_mode(),
        Some("precision") => return precision_mode(),
        _ => {}
    }
    let n = arg_u32("--state-qubits", 22);
    let max_threads = arg_u32("--max-threads", num_threads() as u32) as usize;
    println!("# Fig. 7/10 — kernel strong scaling, state 2^{n}");
    let mut header = vec![cell("k", 3)];
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    for &t in &threads {
        header.push(cell(format!("t={t}"), 8));
    }
    header.push(cell("speedup", 8));
    row(&header);

    for k in 1..=5u32 {
        let qubits = low_order_qubits(k);
        let mut cells = vec![cell(k, 3)];
        let mut first = 0.0;
        let mut last = 0.0;
        for &t in &threads {
            let cfg = KernelConfig {
                threads: t,
                ..KernelConfig::default()
            };
            let gf = measure_kernel_gflops(n, &qubits, &cfg, 1, 5);
            if t == 1 {
                first = gf;
            }
            last = gf;
            cells.push(cell(format!("{gf:.2}"), 8));
        }
        cells.push(cell(format!("{:.2}x", last / first), 8));
        row(&cells);
    }
    println!("# columns are GFLOPS per thread count; paper shape: k=4..5 scale");
    println!("# closest to linear, k=1 saturates memory bandwidth early.");
}

/// `--mode sweep`: per-gate vs cache-tiled stage execution.
fn sweep_mode() {
    let rows = arg_u32("--rows", 4);
    let cols = arg_u32("--cols", 6);
    let depth = arg_u32("--depth", 25);
    let kmax = arg_u32("--kmax", 4);
    let threads = arg_u32("--threads", num_threads() as u32) as usize;
    let tile = arg_value("--tile-qubits").map(|t| t.parse().expect("--tile-qubits"));

    let r = run_sweep_bench(rows, cols, depth, kmax, threads, tile);
    let (pg_ms, sw_ms) = r.ms_per_stage();
    println!(
        "# Sweep mode — tiled stage executor vs per-gate, {rows}x{cols} grid \
         (n={}), depth {depth}, kmax {kmax}, {threads} threads",
        r.n_qubits
    );
    row(&[
        cell("executor", 10),
        cell("time[s]", 9),
        cell("ms/stage", 9),
        cell("passes", 7),
        cell("passes/stage", 13),
        cell("GB streamed", 12),
    ]);
    row(&[
        cell("per-gate", 10),
        cell(format!("{:.3}", r.per_gate_seconds), 9),
        cell(format!("{pg_ms:.2}"), 9),
        cell(r.stats.baseline_passes, 7),
        cell(format!("{:.2}", r.baseline_passes_per_stage()), 13),
        cell(format!("{:.2}", r.stats.baseline_bytes as f64 / 1e9), 12),
    ]);
    row(&[
        cell("tiled", 10),
        cell(format!("{:.3}", r.sweep_seconds), 9),
        cell(format!("{sw_ms:.2}"), 9),
        cell(r.stats.sweep_passes, 7),
        cell(format!("{:.2}", r.sweep_passes_per_stage()), 13),
        cell(format!("{:.2}", r.stats.bytes_streamed as f64 / 1e9), 12),
    ]);
    println!(
        "# pass ratio {:.2}x (acceptance floor 1.5x), wall-clock speedup {:.2}x, \
         {} tile-local gates, {} diagonals folded, {} fallback sweeps",
        r.stats.pass_ratio(),
        r.per_gate_seconds / r.sweep_seconds.max(1e-12),
        r.stats.tile_local_gates,
        r.stats.diagonals_folded,
        r.stats.fallback_gates,
    );
    let json = r.to_json();
    std::fs::write("BENCH_stage_sweep.json", &json).expect("write BENCH_stage_sweep.json");
    println!("# wrote BENCH_stage_sweep.json");
}

/// `--mode precision`: the compiled-stage executor at f64 vs f32.
fn precision_mode() {
    let rows = arg_u32("--rows", 4);
    let cols = arg_u32("--cols", 6);
    let depth = arg_u32("--depth", 25);
    let kmax = arg_u32("--kmax", 4);
    let threads = arg_u32("--threads", num_threads() as u32) as usize;

    let r = run_precision_bench(rows, cols, depth, kmax, threads);
    println!(
        "# Precision mode — compiled-stage executor at f64 vs f32, {rows}x{cols} grid \
         (n={}), depth {depth}, kmax {kmax}, {threads} threads",
        r.n_qubits
    );
    row(&[
        cell("tier", 6),
        cell("time[s]", 9),
        cell("GB streamed", 12),
        cell("norm", 12),
    ]);
    row(&[
        cell("f64", 6),
        cell(format!("{:.3}", r.f64_seconds), 9),
        cell(format!("{:.2}", r.f64_bytes_streamed as f64 / 1e9), 12),
        cell("1.000000000", 12),
    ]);
    row(&[
        cell("f32", 6),
        cell(format!("{:.3}", r.f32_seconds), 9),
        cell(format!("{:.2}", r.f32_bytes_streamed as f64 / 1e9), 12),
        cell(format!("{:.9}", r.f32_norm), 12),
    ]);
    println!(
        "# speedup {:.2}x (acceptance floor 1.3x), bytes ratio {:.2}x, \
         max |Δamp| {:.2e}, |Δentropy| {:.2e}",
        r.speedup(),
        r.bytes_ratio(),
        r.max_amp_delta,
        r.entropy_delta,
    );
    let json = r.to_json();
    std::fs::write("BENCH_precision.json", &json).expect("write BENCH_precision.json");
    println!("# wrote BENCH_precision.json");
}
