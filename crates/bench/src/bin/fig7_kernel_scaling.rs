//! Fig. 7 (KNL) / Fig. 10 (Edison) — strong scaling of the k-qubit
//! kernels with core count.
//!
//! The paper applies one k-qubit kernel to a 28-qubit state on 1..64 KNL
//! cores (1..24 Edison cores); the low-k kernels are bandwidth-bound and
//! stop scaling once the memory system saturates, while k=4..5 scale
//! further. This harness sweeps thread counts 1..nproc on a scaled state
//! and prints speedups relative to 1 thread.

use qsim_bench::harness::*;
use qsim_kernels::apply::KernelConfig;

fn main() {
    let n = arg_u32("--state-qubits", 22);
    let max_threads = arg_u32("--max-threads", num_threads() as u32) as usize;
    println!("# Fig. 7/10 — kernel strong scaling, state 2^{n}");
    let mut header = vec![cell("k", 3)];
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    for &t in &threads {
        header.push(cell(format!("t={t}"), 8));
    }
    header.push(cell("speedup", 8));
    row(&header);

    for k in 1..=5u32 {
        let qubits = low_order_qubits(k);
        let mut cells = vec![cell(k, 3)];
        let mut first = 0.0;
        let mut last = 0.0;
        for &t in &threads {
            let cfg = KernelConfig {
                threads: t,
                ..KernelConfig::default()
            };
            let gf = measure_kernel_gflops(n, &qubits, &cfg, 1, 5);
            if t == 1 {
                first = gf;
            }
            last = gf;
            cells.push(cell(format!("{gf:.2}"), 8));
        }
        cells.push(cell(format!("{:.2}x", last / first), 8));
        row(&cells);
    }
    println!("# columns are GFLOPS per thread count; paper shape: k=4..5 scale");
    println!("# closest to linear, k=1 saturates memory bandwidth early.");
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
