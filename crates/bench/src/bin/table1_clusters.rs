//! Table 1 — re-scheduling of depth-25 supremacy circuits into clusters,
//! kmax ∈ {3, 4, 5}, 30 local qubits, at the paper's FULL scale.
//!
//! Paper reference values:
//!   qubits  gates  kmax=3  kmax=4  kmax=5
//!   30      369    82      46      36
//!   36      447    98      53      41
//!   42      528    111     58      46
//!   45      569    111     73      51
//!
//! Exact values depend on the (unpublished) CZ-pattern order and the
//! random instance; ours must land close, with the same trends: clusters
//! shrink as kmax grows, and gates/cluster exceeds kmax.

use qsim_bench::harness::*;
use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_sched::{plan, SchedulerConfig};
use std::time::Instant;

fn main() {
    let seed = arg_u32("--seed", 0) as u64;
    println!("# Table 1 — clusters for depth-25 circuits (30 local qubits)");
    row(&[
        cell("qubits", 7),
        cell("gates", 6),
        cell("kmax=3", 8),
        cell("kmax=4", 8),
        cell("kmax=5", 8),
        cell("g/c@4", 6),
        cell("plan[s]", 8),
    ]);
    for (rows, cols) in [(6u32, 5u32), (6, 6), (7, 6), (9, 5)] {
        let n = rows * cols;
        let c = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth: 25,
            seed,
        });
        let l = 30.min(n);
        let t0 = Instant::now();
        let mut clusters = Vec::new();
        let mut gpc4 = 0.0;
        for kmax in [3u32, 4, 5] {
            let s = plan(&c, &SchedulerConfig::distributed(l, kmax));
            clusters.push(s.n_clusters());
            if kmax == 4 {
                gpc4 = s.gates_per_cluster();
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        row(&[
            cell(n, 7),
            cell(c.len(), 6),
            cell(clusters[0], 8),
            cell(clusters[1], 8),
            cell(clusters[2], 8),
            cell(format!("{gpc4:.1}"), 6),
            cell(format!("{dt:.2}"), 8),
        ]);
    }
    println!("# paper: 369/447/528/569 gates; 82-111 (kmax=3), 46-73 (kmax=4),");
    println!("# 36-51 (kmax=5) clusters; pre-computation takes < 3 s.");
}
