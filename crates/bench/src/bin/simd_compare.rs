//! Ablation: scalar vs AVX2 vs AVX-512 step-3 kernels (per k). Used to
//! validate the `Simd::Auto` choice on a given host.
use qsim_bench::harness::*;
use qsim_kernels::apply::{KernelConfig, OptLevel, Simd};

fn main() {
    let n = arg_u32("--state-qubits", 22);
    println!("# SIMD ablation, state 2^{n}, 1 thread");
    println!(
        "# avx2={} avx512={}",
        qsim_kernels::avx::avx2_available(),
        qsim_kernels::avx512::avx512_available()
    );
    row(&[
        cell("k", 3),
        cell("scalar", 9),
        cell("avx2", 9),
        cell("auto(512)", 10),
    ]);
    for k in 1..=5u32 {
        let q = low_order_qubits(k);
        let mk = |simd| KernelConfig {
            opt: OptLevel::Blocked,
            simd,
            block: 4,
            threads: 1,
        };
        let s = measure_kernel_gflops(n, &q, &mk(Simd::Scalar), 1, 3);
        let a2 = measure_kernel_gflops(n, &q, &mk(Simd::Avx2), 1, 3);
        let a5 = measure_kernel_gflops(n, &q, &mk(Simd::Auto), 1, 3);
        row(&[
            cell(k, 3),
            cell(format!("{s:.2}"), 9),
            cell(format!("{a2:.2}"), 9),
            cell(format!("{a5:.2}"), 10),
        ]);
    }
}
