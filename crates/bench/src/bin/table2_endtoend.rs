//! Table 2 — end-to-end simulations: circuit size, gate count, rank
//! count, wall-clock, communication share, and speedup over the per-gate
//! baseline of \[5\]/\[19\].
//!
//! Paper rows (depth-25): 30q/1 node 9.58 s (14.8x), 36q/64 nodes 28.92 s
//! 42.9 % comm (12.8x), 42q/4096 nodes 79.53 s 71.8 % comm (12.4x),
//! 45q/8192 nodes 552.61 s 78 % comm. Scaled rows here keep the paper's
//! structure: one single-rank case plus three distributed cases with
//! growing qubit and rank counts, measured against the baseline engine
//! (same kernels, per-gate execution, pairwise exchanges).
//!
//! The entropy of the final distribution is also computed with its
//! reduction timed separately (§4.2.2's "99 s = 90.9 sim + 8.1 entropy").

use qsim_bench::harness::*;
use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::single::strip_initial_hadamards;
use qsim_core::{BaselineSimulator, DistConfig, DistSimulator};
use qsim_kernels::apply::KernelConfig;
use qsim_sched::{plan, SchedulerConfig};

fn main() {
    let kmax = arg_u32("--kmax", 4);
    let large = arg_flag("--large");
    // (rows, cols, ranks) scaled stand-ins for the paper's
    // (6x5, 1), (6x6, 64), (7x6, 4096), (9x5, 8192).
    let cases: Vec<(u32, u32, usize)> = if large {
        vec![(4, 4, 1), (5, 4, 4), (5, 5, 8), (6, 4, 16)]
    } else {
        vec![(4, 4, 1), (4, 4, 4), (5, 4, 8), (5, 4, 16)]
    };
    println!("# Table 2 — end-to-end (scaled), depth-25 circuits, kmax={kmax}");
    row(&[
        cell("grid", 6),
        cell("qubits", 7),
        cell("gates", 6),
        cell("ranks", 6),
        cell("time[s]", 9),
        cell("comm%", 7),
        cell("baseline[s]", 12),
        cell("speedup", 8),
        cell("entropy", 9),
        cell("H-time[s]", 10),
        cell("passes", 7),
        cell("pass-x", 7),
    ]);
    for (rows, cols, ranks) in cases {
        let c = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth: 25,
            seed: 0,
        });
        let n = c.n_qubits();
        let g = ranks.trailing_zeros();
        let l = n - g;
        let (exec, uniform) = strip_initial_hadamards(&c);
        let kernel = KernelConfig {
            threads: if ranks == 1 { 2 } else { 1 },
            ..KernelConfig::default()
        };

        // Optimized engine.
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, kmax));
        let sim = DistSimulator::new(DistConfig {
            n_ranks: ranks,
            kernel,
            gather_state: false,
            ..Default::default()
        });
        let out = sim.run(&exec, &schedule, uniform);
        let comm_pct = 100.0 * out.fabric.max_comm_seconds / out.sim_seconds.max(1e-12);

        // Baseline engine ([5]/[19]-style).
        let base = BaselineSimulator::new(ranks, kernel).run(&c);

        row(&[
            cell(format!("{rows}x{cols}"), 6),
            cell(n, 7),
            cell(c.len(), 6),
            cell(ranks, 6),
            cell(format!("{:.3}", out.sim_seconds), 9),
            cell(format!("{comm_pct:.1}"), 7),
            cell(format!("{:.3}", base.sim_seconds), 12),
            cell(
                format!("{:.1}x", base.sim_seconds / out.sim_seconds.max(1e-12)),
                8,
            ),
            cell(format!("{:.3}", out.entropy), 9),
            cell(format!("{:.4}", out.entropy_seconds), 10),
            cell(out.sweep.sweep_passes, 7),
            cell(format!("{:.2}x", out.sweep.pass_ratio()), 7),
        ]);
        // Physics cross-check: both engines must agree on the entropy.
        assert!(
            (out.entropy - base.entropy).abs() < 1e-6,
            "engines disagree: {} vs {}",
            out.entropy,
            base.entropy
        );
    }
    println!("# paper shape: the scheduled engine beats the per-gate baseline by");
    println!("# ~an order of magnitude at every scale; comm share grows with");
    println!("# rank count toward the 45-qubit run's 78 %.");
    println!("# passes/pass-x: full-state streaming passes of the tiled stage");
    println!("# executor and its pass-reduction factor over per-gate execution.");
}
