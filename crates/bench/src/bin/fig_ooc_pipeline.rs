//! §5 outlook — the out-of-core pipeline benchmark.
//!
//! Runs one depth-25 supremacy schedule through three out-of-core engine
//! modes and reports full-state disk traversals, bytes moved, IO/compute
//! overlap and wall-clock:
//!
//! * **sync segmented** — the synchronous baseline on a schedule
//!   segmented to `--segment-ops` ops per stage (1 by default, i.e. one
//!   traversal per op: the naive "stream the state for every gate"
//!   shape);
//! * **sync coarse** — the same engine on the planner's fused stages;
//! * **pipelined** — stage-run batching (one traversal per swap
//!   boundary) + async prefetch/writeback + compiled-stage compute.
//!
//! Writes the machine-readable `BENCH_ooc_pipeline.json`.
//!
//! `--mode compress` instead compares chunk codecs on the pipelined
//! engine — raw vs `shuffle-rle` (lossless) vs `lossy-8` — at each of
//! `--depths` (default `10,25`), reporting bytes on disk, compression
//! ratio, codec time and wall-clock, and writes
//! `BENCH_ooc_compress.json`.

use qsim_bench::harness::*;
use qsim_bench::ooc_report::{compress_reports_to_json, run_compress_bench, run_ooc_bench};
use qsim_ooc::Codec;

fn main() {
    let rows = arg_u32("--rows", 2);
    let cols = arg_u32("--cols", 11);
    let depth = arg_u32("--depth", 25);
    let kmax = arg_u32("--kmax", 4);
    let g = arg_u32("--global-qubits", 2);
    let segment_ops = arg_u32("--segment-ops", 1) as usize;
    let prefetch_depth = arg_u32("--prefetch-depth", 3) as usize;
    let threads = arg_u32("--threads", num_threads() as u32) as usize;

    if arg_value("--mode").as_deref() == Some("compress") {
        return compress_mode(rows, cols, kmax, g, prefetch_depth, threads);
    }

    let r = run_ooc_bench(
        rows,
        cols,
        depth,
        kmax,
        g,
        segment_ops,
        prefetch_depth,
        threads,
    );
    println!(
        "# OOC pipeline — {rows}x{cols} grid (n={n}), depth {depth}, kmax {kmax}, \
         2^{g} chunks, segment_ops {segment_ops}, prefetch {prefetch_depth}, {threads} threads",
        n = r.n_qubits
    );
    println!(
        "# segmented stages: {}, swap boundaries: {}",
        r.stages, r.swaps
    );
    row(&[
        cell("mode", 16),
        cell("seconds", 10),
        cell("traversals", 11),
        cell("GB read", 9),
        cell("GB written", 11),
        cell("io wait s", 10),
        cell("compute s", 10),
        cell("overlap", 8),
        cell("runs", 5),
    ]);
    for m in [&r.sync_segmented, &r.sync_coarse, &r.pipelined] {
        row(&[
            cell(m.label, 16),
            cell(format!("{:.3}", m.seconds), 10),
            cell(m.traversals, 11),
            cell(format!("{:.3}", m.gb_read), 9),
            cell(format!("{:.3}", m.gb_written), 11),
            cell(format!("{:.3}", m.io_wait_seconds), 10),
            cell(format!("{:.3}", m.compute_seconds), 10),
            cell(format!("{:.2}", m.overlap_fraction), 8),
            cell(m.runs, 5),
        ]);
    }
    println!(
        "# traversal ratio (sync segmented : pipelined): {:.2}x  (acceptance floor: 3x)",
        r.traversal_ratio()
    );
    println!(
        "# wall-clock speedup (sync segmented : pipelined): {:.2}x  (acceptance floor: 1.3x)",
        r.speedup()
    );

    let json = r.to_json();
    std::fs::write("BENCH_ooc_pipeline.json", &json).expect("write BENCH_ooc_pipeline.json");
    println!("# wrote BENCH_ooc_pipeline.json");
}

/// `--mode compress`: codec comparison at each requested depth.
fn compress_mode(rows: u32, cols: u32, kmax: u32, g: u32, prefetch_depth: usize, threads: usize) {
    let depths: Vec<u32> = arg_value("--depths")
        .unwrap_or_else(|| "10,25".into())
        .split(',')
        .map(|d| d.trim().parse().expect("bad --depths"))
        .collect();
    let codecs = [Codec::None, Codec::ShuffleRle, Codec::Lossy(8)];
    let mut reports = Vec::new();
    for &depth in &depths {
        let r = run_compress_bench(rows, cols, depth, kmax, g, prefetch_depth, threads, &codecs);
        println!(
            "# OOC compression — {rows}x{cols} grid (n={n}), depth {depth}, kmax {kmax}, \
             2^{g} chunks, prefetch {prefetch_depth}, {threads} threads, {s} swaps",
            n = r.n_qubits,
            s = r.swaps
        );
        row(&[
            cell("codec", 12),
            cell("seconds", 10),
            cell("GB logical", 11),
            cell("GB on disk", 11),
            cell("ratio", 7),
            cell("enc s", 7),
            cell("dec s", 7),
            cell("io wait s", 10),
            cell("overlap", 8),
            cell("max dist", 10),
        ]);
        for m in &r.modes {
            row(&[
                cell(&m.label, 12),
                cell(format!("{:.3}", m.seconds), 10),
                cell(format!("{:.3}", m.gb_logical_written), 11),
                cell(format!("{:.3}", m.gb_written), 11),
                cell(format!("{:.2}x", m.compression_ratio), 7),
                cell(format!("{:.2}", m.encode_seconds), 7),
                cell(format!("{:.2}", m.decode_seconds), 7),
                cell(format!("{:.3}", m.io_wait_seconds), 10),
                cell(format!("{:.2}", m.overlap_fraction), 8),
                cell(format!("{:.1e}", m.max_dist_vs_raw), 10),
            ]);
        }
        println!(
            "# shuffle-rle: {:.2}x fewer bytes written, {:.2}x wall-clock vs raw \
             (acceptance: >= 1.3x bytes at depth 10, <= 1.05x wall-clock when IO-bound)",
            r.mode("shuffle-rle")
                .map(|m| m.compression_ratio)
                .unwrap_or(f64::NAN),
            r.wallclock_ratio("shuffle-rle"),
        );
        reports.push(r);
    }
    let json = compress_reports_to_json(&reports);
    std::fs::write("BENCH_ooc_compress.json", &json).expect("write BENCH_ooc_compress.json");
    println!("# wrote BENCH_ooc_compress.json");
}
