//! §4.1.2 / §5 — petascale projection for the 45-qubit record run and
//! the 49-qubit feasibility argument.
//!
//! Everything scale-free is computed at full scale: the 45-qubit depth-25
//! schedule (swap count, cluster count, byte volume per node) comes from
//! the real scheduler; only the machine is modelled (dragonfly parameters
//! in `qsim_net::NetModel`). The paper's measured values for comparison:
//! 553 s total, 78 % communication, 0.428 PFLOPS sustained on 8192 nodes
//! and 0.5 PB; §5 projects 2 swaps for 49 qubits (8 PB, SSD option).

use qsim_bench::harness::*;
use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_net::NetModel;
use qsim_sched::{plan, Schedule, SchedulerConfig, StageOp};
use qsim_util::flops::flops_per_amplitude;

fn main() {
    let kmax = arg_u32("--kmax", 4);
    println!("# Petascale projection (full-scale schedules, modelled machine)");
    row(&[
        cell("case", 10),
        cell("nodes", 6),
        cell("mem", 8),
        cell("swaps", 6),
        cell("clusters", 9),
        cell("time[s]", 9),
        cell("comm%", 7),
        cell("PFLOPS", 8),
    ]);
    // (label, rows, cols, nodes)
    for (label, rows, cols, nodes) in [
        ("45-qubit", 9u32, 5u32, 8192usize),
        ("49-qubit", 7, 7, 8192),
    ] {
        let n = rows * cols;
        let l = n - (nodes.trailing_zeros());
        let c = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth: 25,
            seed: 0,
        });
        let schedule = plan(&c, &SchedulerConfig::distributed(l, kmax));
        let local_amps = 1f64 * (1u64 << l) as f64;
        let bytes_per_node = local_amps * 16.0;
        let flops_per_node = schedule_flops_per_amp(&schedule) * local_amps;
        let model = NetModel::cori_aries();
        let (total, comm_frac) =
            model.project_run(bytes_per_node, schedule.n_swaps(), flops_per_node, nodes);
        let pflops = flops_per_node * nodes as f64 / total / 1e15;
        let mem_pb = (1u64 << n) as f64 * 16.0 / 1e15;
        row(&[
            cell(label, 10),
            cell(nodes, 6),
            cell(format!("{mem_pb:.2}PB",), 8),
            cell(schedule.n_swaps(), 6),
            cell(schedule.n_clusters(), 9),
            cell(format!("{total:.0}"), 9),
            cell(format!("{:.1}", comm_frac * 100.0), 7),
            cell(format!("{pflops:.3}"), 8),
        ]);
    }
    println!("# paper: 45q = 0.5 PB, 8192 nodes, 553 s, 78 % comm, 0.428 PFLOPS.");
    println!("# 49q = 8 PB (beyond DRAM; the 2-3 all-to-alls make SSDs viable).");
}

/// Mean FLOP per amplitude per full-schedule sweep: each cluster of k
/// qubits costs `8·2^k − 2` FLOP per amplitude (the §3.1 count).
fn schedule_flops_per_amp(s: &Schedule) -> f64 {
    let mut flops = 0u64;
    for stage in &s.stages {
        for op in &stage.ops {
            if let StageOp::Cluster(c) = op {
                flops += flops_per_amplitude(c.qubits.len() as u32);
            }
        }
    }
    flops as f64
}
