//! Precision-tiering benchmark: the same compiled-stage schedule executed
//! at f64 and at f32, reporting wall-clock, DRAM traffic (half the bytes
//! per amplitude) and the fidelity cost of the narrow tier — the §5
//! "46 qubits in single precision" trade quantified at laptop scale.
//!
//! Used by `fig7_kernel_scaling --mode precision` (which also emits the
//! machine-readable `BENCH_precision.json`) and by the workspace smoke
//! test checking the tiers agree at tiny n.

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::exec::execute_schedule_sweep;
use qsim_core::single::strip_initial_hadamards;
use qsim_core::StateVector;
use qsim_kernels::apply::KernelConfig;
use qsim_sched::{plan, SchedulerConfig};
use qsim_telemetry::{MetricsSnapshot, Telemetry};
use std::time::Instant;

/// One measured f64-vs-f32 comparison on a fixed schedule.
pub struct PrecisionBenchReport {
    pub n_qubits: u32,
    pub depth: u32,
    pub kmax: u32,
    pub threads: usize,
    pub stages: usize,
    /// Wall-clock of the f64 tiled executor, seconds.
    pub f64_seconds: f64,
    /// Wall-clock of the f32 tiled executor, seconds.
    pub f32_seconds: f64,
    /// DRAM bytes streamed by each tier (f32 ≈ half of f64).
    pub f64_bytes_streamed: u64,
    pub f32_bytes_streamed: u64,
    /// Fidelity of the narrow tier against the f64 state.
    pub f32_norm: f64,
    pub max_amp_delta: f64,
    pub entropy_delta: f64,
    /// Telemetry snapshot. Both tiers are timed with telemetry
    /// DISABLED; counters are published afterwards. Rendered by
    /// [`MetricsSnapshot::to_json`] in [`Self::to_json`].
    pub metrics: MetricsSnapshot,
}

impl PrecisionBenchReport {
    /// f64 wall-clock over f32 wall-clock (target ≥ 1.3x).
    pub fn speedup(&self) -> f64 {
        self.f64_seconds / self.f32_seconds.max(1e-12)
    }

    /// Streamed-byte ratio (ideal 2.0: half the bytes per amplitude).
    pub fn bytes_ratio(&self) -> f64 {
        self.f64_bytes_streamed as f64 / self.f32_bytes_streamed.max(1) as f64
    }

    /// Machine-readable report (hand-rolled: no serde in the workspace).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"n_qubits\": {},\n",
                "  \"depth\": {},\n",
                "  \"kmax\": {},\n",
                "  \"threads\": {},\n",
                "  \"stages\": {},\n",
                "  \"f64_seconds\": {:.6},\n",
                "  \"f32_seconds\": {:.6},\n",
                "  \"speedup\": {:.3},\n",
                "  \"f64_bytes_streamed\": {},\n",
                "  \"f32_bytes_streamed\": {},\n",
                "  \"bytes_ratio\": {:.3},\n",
                "  \"f32_norm\": {:.9},\n",
                "  \"max_amp_delta\": {:.3e},\n",
                "  \"entropy_delta\": {:.3e},\n",
                "  \"metrics\": {}\n",
                "}}"
            ),
            self.n_qubits,
            self.depth,
            self.kmax,
            self.threads,
            self.stages,
            self.f64_seconds,
            self.f32_seconds,
            self.speedup(),
            self.f64_bytes_streamed,
            self.f32_bytes_streamed,
            self.bytes_ratio(),
            self.f32_norm,
            self.max_amp_delta,
            self.entropy_delta,
            self.metrics.to_json().trim_end(),
        )
    }
}

/// Plan one depth-`depth` supremacy circuit and time the compiled-stage
/// executor at both precisions on the full state (single node).
pub fn run_precision_bench(
    rows: u32,
    cols: u32,
    depth: u32,
    kmax: u32,
    threads: usize,
) -> PrecisionBenchReport {
    let c = supremacy_circuit(&SupremacySpec {
        rows,
        cols,
        depth,
        seed: 0,
    });
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::single_node(n, kmax));
    let cfg = KernelConfig {
        threads,
        ..KernelConfig::default()
    };

    let mut state64 = if uniform {
        StateVector::<f64>::uniform(n)
    } else {
        StateVector::<f64>::zero(n)
    };
    let t0 = Instant::now();
    let stats64 = execute_schedule_sweep(&mut state64, &schedule, &cfg, None);
    let f64_seconds = t0.elapsed().as_secs_f64();

    let mut state32 = if uniform {
        StateVector::<f32>::uniform(n)
    } else {
        StateVector::<f32>::zero(n)
    };
    let t1 = Instant::now();
    let stats32 = execute_schedule_sweep(&mut state32, &schedule, &cfg, None);
    let f32_seconds = t1.elapsed().as_secs_f64();

    // Fidelity of the f32 state, accumulated in f64: summing 2^n f32
    // terms in an f32 accumulator would swamp the per-amplitude error
    // we are trying to measure.
    let mut max_amp_delta = 0.0f64;
    let mut f32_norm = 0.0f64;
    let mut f32_entropy = 0.0f64;
    for (a, b) in state64.amplitudes().iter().zip(state32.amplitudes()) {
        max_amp_delta = max_amp_delta
            .max((a.re - b.re as f64).abs())
            .max((a.im - b.im as f64).abs());
        let p = (b.re as f64) * (b.re as f64) + (b.im as f64) * (b.im as f64);
        f32_norm += p;
        if p > 0.0 {
            f32_entropy -= p * p.log2();
        }
    }
    let entropy_delta = (state64.entropy() - f32_entropy).abs();

    // Publish the measured counters into a fresh registry for the
    // report; nothing was instrumented during the timed sections.
    let telemetry = Telemetry::enabled();
    if let Some(m) = telemetry.metrics() {
        stats64.publish_into(m, "f64.sweep");
        stats32.publish_into(m, "f32.sweep");
        m.gauge_set("f64.seconds", f64_seconds);
        m.gauge_set("f32.seconds", f32_seconds);
    }
    let metrics = telemetry.metrics_snapshot();

    PrecisionBenchReport {
        n_qubits: n,
        depth,
        kmax,
        threads,
        stages: schedule.stages.len(),
        f64_seconds,
        f32_seconds,
        f64_bytes_streamed: stats64.bytes_streamed,
        f32_bytes_streamed: stats32.bytes_streamed,
        f32_norm,
        max_amp_delta,
        entropy_delta,
        metrics,
    }
}
