//! Sweep-mode benchmarking: per-gate vs cache-tiled stage execution on
//! one depth-25 supremacy circuit, reporting wall-clock, streaming-pass
//! counts and DRAM traffic (the tentpole's operational-intensity
//! accounting in DESIGN.md).
//!
//! Used by `fig7_kernel_scaling --mode sweep` (which also emits the
//! machine-readable `BENCH_stage_sweep.json`) and by the workspace smoke
//! test asserting the ≥ 1.5× pass-reduction acceptance floor at tiny n.

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::exec::execute_schedule_sweep;
use qsim_core::single::{execute_schedule_local, strip_initial_hadamards};
use qsim_core::StateVector;
use qsim_kernels::apply::KernelConfig;
use qsim_kernels::SweepStats;
use qsim_sched::{plan, SchedulerConfig};
use qsim_telemetry::{MetricsSnapshot, Telemetry};
use std::time::Instant;

/// One measured per-gate vs tiled comparison.
pub struct SweepBenchReport {
    pub n_qubits: u32,
    pub depth: u32,
    pub kmax: u32,
    pub threads: usize,
    /// Tile budget the tiled run used (`None` = measured auto-tune).
    pub tile_qubits: Option<u32>,
    pub stages: usize,
    /// Wall-clock of the per-gate executor, seconds.
    pub per_gate_seconds: f64,
    /// Wall-clock of the tiled executor, seconds.
    pub sweep_seconds: f64,
    pub stats: SweepStats,
    /// Telemetry snapshot of the bench. Both executors are timed with
    /// telemetry DISABLED — the sweep stats and timings are published
    /// into a fresh registry afterwards, so the measured numbers carry
    /// zero instrumentation overhead. Rendered by
    /// [`MetricsSnapshot::to_json`] in [`Self::to_json`].
    pub metrics: MetricsSnapshot,
}

impl SweepBenchReport {
    /// Full-state passes per stage, per-gate baseline.
    pub fn baseline_passes_per_stage(&self) -> f64 {
        self.stats.baseline_passes as f64 / self.stages.max(1) as f64
    }

    /// Full-state passes per stage, tiled executor.
    pub fn sweep_passes_per_stage(&self) -> f64 {
        self.stats.sweep_passes as f64 / self.stages.max(1) as f64
    }

    /// Milliseconds per stage of each executor.
    pub fn ms_per_stage(&self) -> (f64, f64) {
        let s = self.stages.max(1) as f64;
        (
            1e3 * self.per_gate_seconds / s,
            1e3 * self.sweep_seconds / s,
        )
    }

    /// Machine-readable report (hand-rolled: no serde in the workspace).
    pub fn to_json(&self) -> String {
        let (pg_ms, sw_ms) = self.ms_per_stage();
        format!(
            concat!(
                "{{\n",
                "  \"n_qubits\": {},\n",
                "  \"depth\": {},\n",
                "  \"kmax\": {},\n",
                "  \"threads\": {},\n",
                "  \"tile_qubits\": {},\n",
                "  \"stages\": {},\n",
                "  \"per_gate_seconds\": {:.6},\n",
                "  \"sweep_seconds\": {:.6},\n",
                "  \"per_gate_ms_per_stage\": {:.3},\n",
                "  \"sweep_ms_per_stage\": {:.3},\n",
                "  \"baseline_passes\": {},\n",
                "  \"sweep_passes\": {},\n",
                "  \"pass_ratio\": {:.3},\n",
                "  \"tile_local_gates\": {},\n",
                "  \"fallback_gates\": {},\n",
                "  \"diagonals_folded\": {},\n",
                "  \"baseline_bytes\": {},\n",
                "  \"bytes_streamed\": {},\n",
                "  \"speedup\": {:.3},\n",
                "  \"metrics\": {}\n",
                "}}"
            ),
            self.n_qubits,
            self.depth,
            self.kmax,
            self.threads,
            match self.tile_qubits {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            },
            self.stages,
            self.per_gate_seconds,
            self.sweep_seconds,
            pg_ms,
            sw_ms,
            self.stats.baseline_passes,
            self.stats.sweep_passes,
            self.stats.pass_ratio(),
            self.stats.tile_local_gates,
            self.stats.fallback_gates,
            self.stats.diagonals_folded,
            self.stats.baseline_bytes,
            self.stats.bytes_streamed,
            self.per_gate_seconds / self.sweep_seconds.max(1e-12),
            self.metrics.to_json().trim_end(),
        )
    }
}

/// Plan a depth-`depth` supremacy circuit on a rows×cols grid and time
/// both executors on the full state (single node, `threads` workers).
pub fn run_sweep_bench(
    rows: u32,
    cols: u32,
    depth: u32,
    kmax: u32,
    threads: usize,
    tile_qubits: Option<u32>,
) -> SweepBenchReport {
    let c = supremacy_circuit(&SupremacySpec {
        rows,
        cols,
        depth,
        seed: 0,
    });
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::single_node(n, kmax));
    let cfg = KernelConfig {
        threads,
        ..KernelConfig::default()
    };
    let init = || {
        if uniform {
            StateVector::<f64>::uniform(n)
        } else {
            StateVector::<f64>::zero(n)
        }
    };

    let mut state = init();
    let t0 = Instant::now();
    execute_schedule_local(&mut state, &schedule, &cfg);
    let per_gate_seconds = t0.elapsed().as_secs_f64();
    let per_gate_entropy = state.entropy();

    let mut state = init();
    let t1 = Instant::now();
    let stats = execute_schedule_sweep(&mut state, &schedule, &cfg, tile_qubits);
    let sweep_seconds = t1.elapsed().as_secs_f64();
    assert!(
        (state.entropy() - per_gate_entropy).abs() < 1e-9,
        "executors disagree"
    );

    // Publish the measured counters into a fresh registry for the
    // report; nothing was instrumented during the timed sections.
    let telemetry = Telemetry::enabled();
    if let Some(m) = telemetry.metrics() {
        stats.publish_into(m, "single.sweep");
        m.gauge_set("single.per_gate_seconds", per_gate_seconds);
        m.gauge_set("single.sweep_seconds", sweep_seconds);
    }
    let metrics = telemetry.metrics_snapshot();

    SweepBenchReport {
        n_qubits: n,
        depth,
        kmax,
        threads,
        tile_qubits,
        stages: schedule.stages.len(),
        per_gate_seconds,
        sweep_seconds,
        stats,
        metrics,
    }
}
