//! # qsim-bench
//!
//! Benchmark harnesses regenerating every table and figure of the paper's
//! evaluation (§4). Each `src/bin/*` binary prints one artifact:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig2_roofline`     | Fig. 2a/2b — kernel GFLOPS per optimization step |
//! | `fig5_comm_scaling` | Fig. 5a/5b — swaps & global gates vs depth / qubits |
//! | `table1_clusters`   | Table 1 — cluster counts for kmax ∈ {3,4,5} |
//! | `fig6_cache_assoc`  | Fig. 6/9 — low- vs high-order kernel performance |
//! | `fig7_kernel_scaling` | Fig. 7/10 — strong scaling of k-qubit kernels |
//! | `fig8_strong_scaling` | Fig. 8 — multi-rank strong scaling |
//! | `table2_endtoend`   | Table 2 — end-to-end time, comm %, speedup |
//! | `proj45_petascale`  | §4.1.2/§5 — 45/49-qubit petascale projection |
//! | `fig_ooc_pipeline`  | §5 — out-of-core pipeline: traversals & overlap |
//!
//! Scheduling artifacts (Fig. 5, Table 1, the projection) run at the
//! paper's **full scale** (30–49 qubits) because they never touch
//! amplitudes; amplitude-bearing artifacts run scaled down per DESIGN.md.
//! `cargo bench -p qsim-bench` additionally runs the criterion
//! micro-benchmarks in `benches/`.

pub mod harness;
pub mod ooc_report;
pub mod precision_report;
pub mod search_report;
pub mod sweep_report;
