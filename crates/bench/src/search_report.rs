//! Schedule-search benchmarking: greedy vs cost-guided search on one
//! supremacy circuit, end-to-end through the distributed engine.
//!
//! Used by `fig5_comm_scaling search` (which emits the machine-readable
//! `BENCH_schedule_search.json`) and by the workspace smoke test
//! asserting the searched plan's modeled cost never exceeds greedy's.
//! Wall-clock is measured cache-cold with search time INCLUDED — the
//! acceptance bar is "search pays for itself": total ≤ 1.02× greedy even
//! when the searched plan only ties.

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::single::strip_initial_hadamards;
use qsim_core::{plan_schedule, DistConfig, DistSimulator, PlanOptions, ScheduleMode};
use qsim_kernels::apply::KernelConfig;
use qsim_sched::sweep::DEFAULT_TILE_QUBITS;
use qsim_sched::{plan_resources, SchedulerConfig};
use qsim_telemetry::{MetricsSnapshot, Telemetry};
use std::time::Instant;

/// One greedy-vs-search measurement.
pub struct SearchBenchReport {
    pub n_qubits: u32,
    pub depth: u32,
    pub local_qubits: u32,
    pub kmax: u32,
    pub budget: usize,
    /// Swap counts of each plan (the Fig. 5 metric).
    pub greedy_swaps: usize,
    pub search_swaps: usize,
    /// Streaming stage passes of each plan.
    pub greedy_passes: usize,
    pub search_passes: usize,
    /// Modeled seconds of each plan (search's calibrated model).
    pub greedy_cost: f64,
    pub search_cost: f64,
    /// Whether the search adopted a non-greedy plan.
    pub adopted: bool,
    /// `plan()` evaluations the search spent.
    pub candidates: usize,
    /// Planning wall-clock, seconds (search time is the whole point).
    pub greedy_plan_seconds: f64,
    pub search_plan_seconds: f64,
    /// End-to-end wall-clock: planning + distributed execution, seconds.
    pub greedy_total_seconds: f64,
    pub search_total_seconds: f64,
    /// Telemetry snapshot published after the timed sections. Rendered
    /// by [`MetricsSnapshot::to_json`] in [`Self::to_json`].
    pub metrics: MetricsSnapshot,
}

impl SearchBenchReport {
    /// End-to-end slowdown of the searched run (< 1 means search won
    /// outright; the acceptance ceiling is 1.02).
    pub fn wall_ratio(&self) -> f64 {
        self.search_total_seconds / self.greedy_total_seconds.max(1e-12)
    }

    /// Machine-readable report (hand-rolled: no serde in the workspace).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"n_qubits\": {},\n",
                "  \"depth\": {},\n",
                "  \"local_qubits\": {},\n",
                "  \"kmax\": {},\n",
                "  \"budget\": {},\n",
                "  \"greedy_swaps\": {},\n",
                "  \"search_swaps\": {},\n",
                "  \"greedy_passes\": {},\n",
                "  \"search_passes\": {},\n",
                "  \"greedy_cost\": {:.9},\n",
                "  \"search_cost\": {:.9},\n",
                "  \"adopted\": {},\n",
                "  \"candidates\": {},\n",
                "  \"greedy_plan_seconds\": {:.6},\n",
                "  \"search_plan_seconds\": {:.6},\n",
                "  \"greedy_total_seconds\": {:.6},\n",
                "  \"search_total_seconds\": {:.6},\n",
                "  \"wall_ratio\": {:.4},\n",
                "  \"metrics\": {}\n",
                "}}"
            ),
            self.n_qubits,
            self.depth,
            self.local_qubits,
            self.kmax,
            self.budget,
            self.greedy_swaps,
            self.search_swaps,
            self.greedy_passes,
            self.search_passes,
            self.greedy_cost,
            self.search_cost,
            self.adopted,
            self.candidates,
            self.greedy_plan_seconds,
            self.search_plan_seconds,
            self.greedy_total_seconds,
            self.search_total_seconds,
            self.wall_ratio(),
            self.metrics.to_json().trim_end(),
        )
    }
}

/// JSON array over several measurements.
pub fn search_reports_to_json(reports: &[SearchBenchReport]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&r.to_json());
        if i + 1 < reports.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push(']');
    s
}

/// Plan a rows×cols depth-`depth` supremacy circuit both ways and run
/// each plan through the distributed engine (`2^g` ranks, single-thread
/// kernels). Both runs are cache-cold: the searched total includes the
/// full search time.
pub fn run_search_bench(
    rows: u32,
    cols: u32,
    depth: u32,
    kmax: u32,
    g: u32,
    budget: usize,
) -> SearchBenchReport {
    let c = supremacy_circuit(&SupremacySpec {
        rows,
        cols,
        depth,
        seed: 0,
    });
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let l = n - g;
    let base = SchedulerConfig::distributed(l, kmax);
    let dist = |ranks: usize| {
        DistSimulator::new(DistConfig {
            n_ranks: ranks,
            kernel: KernelConfig {
                threads: 1,
                ..KernelConfig::default()
            },
            ..Default::default()
        })
    };
    let sim = dist(1usize << g);

    let t0 = Instant::now();
    let greedy = plan_schedule(&exec, &base, &PlanOptions::default());
    let greedy_plan_seconds = t0.elapsed().as_secs_f64();
    let searched = plan_schedule(
        &exec,
        &base,
        &PlanOptions {
            mode: ScheduleMode::Search,
            search_budget: budget,
            ..PlanOptions::default()
        },
    );
    let search_plan_seconds = searched.plan_seconds;

    // Execution wall-clock is the min over `reps` INTERLEAVED runs
    // (greedy, search, greedy, search, …): machine noise on a
    // multi-second distributed run easily exceeds the few-percent
    // margins this bench certifies, and back-to-back blocks would fold
    // any load drift entirely into one side of the ratio. Planning is
    // timed once (it IS the overhead under test).
    let reps = std::env::var("QSIM_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2usize)
        .max(1);
    let timed = |schedule: &qsim_sched::Schedule| {
        let t = Instant::now();
        let o = sim
            .try_run_t::<f64>(&exec, schedule, uniform)
            .expect("dist run");
        (o, t.elapsed().as_secs_f64())
    };
    let (mut greedy_exec, mut search_exec) = (f64::INFINITY, f64::INFINITY);
    let (mut greedy_out, mut search_out) = (None, None);
    for _ in 0..reps {
        let (o, dt) = timed(&greedy.schedule);
        greedy_exec = greedy_exec.min(dt);
        greedy_out = Some(o);
        let (o, dt) = timed(&searched.schedule);
        search_exec = search_exec.min(dt);
        search_out = Some(o);
    }
    let (greedy_out, search_out) = (greedy_out.unwrap(), search_out.unwrap());
    if !searched.adopted {
        // Not adopted means the searched schedule IS the greedy one: all
        // 2×reps runs measured the same workload, so both sides get the
        // pooled minimum and the wall ratio degenerates to pure planning
        // overhead instead of run-to-run noise.
        greedy_exec = greedy_exec.min(search_exec);
        search_exec = greedy_exec;
    }
    let greedy_total_seconds = greedy_plan_seconds + greedy_exec;
    let search_total_seconds = search_plan_seconds + search_exec;

    // Both plans execute the same circuit: the logical observables must
    // agree to numerical precision even though the plans differ.
    assert!(
        (greedy_out.entropy - search_out.entropy).abs() < 1e-6,
        "plans disagree: {} vs {}",
        greedy_out.entropy,
        search_out.entropy
    );
    assert!((greedy_out.norm - 1.0).abs() < 1e-9 && (search_out.norm - 1.0).abs() < 1e-9);

    let gr = plan_resources(&greedy.schedule, 16, DEFAULT_TILE_QUBITS);
    let sr = plan_resources(&searched.schedule, 16, DEFAULT_TILE_QUBITS);

    // Publish the measured numbers into a fresh registry for the report;
    // nothing was instrumented during the timed sections.
    let telemetry = Telemetry::enabled();
    if let Some(m) = telemetry.metrics() {
        m.counter_add("sched.search_candidates", searched.candidates as u64);
        m.gauge_set("sched.plan_seconds", search_plan_seconds);
        m.gauge_set("sched.greedy_plan_seconds", greedy_plan_seconds);
        m.gauge_set("dist.greedy_sim_seconds", greedy_out.sim_seconds);
        m.gauge_set("dist.search_sim_seconds", search_out.sim_seconds);
    }
    let metrics = telemetry.metrics_snapshot();

    SearchBenchReport {
        n_qubits: n,
        depth,
        local_qubits: l,
        kmax,
        budget,
        greedy_swaps: gr.n_swaps,
        search_swaps: sr.n_swaps,
        greedy_passes: gr.stage_passes,
        search_passes: sr.stage_passes,
        greedy_cost: searched.greedy_cost,
        search_cost: searched.best_cost,
        adopted: searched.adopted,
        candidates: searched.candidates,
        greedy_plan_seconds,
        search_plan_seconds,
        greedy_total_seconds,
        search_total_seconds,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_n_search_never_models_worse() {
        // The smoke version of the acceptance criterion, small enough
        // for CI: searched cost ≤ greedy cost, observables agree, and
        // the report serializes.
        let r = run_search_bench(3, 4, 16, 4, 2, 8);
        assert!(r.search_cost <= r.greedy_cost + 1e-12);
        if r.adopted {
            assert!(r.search_cost < r.greedy_cost);
        }
        let j = r.to_json();
        assert!(j.contains("\"wall_ratio\""));
        assert!(j.contains("\"metrics\""));
    }
}
