//! Out-of-core pipeline benchmarking: the synchronous per-stage engine
//! vs the batched + pipelined + compiled data path on one depth-25
//! supremacy schedule, reporting full-state disk traversals, bytes
//! moved, IO/compute overlap and wall-clock.
//!
//! Used by `fig_ooc_pipeline` (which emits the machine-readable
//! `BENCH_ooc_pipeline.json`) and by the workspace smoke test asserting
//! the ≥ 3× traversal-reduction acceptance floor at tiny n.

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::single::strip_initial_hadamards;
use qsim_kernels::apply::KernelConfig;
use qsim_ooc::{Codec, IoStats, OocConfig, OocSimulator, ScratchDir};
use qsim_sched::{plan, segment_stages, SchedulerConfig};
use qsim_telemetry::{MetricsSnapshot, Telemetry};
use qsim_util::complex::max_dist;

/// One engine mode's measurements.
#[derive(Clone, Debug)]
pub struct OocModeReport {
    pub label: &'static str,
    pub seconds: f64,
    pub traversals: u64,
    pub gb_read: f64,
    pub gb_written: f64,
    pub io_wait_seconds: f64,
    pub compute_seconds: f64,
    pub overlap_fraction: f64,
    pub runs: usize,
    pub entropy: f64,
}

impl OocModeReport {
    fn from_run(
        label: &'static str,
        seconds: f64,
        io: &IoStats,
        runs: usize,
        entropy: f64,
    ) -> Self {
        Self {
            label,
            seconds,
            traversals: io.traversals,
            gb_read: io.bytes_read as f64 / 1e9,
            gb_written: io.bytes_written as f64 / 1e9,
            io_wait_seconds: io.io_wait_seconds,
            compute_seconds: io.compute_seconds,
            overlap_fraction: io.overlap_fraction(),
            runs,
            entropy,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"label\": \"{}\",\n",
                "    \"seconds\": {:.6},\n",
                "    \"traversals\": {},\n",
                "    \"gb_read\": {:.6},\n",
                "    \"gb_written\": {:.6},\n",
                "    \"io_wait_seconds\": {:.6},\n",
                "    \"compute_seconds\": {:.6},\n",
                "    \"overlap_fraction\": {:.4},\n",
                "    \"runs\": {}\n",
                "  }}"
            ),
            self.label,
            self.seconds,
            self.traversals,
            self.gb_read,
            self.gb_written,
            self.io_wait_seconds,
            self.compute_seconds,
            self.overlap_fraction,
            self.runs,
        )
    }
}

/// The three-way comparison on one schedule.
pub struct OocBenchReport {
    pub n_qubits: u32,
    pub depth: u32,
    pub kmax: u32,
    pub global_qubits: u32,
    pub segment_ops: usize,
    pub prefetch_depth: usize,
    pub threads: usize,
    pub stages: usize,
    pub swaps: usize,
    /// Synchronous engine on the finely segmented schedule (one op per
    /// stage at `segment_ops = 1`): the "one traversal per op" shape.
    pub sync_segmented: OocModeReport,
    /// Synchronous engine on the planner's coarse stages, for
    /// transparency about how much run batching adds beyond coarse
    /// staging alone.
    pub sync_coarse: OocModeReport,
    /// Batched + pipelined + compiled engine on the segmented schedule.
    pub pipelined: OocModeReport,
    /// Telemetry snapshot of the bench: the pipelined run's live
    /// `ooc.*` metrics and latency histograms, plus each mode's
    /// `IoStats` republished under `ooc.<mode>.*`. Rendered by
    /// [`MetricsSnapshot::to_json`] in [`Self::to_json`].
    pub metrics: MetricsSnapshot,
}

impl OocBenchReport {
    /// Full-state disk traversals, synchronous-segmented : pipelined.
    pub fn traversal_ratio(&self) -> f64 {
        self.sync_segmented.traversals as f64 / self.pipelined.traversals.max(1) as f64
    }

    /// Wall-clock speedup, synchronous-segmented : pipelined.
    pub fn speedup(&self) -> f64 {
        self.sync_segmented.seconds / self.pipelined.seconds.max(1e-12)
    }

    /// Machine-readable report (hand-rolled: no serde in the workspace).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"n_qubits\": {},\n",
                "  \"depth\": {},\n",
                "  \"kmax\": {},\n",
                "  \"global_qubits\": {},\n",
                "  \"segment_ops\": {},\n",
                "  \"prefetch_depth\": {},\n",
                "  \"threads\": {},\n",
                "  \"stages\": {},\n",
                "  \"swaps\": {},\n",
                "  \"sync_segmented\": {},\n",
                "  \"sync_coarse\": {},\n",
                "  \"pipelined\": {},\n",
                "  \"traversal_ratio\": {:.3},\n",
                "  \"speedup\": {:.3},\n",
                "  \"metrics\": {}\n",
                "}}"
            ),
            self.n_qubits,
            self.depth,
            self.kmax,
            self.global_qubits,
            self.segment_ops,
            self.prefetch_depth,
            self.threads,
            self.stages,
            self.swaps,
            self.sync_segmented.to_json(),
            self.sync_coarse.to_json(),
            self.pipelined.to_json(),
            self.traversal_ratio(),
            self.speedup(),
            self.metrics.to_json().trim_end(),
        )
    }
}

/// One codec's measurements on the pipelined engine.
#[derive(Clone, Debug)]
pub struct CompressModeReport {
    /// Codec name (`none`, `shuffle-rle`, `lossy-8`, …).
    pub label: String,
    pub seconds: f64,
    /// Amplitude bytes retired by compute (codec-independent).
    pub gb_logical_written: f64,
    /// Physical bytes on disk (encoded bytes under a codec).
    pub gb_written: f64,
    pub compression_ratio: f64,
    pub encode_seconds: f64,
    pub decode_seconds: f64,
    pub io_wait_seconds: f64,
    pub overlap_fraction: f64,
    pub entropy: f64,
    /// Max amplitude distance against the `none` run — 0.0 exactly for
    /// every lossless codec, the truncation budget for lossy ones.
    pub max_dist_vs_raw: f64,
}

impl CompressModeReport {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"label\": \"{}\",\n",
                "      \"seconds\": {:.6},\n",
                "      \"gb_logical_written\": {:.6},\n",
                "      \"gb_written\": {:.6},\n",
                "      \"compression_ratio\": {:.4},\n",
                "      \"encode_seconds\": {:.6},\n",
                "      \"decode_seconds\": {:.6},\n",
                "      \"io_wait_seconds\": {:.6},\n",
                "      \"overlap_fraction\": {:.4},\n",
                "      \"max_dist_vs_raw\": {:e}\n",
                "    }}"
            ),
            self.label,
            self.seconds,
            self.gb_logical_written,
            self.gb_written,
            self.compression_ratio,
            self.encode_seconds,
            self.decode_seconds,
            self.io_wait_seconds,
            self.overlap_fraction,
            self.max_dist_vs_raw,
        )
    }
}

/// One schedule's codec comparison (`modes[0]` is always `none`).
pub struct CompressBenchReport {
    pub n_qubits: u32,
    pub depth: u32,
    pub kmax: u32,
    pub global_qubits: u32,
    pub prefetch_depth: usize,
    pub threads: usize,
    pub swaps: usize,
    pub modes: Vec<CompressModeReport>,
}

impl CompressBenchReport {
    /// The raw (`none`) baseline row.
    pub fn raw(&self) -> &CompressModeReport {
        &self.modes[0]
    }

    /// The named codec's row, if measured.
    pub fn mode(&self, label: &str) -> Option<&CompressModeReport> {
        self.modes.iter().find(|m| m.label == label)
    }

    /// Wall-clock of `label` relative to the raw run (< 1.0 = faster).
    pub fn wallclock_ratio(&self, label: &str) -> f64 {
        self.mode(label)
            .map(|m| m.seconds / self.raw().seconds.max(1e-12))
            .unwrap_or(f64::NAN)
    }

    fn to_json(&self) -> String {
        let modes: Vec<String> = self.modes.iter().map(|m| m.to_json()).collect();
        format!(
            concat!(
                "{{\n",
                "    \"depth\": {},\n",
                "    \"swaps\": {},\n",
                "    \"modes\": [{}]\n",
                "  }}"
            ),
            self.depth,
            self.swaps,
            modes.join(", "),
        )
    }
}

/// Serialize several depths' codec comparisons (one `run_compress_bench`
/// each) into the `BENCH_ooc_compress.json` document.
pub fn compress_reports_to_json(reports: &[CompressBenchReport]) -> String {
    assert!(!reports.is_empty());
    let runs: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!(
        concat!(
            "{{\n",
            "  \"n_qubits\": {},\n",
            "  \"kmax\": {},\n",
            "  \"global_qubits\": {},\n",
            "  \"prefetch_depth\": {},\n",
            "  \"threads\": {},\n",
            "  \"runs\": [{}]\n",
            "}}"
        ),
        reports[0].n_qubits,
        reports[0].kmax,
        reports[0].global_qubits,
        reports[0].prefetch_depth,
        reports[0].threads,
        runs.join(", "),
    )
}

/// Run the pipelined engine once per codec on one supremacy schedule and
/// report byte traffic, codec time and wall-clock side by side. The
/// `none` run doubles as the correctness oracle: every lossless codec
/// must reproduce its state bit for bit (`max_dist_vs_raw == 0.0`).
#[allow(clippy::too_many_arguments)]
pub fn run_compress_bench(
    rows: u32,
    cols: u32,
    depth: u32,
    kmax: u32,
    global_qubits: u32,
    prefetch_depth: usize,
    threads: usize,
    codecs: &[Codec],
) -> CompressBenchReport {
    let c = supremacy_circuit(&SupremacySpec {
        rows,
        cols,
        depth,
        seed: 0,
    });
    let n = c.n_qubits();
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(
        &exec,
        &SchedulerConfig::distributed(n - global_qubits, kmax),
    );
    let kernel = KernelConfig {
        threads,
        ..KernelConfig::default()
    };

    let run = |codec: Codec| {
        let dir = ScratchDir::new(&format!("bench_comp_{}", codec.name()));
        let mut sim = OocSimulator::<f64>::new(OocConfig {
            kernel,
            prefetch_depth,
            compress: codec,
            ..OocConfig::default()
        });
        sim.run_gather(dir.path(), &schedule, uniform)
            .expect("compress bench run")
    };

    let (raw_out, raw_state) = run(Codec::None);
    let mut modes = vec![CompressModeReport {
        label: Codec::None.name(),
        seconds: raw_out.sim_seconds,
        gb_logical_written: raw_out.io.logical_bytes_written as f64 / 1e9,
        gb_written: raw_out.io.bytes_written as f64 / 1e9,
        compression_ratio: raw_out.io.compression_ratio(),
        encode_seconds: raw_out.io.encode_seconds,
        decode_seconds: raw_out.io.decode_seconds,
        io_wait_seconds: raw_out.io.io_wait_seconds,
        overlap_fraction: raw_out.io.overlap_fraction(),
        entropy: raw_out.entropy,
        max_dist_vs_raw: 0.0,
    }];
    for &codec in codecs.iter().filter(|c| !c.is_none()) {
        let (out, state) = run(codec);
        let d = max_dist(&state, &raw_state);
        assert!(
            !codec.is_lossless() || d == 0.0,
            "lossless codec {} diverged from the raw state: {d:e}",
            codec.name()
        );
        modes.push(CompressModeReport {
            label: codec.name(),
            seconds: out.sim_seconds,
            gb_logical_written: out.io.logical_bytes_written as f64 / 1e9,
            gb_written: out.io.bytes_written as f64 / 1e9,
            compression_ratio: out.io.compression_ratio(),
            encode_seconds: out.io.encode_seconds,
            decode_seconds: out.io.decode_seconds,
            io_wait_seconds: out.io.io_wait_seconds,
            overlap_fraction: out.io.overlap_fraction(),
            entropy: out.entropy,
            max_dist_vs_raw: d,
        });
    }

    CompressBenchReport {
        n_qubits: n,
        depth,
        kmax,
        global_qubits,
        prefetch_depth,
        threads,
        swaps: schedule.n_swaps(),
        modes,
    }
}

/// Plan a depth-`depth` supremacy circuit on a rows×cols grid with
/// 2^`global_qubits` chunks and run all three engine modes on it.
#[allow(clippy::too_many_arguments)]
pub fn run_ooc_bench(
    rows: u32,
    cols: u32,
    depth: u32,
    kmax: u32,
    global_qubits: u32,
    segment_ops: usize,
    prefetch_depth: usize,
    threads: usize,
) -> OocBenchReport {
    let c = supremacy_circuit(&SupremacySpec {
        rows,
        cols,
        depth,
        seed: 0,
    });
    let n = c.n_qubits();
    let l = n - global_qubits;
    let (exec, uniform) = strip_initial_hadamards(&c);
    let coarse = plan(&exec, &SchedulerConfig::distributed(l, kmax));
    let segmented = segment_stages(&coarse, segment_ops);
    let kernel = KernelConfig {
        threads,
        ..KernelConfig::default()
    };

    let run = |config: OocConfig, schedule, tag| {
        let dir = ScratchDir::new(tag);
        let mut sim = OocSimulator::<f64>::new(config);
        sim.run(dir.path(), schedule, uniform).expect("ooc run")
    };
    // The pipelined run records live telemetry (per-chunk latency
    // histograms, ooc.* counters); the sync modes run with telemetry
    // disabled so their timings stay undisturbed, and their IoStats are
    // republished into the same registry afterwards for the report.
    let telemetry = Telemetry::enabled();

    let out = run(
        OocConfig::sync_baseline(kernel),
        &segmented,
        "bench_sync_seg",
    );
    let sync_segmented = OocModeReport::from_run(
        "sync segmented",
        out.sim_seconds,
        &out.io,
        out.runs,
        out.entropy,
    );
    if let Some(m) = telemetry.metrics() {
        out.io.publish_into(m, "ooc.sync_segmented");
    }

    let out = run(
        OocConfig::sync_baseline(kernel),
        &coarse,
        "bench_sync_coarse",
    );
    let sync_coarse = OocModeReport::from_run(
        "sync coarse",
        out.sim_seconds,
        &out.io,
        out.runs,
        out.entropy,
    );
    if let Some(m) = telemetry.metrics() {
        out.io.publish_into(m, "ooc.sync_coarse");
    }

    let out = run(
        OocConfig {
            kernel,
            prefetch_depth,
            telemetry: telemetry.clone(),
            ..OocConfig::default()
        },
        &segmented,
        "bench_pipelined",
    );
    let pipelined =
        OocModeReport::from_run("pipelined", out.sim_seconds, &out.io, out.runs, out.entropy);

    // All three modes execute the same gates in the same order; the
    // entropy is the cross-engine correctness witness.
    assert!(
        (sync_segmented.entropy - pipelined.entropy).abs() < 1e-9
            && (sync_coarse.entropy - pipelined.entropy).abs() < 1e-9,
        "engine modes disagree on entropy"
    );

    OocBenchReport {
        n_qubits: n,
        depth,
        kmax,
        global_qubits,
        segment_ops,
        prefetch_depth,
        threads,
        stages: segmented.stages.len(),
        swaps: segmented.n_swaps(),
        sync_segmented,
        sync_coarse,
        pipelined,
        metrics: telemetry.metrics_snapshot(),
    }
}
