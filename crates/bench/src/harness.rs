//! Shared measurement utilities for the figure/table binaries.

use qsim_kernels::apply::{apply_gate, KernelConfig};
use qsim_util::c64;
use qsim_util::flops::{gate_flops, gflops};
use qsim_util::matrix::GateMatrix;
use qsim_util::stats::{summarize, time_reps};
use qsim_util::Xoshiro256;

/// A random dense k-qubit gate (unitarity is irrelevant for timing).
pub fn random_gate(k: u32, seed: u64) -> GateMatrix<f64> {
    let d = 1usize << k;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    GateMatrix::from_rows(
        k,
        (0..d * d)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect(),
    )
}

/// A random normalized state of 2^n amplitudes.
pub fn random_state(n: u32, seed: u64) -> Vec<c64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut v: Vec<c64> = (0..1usize << n)
        .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect();
    let norm: f64 = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    let inv = 1.0 / norm;
    v.iter_mut().for_each(|a| *a = a.scale(inv));
    v
}

/// Median GFLOPS of applying a dense k-qubit gate at `qubits` to a 2^n
/// state under `cfg`.
pub fn measure_kernel_gflops(
    n: u32,
    qubits: &[u32],
    cfg: &KernelConfig,
    warmup: usize,
    reps: usize,
) -> f64 {
    let k = qubits.len() as u32;
    let m = random_gate(k, 0xbeef ^ k as u64);
    let mut state = random_state(n, 0xfeed ^ n as u64);
    let med = summarize(&time_reps(warmup, reps, || {
        apply_gate(&mut state, qubits, &m, cfg);
    }))
    .median;
    gflops(gate_flops(n, k), med)
}

/// Median GFLOPS of an arbitrary full-sweep kernel function.
pub fn measure_fn_gflops(
    n: u32,
    qubits: &[u32],
    warmup: usize,
    reps: usize,
    mut f: impl FnMut(&mut [c64], &[u32]),
) -> f64 {
    let k = qubits.len() as u32;
    let mut state = random_state(n, 0x1dea ^ n as u64);
    let med = summarize(&time_reps(warmup, reps, || {
        f(&mut state, qubits);
    }))
    .median;
    gflops(gate_flops(n, k), med)
}

/// Low-order operand list `[0, 1, .., k-1]`.
pub fn low_order_qubits(k: u32) -> Vec<u32> {
    (0..k).collect()
}

/// High-order operand list `[n-k, .., n-1]`.
pub fn high_order_qubits(n: u32, k: u32) -> Vec<u32> {
    (n - k..n).collect()
}

/// Print a row of a paper-style table.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("  "));
}

/// Fixed-width cell.
pub fn cell(s: impl std::fmt::Display, width: usize) -> String {
    format!("{:>width$}", s.to_string(), width = width)
}

/// Parse `--nXX`-style CLI overrides: returns the value after `name` if
/// present (`--state-qubits 22` or `--state-qubits=22`).
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(rest) = a.strip_prefix(&format!("{name}=")) {
            return Some(rest.to_string());
        }
        if a == name {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Parse a u32 CLI override with default.
pub fn arg_u32(name: &str, default: u32) -> u32 {
    arg_value(name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad value for {name}")))
        .unwrap_or(default)
}

/// True when a bare flag is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Hardware thread count of this host (1 when it cannot be queried) —
/// the denominator every scaling bench sweeps up to.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_measurement_is_positive() {
        let cfg = KernelConfig::sequential();
        let g = measure_kernel_gflops(12, &[0], &cfg, 0, 2);
        assert!(g > 0.0 && g.is_finite());
    }

    #[test]
    fn qubit_lists() {
        assert_eq!(low_order_qubits(3), vec![0, 1, 2]);
        assert_eq!(high_order_qubits(10, 3), vec![7, 8, 9]);
    }

    #[test]
    fn random_state_is_normalized() {
        let s = random_state(10, 1);
        let norm: f64 = s.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_formats_right_aligned() {
        assert_eq!(cell("ab", 5), "   ab");
    }
}
