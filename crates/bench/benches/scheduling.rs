//! Criterion benchmarks for the circuit-side pre-computation: supremacy
//! generation, full-scale planning (the paper's "1–3 seconds" budget,
//! §3.6.1), gate fusion, and the communication collectives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_net::collective::{all_to_all, Communicator};
use qsim_net::fabric::run_cluster;
use qsim_sched::{plan, SchedulerConfig};
use qsim_util::c64;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("generate_45q_depth25", |b| {
        b.iter(|| {
            supremacy_circuit(&SupremacySpec {
                rows: 9,
                cols: 5,
                depth: 25,
                seed: 0,
            })
        });
    });
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_depth25_l30");
    for (rows, cols) in [(6u32, 5u32), (7, 6), (9, 5)] {
        let circuit = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth: 25,
            seed: 0,
        });
        let n = rows * cols;
        let cfg = SchedulerConfig::distributed(30.min(n - 1).max(4), 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| plan(&circuit, &cfg));
        });
    }
    group.finish();
}

fn bench_all_to_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_to_all");
    for ranks in [2usize, 4, 8] {
        // 2^16 amplitudes per rank.
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                run_cluster(ranks, |ctx| {
                    let send = vec![c64::new(ctx.rank() as f64, 0.0); 1 << 16];
                    all_to_all(ctx, Communicator::world(ctx), &send).len()
                })
            });
        });
    }
    group.finish();
}

fn bench_ooc_swap(c: &mut Criterion) {
    // External all-to-all (the §5 disk path): one full swap of a 2^16
    // state split into 4 chunk files.
    use qsim_ooc::{OocSimulator, ScratchDir};
    use qsim_sched::plan as splan;
    let circuit = {
        let mut c = qsim_circuit::Circuit::new(16);
        for q in 0..16 {
            c.h(q);
        }
        for q in 0..15 {
            c.cz(q, q + 1);
        }
        for q in 0..16 {
            c.push(qsim_circuit::Gate::SqrtX(q));
        }
        c
    };
    let schedule = splan(&circuit, &SchedulerConfig::distributed(14, 4));
    c.bench_function("ooc_run_16q", |b| {
        let mut sim = OocSimulator::<f64>::default();
        b.iter(|| {
            let dir = ScratchDir::new("bench_run16");
            let out = sim.run(dir.path(), &schedule, false).unwrap();
            out.norm
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_generation, bench_planning, bench_all_to_all, bench_ooc_swap
}
criterion_main!(benches);
