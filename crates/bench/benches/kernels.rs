//! Criterion micro-benchmarks for the gate kernels: the optimization-step
//! ladder (Fig. 2), per-k low/high-order sweeps (Fig. 6/9), and the
//! AVX2-vs-scalar ablation. Small state (2^18) so `cargo bench` stays
//! quick; the figure binaries measure the big-state versions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qsim_bench::harness::{high_order_qubits, low_order_qubits, random_gate, random_state};
use qsim_kernels::apply::{apply_gate, KernelConfig, OptLevel, Simd};
use qsim_kernels::avx::apply_avx_eq1;
use qsim_util::flops::gate_flops;

const N: u32 = 18;

fn bench_opt_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_steps_k4");
    group.throughput(Throughput::Elements(gate_flops(N, 4)));
    let m = random_gate(4, 1);
    let qubits = low_order_qubits(4);
    let configs = [
        ("step0_twovec", OptLevel::TwoVector, Simd::Scalar),
        ("step1_inplace", OptLevel::InPlace, Simd::Scalar),
        ("step3_blocked_scalar", OptLevel::Blocked, Simd::Scalar),
        ("step3_blocked_avx", OptLevel::Blocked, Simd::Auto),
    ];
    for (name, opt, simd) in configs {
        let cfg = KernelConfig {
            opt,
            simd,
            block: 4,
            threads: 1,
        };
        let mut state = random_state(N, 2);
        group.bench_function(name, |b| {
            b.iter(|| apply_gate(&mut state, &qubits, &m, &cfg));
        });
    }
    // The Eq.-(1) vectorized step measured through its dedicated kernel.
    let mut state = random_state(N, 2);
    group.bench_function("step2_avx_eq1", |b| {
        b.iter(|| apply_avx_eq1(&mut state, &qubits, &m));
    });
    group.finish();
}

fn bench_kernel_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_size");
    let cfg = KernelConfig {
        threads: 1,
        ..KernelConfig::default()
    };
    for k in 1..=5u32 {
        group.throughput(Throughput::Elements(gate_flops(N, k)));
        let m = random_gate(k, 10 + k as u64);
        let mut state = random_state(N, 20 + k as u64);
        let low = low_order_qubits(k);
        group.bench_with_input(BenchmarkId::new("low_order", k), &k, |b, _| {
            b.iter(|| apply_gate(&mut state, &low, &m, &cfg));
        });
        let high = high_order_qubits(N, k);
        group.bench_with_input(BenchmarkId::new("high_order", k), &k, |b, _| {
            b.iter(|| apply_gate(&mut state, &high, &m, &cfg));
        });
    }
    group.finish();
}

fn bench_diagonal_specialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("specialized");
    let mut state = random_state(N, 3);
    group.bench_function("cz_kernel", |b| {
        b.iter(|| qsim_kernels::specialized::apply_cz(&mut state, 2, 9));
    });
    let t_diag = [
        qsim_util::c64::one(),
        qsim_util::c64::from_polar(1.0, std::f64::consts::FRAC_PI_4),
    ];
    group.bench_function("t_diagonal", |b| {
        b.iter(|| qsim_kernels::specialized::apply_diagonal(&mut state, &[5], &t_diag));
    });
    // The same T as a dense 1-qubit kernel, for the specialization ratio.
    let t_dense = qsim_circuit::Gate::T(0).matrix::<f64>();
    let cfg = KernelConfig {
        threads: 1,
        ..KernelConfig::default()
    };
    group.bench_function("t_dense_kernel", |b| {
        b.iter(|| apply_gate(&mut state, &[5], &t_dense, &cfg));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_opt_steps, bench_kernel_sizes, bench_diagonal_specialization
}
criterion_main!(benches);
