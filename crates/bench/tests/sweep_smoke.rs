//! Tiny-n smoke run of `fig7_kernel_scaling --mode sweep`'s measurement
//! path, wired into the workspace test suite: the tiled stage executor
//! must hit the ≥ 1.5× pass-reduction acceptance floor on a depth-25
//! supremacy circuit and agree with the per-gate path on the entropy
//! (checked inside `run_sweep_bench`).

use qsim_bench::sweep_report::run_sweep_bench;

#[test]
fn sweep_mode_smoke_hits_pass_reduction_floor() {
    // 3x4 grid (n = 12), depth 25, kmax 4 — the acceptance geometry's
    // shape at toy scale; explicit tile keeps the run deterministic.
    let r = run_sweep_bench(3, 4, 25, 4, 1, Some(10));
    assert_eq!(r.n_qubits, 12);
    assert!(r.stages >= 1 && r.stats.baseline_passes > 0);
    assert!(
        r.stats.pass_ratio() >= 1.5,
        "pass ratio {:.2} below the 1.5x acceptance floor",
        r.stats.pass_ratio()
    );
    assert!(r.stats.bytes_streamed < r.stats.baseline_bytes);
    // The JSON report must be well-formed enough to carry the headline
    // numbers (no serde in-tree; keep the contract honest).
    let json = r.to_json();
    assert!(json.contains("\"pass_ratio\""));
    assert!(json.contains("\"sweep_passes\""));
}
