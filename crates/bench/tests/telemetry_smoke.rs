//! Cross-engine telemetry smoke test: run all three execution engines on
//! one small supremacy circuit with a shared enabled [`Telemetry`], then
//! validate the exported Chrome trace and metrics snapshot with the
//! in-crate JSON parser:
//!
//! * the trace parses, and carries **distinct tracks** for the
//!   single-node engine, every distributed rank, and each OOC pipeline
//!   thread (compute / prefetch / writeback);
//! * every engine phase contributed ≥ 1 span (plan/stage for the
//!   single-node sweep, stage/swap/reduce per rank, compute/read/write
//!   for the OOC pipeline);
//! * the single-node root span accounts for most of the engine's
//!   measured wall-clock (lenient 75% floor here — timing at toy sizes
//!   is noisy; the ≥ 90% acceptance check runs at n ≥ 20 via the CLI);
//! * the metrics snapshot parses and holds populated `swap_ns`,
//!   `chunk_io_ns` and `stage_apply_ns` latency histograms.

use std::collections::HashMap;

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::dist::{DistConfig, DistSimulator};
use qsim_core::single::{strip_initial_hadamards, SingleNodeSimulator};
use qsim_kernels::apply::KernelConfig;
use qsim_ooc::{OocConfig, OocSimulator, ScratchDir};
use qsim_sched::{plan, SchedulerConfig};
use qsim_telemetry::json::{parse, Json};
use qsim_telemetry::Telemetry;

/// Flatten the parsed trace into (track name, span name, dur µs) rows.
fn trace_spans(doc: &Json) -> Vec<(String, String, f64)> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let mut tid_names: HashMap<i64, String> = HashMap::new();
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) == Some("M") {
            let tid = ev.get("tid").and_then(|t| t.as_f64()).unwrap() as i64;
            let name = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .unwrap()
                .to_string();
            tid_names.insert(tid, name);
        }
    }
    events
        .iter()
        .filter(|ev| ev.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .map(|ev| {
            let tid = ev.get("tid").and_then(|t| t.as_f64()).unwrap() as i64;
            (
                tid_names.get(&tid).cloned().unwrap_or_default(),
                ev.get("name").and_then(|n| n.as_str()).unwrap().to_string(),
                ev.get("dur").and_then(|d| d.as_f64()).unwrap(),
            )
        })
        .collect()
}

fn count(spans: &[(String, String, f64)], track: &str, name: &str) -> usize {
    spans
        .iter()
        .filter(|(t, n, _)| t == track && n == name)
        .count()
}

#[test]
fn all_engines_emit_spans_and_metrics() {
    let telemetry = Telemetry::enabled();
    let spec = SupremacySpec {
        rows: 3,
        cols: 4,
        depth: 25,
        seed: 0,
    };
    let circuit = supremacy_circuit(&spec);
    let n = spec.n_qubits();

    // Single-node sweep engine.
    let single = SingleNodeSimulator {
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let out_single = single.run(&circuit);

    // Distributed engine, 4 ranks.
    let ranks = 4usize;
    let (exec, uniform) = strip_initial_hadamards(&circuit);
    let l = n - ranks.trailing_zeros();
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, 4));
    assert!(schedule.n_swaps() > 0, "want swaps in the smoke schedule");
    let dist = DistSimulator::new(DistConfig {
        n_ranks: ranks,
        kernel: KernelConfig::sequential(),
        telemetry: telemetry.clone(),
        ..Default::default()
    });
    let _ = dist.run(&exec, &schedule, uniform);

    // Out-of-core pipelined engine on the same schedule.
    let dir = ScratchDir::new("telemetry_smoke");
    let mut ooc = OocSimulator::<f64>::new(OocConfig {
        kernel: KernelConfig::sequential(),
        telemetry: telemetry.clone(),
        ..OocConfig::default()
    });
    let _ = ooc.run(dir.path(), &schedule, uniform).expect("ooc run");

    // --- Chrome trace: parses, distinct tracks, spans per phase. ---
    let doc = parse(&telemetry.chrome_trace_json()).expect("trace parses");
    let spans = trace_spans(&doc);
    let tracks: std::collections::BTreeSet<&str> =
        spans.iter().map(|(t, _, _)| t.as_str()).collect();
    for want in [
        "single",
        "rank 0",
        "rank 1",
        "rank 2",
        "rank 3",
        "ooc.compute",
        "ooc.prefetch",
        "ooc.writeback",
    ] {
        assert!(
            tracks.contains(want),
            "missing track {want:?} in {tracks:?}"
        );
    }

    // Single-node phases.
    assert_eq!(count(&spans, "single", "run"), 1);
    assert!(count(&spans, "single", "plan") >= 1);
    assert!(count(&spans, "single", "stage") >= 1);
    // Distributed phases, on every rank.
    for r in 0..ranks {
        let t = format!("rank {r}");
        assert!(count(&spans, &t, "stage") >= 1, "no stage span on {t}");
        assert!(count(&spans, &t, "swap") >= 1, "no swap span on {t}");
        assert!(count(&spans, &t, "reduce") >= 1, "no reduce span on {t}");
    }
    // OOC pipeline phases across all three threads.
    assert!(count(&spans, "ooc.compute", "compute") >= 1);
    assert!(count(&spans, "ooc.compute", "external swap") >= 1);
    assert!(count(&spans, "ooc.prefetch", "read") >= 1);
    assert!(count(&spans, "ooc.writeback", "write") >= 1);

    // --- Coverage: the single-node root span accounts for ≥ 75% of the
    // engine's own wall-clock measurement. ---
    let run_secs: f64 = spans
        .iter()
        .filter(|(t, n, _)| t == "single" && n == "run")
        .map(|(_, _, dur_us)| dur_us / 1e6)
        .sum();
    let wall = out_single.plan_seconds + out_single.sim_seconds;
    assert!(
        run_secs >= 0.75 * wall,
        "root span covers {run_secs:.6}s of {wall:.6}s wall-clock"
    );

    // --- Metrics snapshot: parses, latency histograms populated. ---
    let metrics = parse(&telemetry.metrics_json()).expect("metrics parse");
    let hists = metrics.get("histograms").expect("histograms section");
    for name in ["swap_ns", "chunk_io_ns", "stage_apply_ns"] {
        let h = hists
            .get(name)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        let count = h.get("count").and_then(|c| c.as_f64()).unwrap();
        assert!(count >= 1.0, "{name} histogram is empty");
    }
    // The per-engine published counters made it into the shared registry.
    let counters = metrics.get("counters").expect("counters section");
    for name in [
        "single.sweep.sweep_passes",
        "dist.fabric.bytes_sent",
        "ooc.io.bytes_read",
    ] {
        assert!(counters.get(name).is_some(), "missing counter {name}");
    }
}
