//! Tiny-n smoke run of `fig7_kernel_scaling --mode precision`'s
//! measurement path, wired into the workspace test suite: the f32 tier
//! must stream half the bytes of f64 and stay within f32 rounding of
//! the f64 state. Wall-clock speedup is NOT asserted at toy scale —
//! timing at n = 12 is noise; the ≥ 1.3x floor is checked on the
//! full-size `BENCH_precision.json` run.

use qsim_bench::precision_report::run_precision_bench;

#[test]
fn precision_mode_smoke_halves_bytes_and_tracks_f64() {
    // 3x4 grid (n = 12), depth 25, kmax 4 — the sweep smoke geometry.
    let r = run_precision_bench(3, 4, 25, 4, 1);
    assert_eq!(r.n_qubits, 12);
    assert!(r.stages >= 1);
    assert!(r.f64_bytes_streamed > 0 && r.f32_bytes_streamed > 0);
    // Complex<f32> is exactly half the bytes of Complex<f64>, and both
    // tiers execute the identical compiled stages, so the streamed-byte
    // ratio is exactly 2.
    assert_eq!(
        r.bytes_ratio(),
        2.0,
        "f32 must stream exactly half the bytes"
    );
    // Fidelity at depth 25: norm within 1e-4, per-amplitude drift well
    // under a typical amplitude (2^-6 here).
    assert!((r.f32_norm - 1.0).abs() < 1e-4, "f32 norm {}", r.f32_norm);
    assert!(r.max_amp_delta < 1e-4, "f32 drift {:e}", r.max_amp_delta);
    assert!(
        r.entropy_delta < 1e-2,
        "entropy delta {:e}",
        r.entropy_delta
    );
    let json = r.to_json();
    assert!(json.contains("\"speedup\""));
    assert!(json.contains("\"bytes_ratio\""));
    assert!(json.contains("\"max_amp_delta\""));
}
