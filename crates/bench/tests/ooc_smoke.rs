//! Workspace smoke test for the out-of-core pipeline: at tiny n the
//! batched engine must already clear the ≥ 3× traversal-reduction
//! acceptance floor against the synchronous one-traversal-per-op
//! baseline, with all engine modes agreeing on the outcome entropy.
//! (The wall-clock floor is asserted by the full-size
//! `fig_ooc_pipeline` run, not here — timing at toy sizes is noise.)

use qsim_bench::ooc_report::{run_compress_bench, run_ooc_bench};
use qsim_ooc::Codec;

#[test]
fn ooc_pipeline_traversal_floor() {
    // 3×4 grid (n = 12), 4 chunks, one op per stage, single thread.
    let r = run_ooc_bench(3, 4, 25, 4, 2, 1, 3, 1);
    assert!(
        r.traversal_ratio() >= 3.0,
        "traversal ratio {:.2} below the 3x acceptance floor \
         (sync {} vs pipelined {} traversals over {} stages / {} swaps)",
        r.traversal_ratio(),
        r.sync_segmented.traversals,
        r.pipelined.traversals,
        r.stages,
        r.swaps,
    );
    // Batching makes the traversal count granularity-independent: one
    // compute traversal per swap boundary + the swap passes themselves.
    assert_eq!(r.pipelined.runs, r.swaps + 1);
    assert!(r.pipelined.traversals <= (r.swaps as u64 + 1) + 2 * r.swaps as u64);
    // The pipelined run overlaps IO with compute; the sync baseline by
    // construction cannot.
    assert!(r.pipelined.overlap_fraction >= 0.0);
    assert!(r.sync_segmented.overlap_fraction <= 0.05);
}

#[test]
fn ooc_compress_smoke() {
    // 3×4 grid (n = 12), depth 10, 4 chunks, single thread: the codec
    // comparison must show shuffle-rle never losing to raw on bytes
    // written and reproducing the raw state bit for bit, with lossy-8
    // inside its truncation budget. (The ≥ 1.3x byte-reduction
    // acceptance floor is asserted by the full-size
    // `fig_ooc_pipeline --mode compress` run, not here — a toy state is
    // not representative of the n=22 entropy profile.)
    let r = run_compress_bench(
        3,
        4,
        10,
        4,
        2,
        3,
        1,
        &[Codec::None, Codec::ShuffleRle, Codec::Lossy(8)],
    );
    let raw = r.raw();
    assert_eq!(raw.compression_ratio, 1.0, "raw runs store byte-for-byte");
    let rle = r.mode("shuffle-rle").expect("shuffle-rle row");
    assert_eq!(rle.max_dist_vs_raw, 0.0, "lossless parity");
    assert!(
        rle.compression_ratio >= 1.0,
        "stored-raw fallback bounds the ratio at 1.0: {}",
        rle.compression_ratio
    );
    assert_eq!(
        rle.gb_logical_written, raw.gb_logical_written,
        "codec must not change the amplitude traffic"
    );
    let lossy = r.mode("lossy-8").expect("lossy-8 row");
    assert!(
        lossy.max_dist_vs_raw < 1e-10,
        "lossy-8 error {:e} above budget",
        lossy.max_dist_vs_raw
    );
    assert!(lossy.compression_ratio >= rle.compression_ratio);
}
