//! Workspace smoke test for the out-of-core pipeline: at tiny n the
//! batched engine must already clear the ≥ 3× traversal-reduction
//! acceptance floor against the synchronous one-traversal-per-op
//! baseline, with all engine modes agreeing on the outcome entropy.
//! (The wall-clock floor is asserted by the full-size
//! `fig_ooc_pipeline` run, not here — timing at toy sizes is noise.)

use qsim_bench::ooc_report::run_ooc_bench;

#[test]
fn ooc_pipeline_traversal_floor() {
    // 3×4 grid (n = 12), 4 chunks, one op per stage, single thread.
    let r = run_ooc_bench(3, 4, 25, 4, 2, 1, 3, 1);
    assert!(
        r.traversal_ratio() >= 3.0,
        "traversal ratio {:.2} below the 3x acceptance floor \
         (sync {} vs pipelined {} traversals over {} stages / {} swaps)",
        r.traversal_ratio(),
        r.sync_segmented.traversals,
        r.pipelined.traversals,
        r.stages,
        r.swaps,
    );
    // Batching makes the traversal count granularity-independent: one
    // compute traversal per swap boundary + the swap passes themselves.
    assert_eq!(r.pipelined.runs, r.swaps + 1);
    assert!(r.pipelined.traversals <= (r.swaps as u64 + 1) + 2 * r.swaps as u64);
    // The pipelined run overlaps IO with compute; the sync baseline by
    // construction cannot.
    assert!(r.pipelined.overlap_fraction >= 0.0);
    assert!(r.sync_segmented.overlap_fraction <= 0.05);
}
