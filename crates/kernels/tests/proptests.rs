//! Property-based tests for the kernel crate: every execution path must
//! agree with the scalar in-place reference on arbitrary matrices, states
//! and operand choices.

use proptest::prelude::*;
use qsim_kernels::apply::{apply_gate, KernelConfig, OptLevel, Simd};
use qsim_kernels::matrix::GateMatrix;
use qsim_kernels::opt::apply_inplace;
use qsim_util::c64;
use qsim_util::complex::max_dist;

fn arb_c64() -> impl Strategy<Value = c64> {
    (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(r, i)| c64::new(r, i))
}

fn arb_state(n: u32) -> impl Strategy<Value = Vec<c64>> {
    prop::collection::vec(arb_c64(), 1usize << n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_paths_agree_with_inplace_reference(
        k in 1u32..=5,
        seedless_state in arb_state(9),
        // matrix depends on k: regenerate inside.
        raw in prop::collection::vec(arb_c64(), 1024),
        qsel in prop::collection::vec(0u32..9, 8),
    ) {
        let d = 1usize << k;
        let m = GateMatrix::from_rows(k, raw[..d * d].to_vec());
        // Build k distinct positions from qsel.
        let mut qubits: Vec<u32> = Vec::new();
        for &q in &qsel {
            if !qubits.contains(&q) {
                qubits.push(q);
            }
            if qubits.len() == k as usize {
                break;
            }
        }
        prop_assume!(qubits.len() == k as usize);

        let mut reference = seedless_state.clone();
        apply_inplace(&mut reference, &qubits, &m);

        for (opt, simd) in [
            (OptLevel::TwoVector, Simd::Scalar),
            (OptLevel::Fma, Simd::Scalar),
            (OptLevel::Blocked, Simd::Scalar),
            (OptLevel::Blocked, Simd::Avx2),
            (OptLevel::Blocked, Simd::Auto),
        ] {
            let cfg = KernelConfig { opt, simd, block: 2, threads: 1 };
            let mut s = seedless_state.clone();
            apply_gate(&mut s, &qubits, &m, &cfg);
            prop_assert!(
                max_dist(&s, &reference) < 1e-10,
                "cfg {:?}/{:?} diverges: {}", opt, simd, max_dist(&s, &reference)
            );
        }
    }

    #[test]
    fn unitary_gates_preserve_norm(
        state in arb_state(8),
        phase in -3.0f64..3.0,
        q in 0u32..8,
    ) {
        // Diagonal unitary: norm must be exactly preserved.
        let mut m = GateMatrix::<f64>::identity(1);
        m.set(1, 1, c64::from_polar(1.0, phase));
        let mut s = state.clone();
        apply_gate(&mut s, &[q], &m, &KernelConfig::sequential());
        let before: f64 = state.iter().map(|a| a.norm_sqr()).sum();
        let after: f64 = s.iter().map(|a| a.norm_sqr()).sum();
        prop_assert!((before - after).abs() < 1e-10);
    }

    #[test]
    fn identity_matrix_is_noop(
        k in 1u32..=4,
        state in arb_state(8),
    ) {
        let m = GateMatrix::<f64>::identity(k);
        let qubits: Vec<u32> = (0..k).map(|j| j * 2).collect();
        let mut s = state.clone();
        apply_gate(&mut s, &qubits, &m, &KernelConfig::default());
        prop_assert!(max_dist(&s, &state) < 1e-12);
    }

    #[test]
    fn composition_equals_matrix_product(
        raw_a in prop::collection::vec(arb_c64(), 16),
        raw_b in prop::collection::vec(arb_c64(), 16),
        state in arb_state(6),
    ) {
        let a = GateMatrix::from_rows(2, raw_a);
        let b = GateMatrix::from_rows(2, raw_b);
        let qubits = vec![1u32, 4];
        // Apply a then b...
        let mut s1 = state.clone();
        apply_gate(&mut s1, &qubits, &a, &KernelConfig::sequential());
        apply_gate(&mut s1, &qubits, &b, &KernelConfig::sequential());
        // ...equals applying b·a fused.
        let ba = b.matmul(&a);
        let mut s2 = state.clone();
        apply_gate(&mut s2, &qubits, &ba, &KernelConfig::sequential());
        prop_assert!(max_dist(&s1, &s2) < 1e-9, "{}", max_dist(&s1, &s2));
    }
}
