//! Cache-tiled stage execution — one streaming pass per stage.
//!
//! The per-gate executors stream the whole state vector once per fused
//! gate, so a communication-free stage with a dozen clusters reads and
//! writes 2^n amplitudes a dozen times and the local compute path is
//! memory-bandwidth-bound (§3.3's motivation for fusion, taken one level
//! further). This module partitions the state into cache-resident *tiles*
//! of 2^T amplitudes and, per tile, applies **every** gate of the stage
//! whose operands fall inside the tile — dense clusters through the same
//! packed §3.1–3.2 kernel ladder (scalar/AVX2/AVX-512, chosen exactly as
//! the per-gate dispatch would), diagonal clusters folded into the sweep
//! as per-tile phase multiplications. One pass over DRAM then applies the
//! whole stage; only clusters wider than the tile fall back to a
//! dedicated full sweep.
//!
//! Bit-exactness contract: for the same op order and [`KernelConfig`],
//! the tiled executor produces *bitwise identical* amplitudes to the
//! per-gate oracle. Every gate runs the same kernel on the same packed
//! matrix over the same 2^k-amplitude groups (tile decomposition only
//! regroups the independent block counters), and the diagonal fold
//! mirrors `specialized::apply_diagonal` / the rank-reduction in
//! `qsim-core::dist` branch for branch — including the 1-qubit
//! unit-first-entry fast path, which *skips* (rather than multiplies by
//! one) the untouched half. The proptests in `qsim-core` assert
//! `max_dist == 0.0`.

use crate::apply::{choose_dense_path, ApplyDispatch, DensePath, KernelConfig, OptLevel, Simd};
use crate::avx::apply_avx_range;
use crate::avx512::{apply_avx512_range, Packed512};
use crate::avxf32::{apply_avx_f32_range, PackedF32};
use crate::matrix::{GateMatrix, PackedMatrix};
use crate::opt::{self, apply_blocked_packed_range, MAX_K};
use crate::parallel::{self, chunk_ranges, DisjointSlice, PAR_THRESHOLD};
use qsim_util::bits::{get_bit, IndexExpander};
use qsim_util::complex::Complex;
use qsim_util::Real;
use rayon::prelude::*;

/// Smallest tile the auto-clamp will shrink to: a tile narrower than the
/// widest kernel (k = [`MAX_K`]) would push dense clusters onto the
/// full-sweep fallback and defeat the point of tiling.
pub const MIN_TILE_QUBITS: u32 = MAX_K;

/// Traffic and pass counters for the tiled executor, surfaced through
/// `fig7_kernel_scaling --mode sweep` and `table2_endtoend`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Full-state streaming passes this executor performed (one per tiled
    /// pass, one per fallback full sweep).
    pub sweep_passes: u64,
    /// Passes the per-gate executor would have performed on the same ops
    /// (one per cluster, one per diagonal).
    pub baseline_passes: u64,
    /// Dense clusters applied inside cache tiles.
    pub tile_local_gates: u64,
    /// Dense clusters wider than the tile, applied as full sweeps.
    pub fallback_gates: u64,
    /// Diagonal ops folded into tiled passes as phase multiplications.
    pub diagonals_folded: u64,
    /// Bytes streamed to/from DRAM by this executor: 2 x state bytes per
    /// pass (read + write; tile gather/scatter stays cache-resident).
    pub bytes_streamed: u64,
    /// Bytes the per-gate executor would have streamed.
    pub baseline_bytes: u64,
}

impl SweepStats {
    /// Accumulate another counter set (per-stage or per-rank merging).
    pub fn merge(&mut self, o: &SweepStats) {
        self.sweep_passes += o.sweep_passes;
        self.baseline_passes += o.baseline_passes;
        self.tile_local_gates += o.tile_local_gates;
        self.fallback_gates += o.fallback_gates;
        self.diagonals_folded += o.diagonals_folded;
        self.bytes_streamed += o.bytes_streamed;
        self.baseline_bytes += o.baseline_bytes;
    }

    /// Pass-reduction factor over the per-gate baseline (the acceptance
    /// metric: >= 1.5x on depth-25 supremacy stages).
    pub fn pass_ratio(&self) -> f64 {
        self.baseline_passes as f64 / (self.sweep_passes as f64).max(1.0)
    }

    /// Flatten these counters into the unified metrics registry under
    /// `prefix` (e.g. `single.sweep`). The struct remains the typed
    /// view; the registry feeds the exported metrics snapshot.
    pub fn publish_into(&self, metrics: &qsim_telemetry::MetricsRegistry, prefix: &str) {
        metrics.counter_add(&format!("{prefix}.sweep_passes"), self.sweep_passes);
        metrics.counter_add(&format!("{prefix}.baseline_passes"), self.baseline_passes);
        metrics.counter_add(&format!("{prefix}.tile_local_gates"), self.tile_local_gates);
        metrics.counter_add(&format!("{prefix}.fallback_gates"), self.fallback_gates);
        metrics.counter_add(&format!("{prefix}.diagonals_folded"), self.diagonals_folded);
        metrics.counter_add(&format!("{prefix}.bytes_streamed"), self.bytes_streamed);
        metrics.counter_add(&format!("{prefix}.baseline_bytes"), self.baseline_bytes);
        metrics.gauge_set(&format!("{prefix}.pass_ratio"), self.pass_ratio());
    }
}

/// Clamp a (tuned) tile size to the local register and, with multiple
/// worker threads, shrink it until the pass has at least ~4x threads
/// tiles to steal — but never below [`MIN_TILE_QUBITS`].
pub fn effective_tile_qubits(tile: u32, local_qubits: u32, threads: usize) -> u32 {
    let mut t = tile.min(local_qubits).max(1);
    if threads > 1 {
        let want = (threads * 4).next_power_of_two().trailing_zeros();
        let cap = local_qubits
            .saturating_sub(want)
            .max(MIN_TILE_QUBITS.min(local_qubits));
        t = t.min(cap.max(1));
    }
    t
}

/// Precision-directed kernel selection for the tiled executor — the
/// sweep-level analogue of [`ApplyDispatch`]. Each precision packs a
/// stage matrix once into its own kernel-ready representation, then
/// applies it over block-counter ranges (tile-local) or the whole state
/// (fallback full sweep), choosing exactly the SIMD rung the per-gate
/// dispatch would pick — the bit-exactness contract holds per precision.
pub trait SweepDispatch: Real + ApplyDispatch {
    /// Packed-matrix representation for this precision's kernel ladder.
    type Packed: Send + Sync;

    /// Pack `pm` (already pre-permuted by the operand sort) for the
    /// kernel rung `cfg` resolves to at width `pm.k()`.
    fn pack(pm: &GateMatrix<Self>, cfg: &KernelConfig) -> Self::Packed;

    /// Apply to block counters `[c0, c1)` of `state`, sequentially.
    fn apply_range(
        state: &mut [Complex<Self>],
        exp: &IndexExpander,
        packed: &Self::Packed,
        offs: &[usize],
        block: usize,
        c0: usize,
        c1: usize,
    );

    /// Apply to the whole state through the parallel drivers (including
    /// the `PAR_THRESHOLD` seam).
    fn apply_full(
        state: &mut [Complex<Self>],
        exp: &IndexExpander,
        packed: &Self::Packed,
        block: usize,
        threads: usize,
    );
}

/// f64 packed forms, one per rung [`choose_dense_path`] can pick.
pub enum PackedDense64 {
    Scalar(PackedMatrix<f64>),
    Avx2(PackedMatrix<f64>),
    Avx512(Packed512),
}

impl SweepDispatch for f64 {
    type Packed = PackedDense64;

    fn pack(pm: &GateMatrix<f64>, cfg: &KernelConfig) -> PackedDense64 {
        match choose_dense_path(cfg, pm.k()) {
            DensePath::Avx512 => PackedDense64::Avx512(Packed512::pack(pm)),
            DensePath::Avx2 => PackedDense64::Avx2(PackedMatrix::pack(pm)),
            DensePath::Scalar => PackedDense64::Scalar(PackedMatrix::pack(pm)),
        }
    }

    fn apply_range(
        state: &mut [Complex<f64>],
        exp: &IndexExpander,
        packed: &PackedDense64,
        offs: &[usize],
        block: usize,
        c0: usize,
        c1: usize,
    ) {
        match packed {
            PackedDense64::Scalar(p) => {
                apply_blocked_packed_range(state, exp, p, offs, block, c0, c1)
            }
            PackedDense64::Avx2(p) => apply_avx_range(state, exp, p, offs, block, c0, c1),
            PackedDense64::Avx512(p) => apply_avx512_range(state, exp, p, offs, c0, c1),
        }
    }

    fn apply_full(
        state: &mut [Complex<f64>],
        exp: &IndexExpander,
        packed: &PackedDense64,
        block: usize,
        threads: usize,
    ) {
        match packed {
            PackedDense64::Scalar(p) => parallel::par_apply_blocked(state, exp, p, block, threads),
            PackedDense64::Avx2(p) => parallel::par_apply_avx(state, exp, p, block, threads),
            PackedDense64::Avx512(p) => parallel::par_apply_avx512(state, exp, p, threads),
        }
    }
}

/// f32 packed forms: the 8-lane `avxf32` quad ladder when the per-gate
/// f32 dispatch would take it, the portable blocked kernel otherwise.
pub enum PackedDense32 {
    Scalar(PackedMatrix<f32>),
    Avx2(PackedF32),
}

impl SweepDispatch for f32 {
    type Packed = PackedDense32;

    fn pack(pm: &GateMatrix<f32>, cfg: &KernelConfig) -> PackedDense32 {
        // Mirrors `ApplyDispatch for f32` exactly: AVX2 for k >= 2 at
        // the blocked rung with SIMD enabled (`PackedF32` needs dim >= 4).
        if cfg.opt == OptLevel::Blocked
            && cfg.simd != Simd::Scalar
            && pm.k() >= 2
            && crate::avx::avx2_available()
        {
            PackedDense32::Avx2(PackedF32::pack(pm))
        } else {
            PackedDense32::Scalar(PackedMatrix::pack(pm))
        }
    }

    fn apply_range(
        state: &mut [Complex<f32>],
        exp: &IndexExpander,
        packed: &PackedDense32,
        offs: &[usize],
        block: usize,
        c0: usize,
        c1: usize,
    ) {
        match packed {
            PackedDense32::Scalar(p) => {
                apply_blocked_packed_range(state, exp, p, offs, block, c0, c1)
            }
            PackedDense32::Avx2(p) => apply_avx_f32_range(state, exp, p, offs, c0, c1),
        }
    }

    fn apply_full(
        state: &mut [Complex<f32>],
        exp: &IndexExpander,
        packed: &PackedDense32,
        block: usize,
        threads: usize,
    ) {
        match packed {
            PackedDense32::Scalar(p) => parallel::par_apply_blocked(state, exp, p, block, threads),
            PackedDense32::Avx2(p) => parallel::par_apply_avx_f32(state, exp, p, threads),
        }
    }
}

/// A dense cluster prepared once per stage: operands sorted, matrix
/// pre-permuted and packed for the kernel path the per-gate dispatch
/// would pick (satellite: no re-packing on every apply call).
pub struct PreparedGate<R: SweepDispatch = f64> {
    exp: IndexExpander,
    offs: Vec<usize>,
    packed: R::Packed,
    block: usize,
    k: u32,
}

impl<R: SweepDispatch> PreparedGate<R> {
    /// Prepare a gate at `qubits` (tile-compact or physical positions)
    /// under `cfg`. Only meaningful at `OptLevel::Blocked` — the other
    /// ladder rungs have no packed range kernels.
    pub fn new(qubits: &[u32], m: &GateMatrix<R>, cfg: &KernelConfig) -> Self {
        assert_eq!(
            cfg.opt,
            OptLevel::Blocked,
            "tiled sweep requires the blocked kernel ladder"
        );
        let (exp, pm) = opt::prepare_free(qubits, m);
        let k = pm.k();
        let offs = (0..pm.dim()).map(|x| exp.offset(x)).collect();
        let packed = R::pack(&pm, cfg);
        Self {
            exp,
            offs,
            packed,
            block: cfg.block,
            k,
        }
    }

    /// Apply to block counters `[c0, c1)` of `state`, sequentially.
    fn apply_range(&self, state: &mut [Complex<R>], c0: usize, c1: usize) {
        R::apply_range(
            state,
            &self.exp,
            &self.packed,
            &self.offs,
            self.block,
            c0,
            c1,
        );
    }

    /// Apply to one cache tile (all blocks of `chunk`).
    #[inline]
    pub fn apply_chunk(&self, chunk: &mut [Complex<R>]) {
        self.apply_range(chunk, 0, chunk.len() >> self.k);
    }

    /// Apply to the whole state through the parallel drivers — the
    /// fallback full sweep for clusters wider than the tile. Identical
    /// code path (including the `PAR_THRESHOLD` seam) to the per-gate
    /// dispatch, minus the re-packing.
    pub fn apply_full(&self, state: &mut [Complex<R>], threads: usize) {
        R::apply_full(state, &self.exp, &self.packed, self.block, threads);
    }
}

/// A diagonal op prepared for per-tile folding. Each operand is resolved
/// once: inside the tile (bit of the in-tile index), outside the tile but
/// local (bit of the tile's base index), or global (bit of the rank).
pub struct PreparedDiag<R: Real = f64> {
    diag: Vec<Complex<R>>,
    /// (operand slot, compact in-tile position).
    in_tile: Vec<(usize, u32)>,
    /// (operand slot, physical position < local_qubits, not in tile).
    from_base: Vec<(usize, u32)>,
    /// (operand slot, rank-bit shift `p - local_qubits`).
    from_rank: Vec<(usize, u32)>,
}

impl<R: Real> PreparedDiag<R> {
    /// Classify `positions` against a sorted `tile` position set.
    pub fn new(positions: &[u32], diag: Vec<Complex<R>>, tile: &[u32], local_qubits: u32) -> Self {
        assert_eq!(diag.len(), 1usize << positions.len(), "diagonal size");
        let mut in_tile = Vec::new();
        let mut from_base = Vec::new();
        let mut from_rank = Vec::new();
        for (j, &p) in positions.iter().enumerate() {
            if let Ok(cp) = tile.binary_search(&p) {
                in_tile.push((j, cp as u32));
            } else if p < local_qubits {
                from_base.push((j, p));
            } else {
                from_rank.push((j, p - local_qubits));
            }
        }
        Self {
            diag,
            in_tile,
            from_base,
            from_rank,
        }
    }

    /// Fold the diagonal into one tile. `base` is the full-state index
    /// whose in-tile bits are zero (tile base); `rank` supplies bits of
    /// positions >= local_qubits.
    ///
    /// Mirrors `apply_rank_diagonal` + `specialized::apply_diagonal`
    /// branch for branch so the fold is bit-exact against the per-gate
    /// oracle: the pure-global case is one scalar phase, the 1-local-
    /// operand unit-first-entry case touches only the bit-set half, and
    /// the general case multiplies every amplitude by its gathered entry.
    pub fn apply_chunk(&self, chunk: &mut [Complex<R>], base: usize, rank: usize) {
        let mut rank_fixed = 0usize;
        for &(j, s) in &self.from_rank {
            rank_fixed |= ((rank >> s) & 1) << j;
        }
        let n_local = self.in_tile.len() + self.from_base.len();
        if n_local == 0 {
            let phase = self.diag[rank_fixed];
            for a in chunk.iter_mut() {
                *a *= phase;
            }
            return;
        }
        if n_local == 1 && (self.diag[rank_fixed] - Complex::one()).abs() <= R::EPSILON {
            // apply_diagonal's fast path: skip — don't multiply by one —
            // the half whose local bit is clear.
            if let Some(&(j, cp)) = self.in_tile.first() {
                let phase = self.diag[rank_fixed | (1usize << j)];
                let stride = 1usize << cp;
                let low = stride - 1;
                for c in 0..chunk.len() >> 1 {
                    let idx = ((c & !low) << 1) | (c & low) | stride;
                    chunk[idx] *= phase;
                }
            } else {
                let &(j, p) = self.from_base.first().unwrap();
                if get_bit(base, p) == 1 {
                    let phase = self.diag[rank_fixed | (1usize << j)];
                    for a in chunk.iter_mut() {
                        *a *= phase;
                    }
                }
            }
            return;
        }
        let mut fixed = rank_fixed;
        for &(j, p) in &self.from_base {
            fixed |= get_bit(base, p) << j;
        }
        for (x, a) in chunk.iter_mut().enumerate() {
            let mut idx = fixed;
            for &(j, cp) in &self.in_tile {
                idx |= ((x >> cp) & 1) << j;
            }
            *a *= self.diag[idx];
        }
    }
}

/// One op of a tiled pass.
pub enum TileOp<R: SweepDispatch = f64> {
    /// Dense cluster prepared over *compact* tile positions.
    Dense(PreparedGate<R>),
    /// Diagonal folded as per-tile phases (operands may be anywhere).
    Diag(PreparedDiag<R>),
}

/// A group of stage ops applied in one streaming pass over the state.
pub struct TiledPass<R: SweepDispatch = f64> {
    /// Sorted physical positions spanned by the tile.
    tile: Vec<u32>,
    /// Tile positions are exactly `0..T`: tiles are contiguous slices and
    /// the gather/scatter staging is skipped entirely (zero-copy).
    contiguous: bool,
    /// Gather tables of a non-contiguous tile, built once at compile
    /// time: the tile-counter expander and per-element offsets.
    gather: Option<(IndexExpander, Vec<usize>)>,
    ops: Vec<TileOp<R>>,
}

impl<R: SweepDispatch> TiledPass<R> {
    pub fn new(tile: Vec<u32>, ops: Vec<TileOp<R>>) -> Self {
        assert!(!tile.is_empty(), "empty tile");
        assert!(tile.windows(2).all(|w| w[0] < w[1]), "tile must be sorted");
        let contiguous = tile.iter().enumerate().all(|(i, &p)| p == i as u32);
        let gather = (!contiguous).then(|| {
            let exp = IndexExpander::new(&tile);
            let offs: Vec<usize> = (0..1usize << tile.len()).map(|x| exp.offset(x)).collect();
            (exp, offs)
        });
        Self {
            tile,
            contiguous,
            gather,
            ops,
        }
    }

    /// Number of ops folded into this pass.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    #[inline]
    fn apply_ops(&self, chunk: &mut [Complex<R>], base: usize, rank: usize) {
        for op in &self.ops {
            match op {
                TileOp::Dense(g) => g.apply_chunk(chunk),
                TileOp::Diag(d) => d.apply_chunk(chunk, base, rank),
            }
        }
    }

    #[inline]
    fn run_gathered_tile(
        &self,
        state: &mut [Complex<R>],
        exp: &IndexExpander,
        offs: &[usize],
        scratch: &mut [Complex<R>],
        t: usize,
        rank: usize,
    ) {
        let base = exp.expand(t);
        for (x, s) in scratch.iter_mut().enumerate() {
            *s = state[base + offs[x]];
        }
        self.apply_ops(scratch, base, rank);
        for (x, &s) in scratch.iter().enumerate() {
            state[base + offs[x]] = s;
        }
    }

    /// Stream the state once, applying every op of the pass per tile.
    pub fn run(
        &self,
        state: &mut [Complex<R>],
        rank: usize,
        threads: usize,
        stats: &mut SweepStats,
    ) {
        let tb = self.tile.len() as u32;
        let tile_len = 1usize << tb;
        assert!(state.len().is_power_of_two() && state.len() >= tile_len);
        let n_tiles = state.len() >> tb;
        let par = state.len() >= PAR_THRESHOLD && threads > 1 && n_tiles > 1;
        if self.contiguous {
            if par {
                state
                    .par_chunks_mut(tile_len)
                    .enumerate()
                    .for_each(|(t, chunk)| self.apply_ops(chunk, t << tb, rank));
            } else {
                for t in 0..n_tiles {
                    let base = t << tb;
                    self.apply_ops(&mut state[base..base + tile_len], base, rank);
                }
            }
        } else {
            let (exp, offs) = self.gather.as_ref().expect("non-contiguous gather tables");
            if par {
                let shared = DisjointSlice(state.as_mut_ptr(), state.len());
                chunk_ranges(n_tiles, threads)
                    .into_par_iter()
                    .for_each(|(t0, t1)| {
                        // SAFETY: distinct tile counters expand to
                        // disjoint index sets (DisjointSlice contract),
                        // and counter ranges partition [0, n_tiles).
                        let s = unsafe { shared.slice() };
                        let mut scratch = vec![Complex::<R>::zero(); tile_len];
                        for t in t0..t1 {
                            self.run_gathered_tile(s, exp, offs, &mut scratch, t, rank);
                        }
                    });
            } else {
                let mut scratch = vec![Complex::<R>::zero(); tile_len];
                for t in 0..n_tiles {
                    self.run_gathered_tile(state, exp, offs, &mut scratch, t, rank);
                }
            }
        }
        let bytes = 2 * std::mem::size_of_val(state) as u64;
        stats.sweep_passes += 1;
        stats.bytes_streamed += bytes;
        stats.baseline_passes += self.ops.len() as u64;
        stats.baseline_bytes += bytes * self.ops.len() as u64;
        for op in &self.ops {
            match op {
                TileOp::Dense(_) => stats.tile_local_gates += 1,
                TileOp::Diag(_) => stats.diagonals_folded += 1,
            }
        }
    }
}

/// Fallback: apply one prepared gate as a dedicated full sweep (cluster
/// wider than the tile).
pub fn run_full_pass<R: SweepDispatch>(
    state: &mut [Complex<R>],
    gate: &PreparedGate<R>,
    threads: usize,
    stats: &mut SweepStats,
) {
    gate.apply_full(state, threads);
    let bytes = 2 * std::mem::size_of_val(state) as u64;
    stats.sweep_passes += 1;
    stats.baseline_passes += 1;
    stats.fallback_gates += 1;
    stats.bytes_streamed += bytes;
    stats.baseline_bytes += bytes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_gate;
    use crate::specialized::apply_diagonal;
    use qsim_util::complex::max_dist;
    use qsim_util::{c32, c64, Xoshiro256};

    fn random_state(n: u32, seed: u64) -> Vec<c64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn random_matrix(k: u32, seed: u64) -> GateMatrix<f64> {
        let d = 1usize << k;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        GateMatrix::from_rows(
            k,
            (0..d * d)
                .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect(),
        )
    }

    fn t_diag() -> Vec<c64> {
        vec![
            c64::one(),
            c64::from_polar(1.0, std::f64::consts::FRAC_PI_4),
        ]
    }

    #[test]
    fn contiguous_pass_is_bit_exact_vs_per_gate() {
        let n = 10u32;
        for simd in [Simd::Scalar, Simd::Auto] {
            let cfg = KernelConfig {
                opt: OptLevel::Blocked,
                simd,
                block: 4,
                threads: 1,
            };
            let m1 = random_matrix(2, 1);
            let m2 = random_matrix(3, 2);
            let state0 = random_state(n, 3);

            let mut oracle = state0.clone();
            apply_gate(&mut oracle, &[0, 3], &m1, &cfg);
            apply_diagonal(&mut oracle, &[5], &t_diag());
            apply_gate(&mut oracle, &[1, 2, 4], &m2, &cfg);

            // Tile over positions 0..6: both clusters tile-local, the T
            // on qubit 5 is in-tile; qubits 6..9 are per-tile base bits.
            let tile: Vec<u32> = (0..6).collect();
            let pass = TiledPass::new(
                tile.clone(),
                vec![
                    TileOp::Dense(PreparedGate::new(&[0, 3], &m1, &cfg)),
                    TileOp::Diag(PreparedDiag::new(&[5], t_diag(), &tile, n)),
                    TileOp::Dense(PreparedGate::new(&[1, 2, 4], &m2, &cfg)),
                ],
            );
            let mut tiled = state0;
            let mut stats = SweepStats::default();
            pass.run(&mut tiled, 0, 1, &mut stats);
            assert_eq!(max_dist(&tiled, &oracle), 0.0, "simd={simd:?}");
            assert_eq!(stats.sweep_passes, 1);
            assert_eq!(stats.baseline_passes, 3);
            assert_eq!(stats.tile_local_gates, 2);
            assert_eq!(stats.diagonals_folded, 1);
        }
    }

    #[test]
    fn f32_pass_is_bit_exact_vs_per_gate_f32() {
        let n = 10u32;
        for simd in [Simd::Scalar, Simd::Auto] {
            let cfg = KernelConfig {
                opt: OptLevel::Blocked,
                simd,
                block: 4,
                threads: 1,
            };
            let m1 = random_matrix(2, 41).convert::<f32>();
            let m2 = random_matrix(3, 42).convert::<f32>();
            let state0: Vec<c32> = random_state(n, 43).iter().map(|a| a.convert()).collect();
            let diag32: Vec<c32> = t_diag().iter().map(|a| a.convert()).collect();

            let mut oracle = state0.clone();
            apply_gate(&mut oracle, &[0, 3], &m1, &cfg);
            apply_diagonal(&mut oracle, &[5], &diag32);
            apply_gate(&mut oracle, &[1, 2, 4], &m2, &cfg);

            let tile: Vec<u32> = (0..6).collect();
            let pass = TiledPass::new(
                tile.clone(),
                vec![
                    TileOp::Dense(PreparedGate::new(&[0, 3], &m1, &cfg)),
                    TileOp::Diag(PreparedDiag::new(&[5], diag32.clone(), &tile, n)),
                    TileOp::Dense(PreparedGate::new(&[1, 2, 4], &m2, &cfg)),
                ],
            );
            let mut tiled = state0;
            let mut stats = SweepStats::default();
            pass.run(&mut tiled, 0, 1, &mut stats);
            assert_eq!(max_dist(&tiled, &oracle), 0.0, "simd={simd:?}");
            // f32 amplitudes are 8 bytes, not 16: the streamed-bytes
            // counter must show half the f64 traffic per pass.
            assert_eq!(stats.bytes_streamed, 2 * (1u64 << n) * 8);
        }
    }

    #[test]
    fn gathered_pass_is_bit_exact_vs_per_gate() {
        let n = 11u32;
        let cfg = KernelConfig::sequential();
        // Cluster on high, scattered qubits: the tile {2,5,7,8,10} is
        // non-contiguous, so the gather/scatter staging path runs.
        let tile = vec![2u32, 5, 7, 8, 10];
        let m = random_matrix(3, 7);
        let qubits = [5u32, 7, 10];
        let compact: Vec<u32> = qubits
            .iter()
            .map(|q| tile.binary_search(q).unwrap() as u32)
            .collect();
        let state0 = random_state(n, 8);

        let mut oracle = state0.clone();
        apply_gate(&mut oracle, &qubits, &m, &cfg);
        // Diagonal on an out-of-tile qubit exercises the base-bit path.
        apply_diagonal(&mut oracle, &[3], &t_diag());

        let pass = TiledPass::new(
            tile.clone(),
            vec![
                TileOp::Dense(PreparedGate::new(&compact, &m, &cfg)),
                TileOp::Diag(PreparedDiag::new(&[3], t_diag(), &tile, n)),
            ],
        );
        let mut tiled = state0;
        let mut stats = SweepStats::default();
        pass.run(&mut tiled, 0, 1, &mut stats);
        assert_eq!(max_dist(&tiled, &oracle), 0.0);
    }

    #[test]
    fn parallel_pass_matches_sequential_pass() {
        let n = 15u32; // above PAR_THRESHOLD
        let cfg = KernelConfig {
            threads: 4,
            ..KernelConfig::sequential()
        };
        let m = random_matrix(4, 11);
        let state0 = random_state(n, 12);
        let mk_pass = || {
            let tile: Vec<u32> = (0..8).collect();
            TiledPass::new(
                tile.clone(),
                vec![
                    TileOp::Dense(PreparedGate::new(&[0, 2, 4, 6], &m, &cfg)),
                    TileOp::Diag(PreparedDiag::new(&[9], t_diag(), &tile, n)),
                ],
            )
        };
        let mut seq = state0.clone();
        let mut par = state0;
        let mut stats = SweepStats::default();
        mk_pass().run(&mut seq, 0, 1, &mut stats);
        mk_pass().run(&mut par, 0, 4, &mut stats);
        assert_eq!(max_dist(&seq, &par), 0.0);
    }

    #[test]
    fn rank_conditional_diagonal_matches_reduction() {
        // Two-operand diagonal with operand 1 global: rank bit selects
        // the reduced half, matching the dist-path reduction.
        let l = 8u32;
        let diag: Vec<c64> = (0..4)
            .map(|i| c64::from_polar(1.0, 0.3 * i as f64))
            .collect();
        let tile: Vec<u32> = (0..6).collect();
        let state0 = random_state(l, 21);
        for rank in [0usize, 1] {
            // Oracle: reduce by the rank bit, then apply locally.
            let fixed = (rank & 1) << 1;
            let reduced = vec![diag[fixed], diag[fixed | 1]];
            let mut oracle = state0.clone();
            apply_diagonal(&mut oracle, &[4], &reduced);

            let pd = PreparedDiag::new(&[4, l], diag.clone(), &tile, l);
            let pass = TiledPass::new(tile.clone(), vec![TileOp::Diag(pd)]);
            let mut tiled = state0.clone();
            let mut stats = SweepStats::default();
            pass.run(&mut tiled, rank, 1, &mut stats);
            assert_eq!(max_dist(&tiled, &oracle), 0.0, "rank={rank}");
        }
    }

    #[test]
    fn full_pass_fallback_is_bit_exact() {
        let n = 12u32;
        let cfg = KernelConfig::sequential();
        let m = random_matrix(5, 31);
        let qubits = [1u32, 3, 5, 8, 11];
        let state0 = random_state(n, 32);
        let mut oracle = state0.clone();
        apply_gate(&mut oracle, &qubits, &m, &cfg);
        let mut swept = state0;
        let mut stats = SweepStats::default();
        let g = PreparedGate::new(&qubits, &m, &cfg);
        run_full_pass(&mut swept, &g, 1, &mut stats);
        assert_eq!(max_dist(&swept, &oracle), 0.0);
        assert_eq!(stats.fallback_gates, 1);
        assert_eq!(stats.pass_ratio(), 1.0);
    }

    #[test]
    fn effective_tile_clamps() {
        assert_eq!(effective_tile_qubits(14, 10, 1), 10);
        assert_eq!(effective_tile_qubits(14, 24, 1), 14);
        // 8 threads want 2^5 tiles: 24-qubit register caps the tile at 19,
        // leaving the tuned 14 untouched; a 16-qubit register shrinks it.
        assert_eq!(effective_tile_qubits(14, 24, 8), 14);
        assert_eq!(effective_tile_qubits(14, 16, 8), 11);
        // Never below MIN_TILE_QUBITS when the register allows it.
        assert_eq!(effective_tile_qubits(14, 8, 64), 6);
    }
}
