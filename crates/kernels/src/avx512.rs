//! Explicit AVX-512 vectorization of the step-3 kernel (f64).
//!
//! The paper's KNL target uses AVX512 + FMA for a theoretical 4× speedup
//! over scalar (§3.2: "a factor of 2x or even 4x when using AVX or
//! AVX512"). The packing extends the AVX2 scheme to 512-bit lanes: FOUR
//! consecutive temporary-vector entries per register, the matrix
//! pre-packed as `(m_R,m_R)×4` / `(−m_I,m_I)×4` runs, two `vfmadd`
//! per packed entry.
//!
//! Lane layout per accumulator (rows `4L..4L+3` of the temp vector):
//! `[re(4L) im(4L) re(4L+1) im(4L+1) ... im(4L+3)]`.
//!
//! Only k ≥ 2 uses this path (a 1-qubit gate has 2 outputs — not enough
//! rows to fill a 512-bit quad); dispatch falls back to AVX2 otherwise.

use crate::matrix::GateMatrix;
use crate::opt;
use qsim_util::bits::IndexExpander;
use qsim_util::{c64, AlignedVec};

/// Does this host support the AVX-512 path?
#[inline]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Matrix packed for 512-bit lanes: for every (row quad `Lq`, input `i`),
/// 16 scalars: `(m_R, m_R)` for rows 4Lq..4Lq+3, then `(−m_I, m_I)` for
/// the same rows.
pub struct Packed512 {
    k: u32,
    data: AlignedVec<f64>,
}

impl Packed512 {
    /// Pack a (pre-permuted) gate matrix; requires `k >= 2`.
    pub fn pack(m: &GateMatrix<f64>) -> Self {
        let d = m.dim();
        assert!(d >= 4, "512-bit packing needs k >= 2");
        let quads = d / 4;
        let mut data = AlignedVec::new_zeroed(quads * d * 16);
        for lq in 0..quads {
            for i in 0..d {
                let base = (lq * d + i) * 16;
                for r in 0..4 {
                    let e = m.get(4 * lq + r, i);
                    data[base + 2 * r] = e.re;
                    data[base + 2 * r + 1] = e.re;
                    data[base + 8 + 2 * r] = -e.im;
                    data[base + 8 + 2 * r + 1] = e.im;
                }
            }
        }
        Self { k: m.k(), data }
    }

    #[inline(always)]
    pub fn k(&self) -> u32 {
        self.k
    }

    #[inline(always)]
    pub fn dim(&self) -> usize {
        1usize << self.k
    }

    #[inline(always)]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }
}

/// Apply a 512-packed k-qubit gate to blocks `[c0, c1)`. Falls back to
/// the AVX2/scalar path when AVX-512 is unavailable.
pub fn apply_avx512_range(
    state: &mut [c64],
    exp: &IndexExpander,
    packed: &Packed512,
    offs: &[usize],
    c0: usize,
    c1: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: runtime feature check above.
            unsafe { apply_avx512_range_impl(state, exp, packed, offs, c0, c1) };
            return;
        }
    }
    unreachable!("caller must check avx512_available() or use the AVX2 path");
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn apply_avx512_range_impl(
    state: &mut [c64],
    exp: &IndexExpander,
    packed: &Packed512,
    offs: &[usize],
    c0: usize,
    c1: usize,
) {
    use core::arch::x86_64::*;
    let dim = packed.dim();
    let raw = packed.raw().as_ptr();
    let sp = state.as_mut_ptr() as *mut f64;
    let mut tmp = [0f64; 2 << opt::MAX_K];
    let quads = dim / 4;
    // Keep <= 4 zmm accumulators live per sweep (z0..z31 is roomy, but a
    // short sweep keeps the matrix stream hot in L1).
    let sweep = quads.min(4);
    for c in c0..c1 {
        let base = exp.expand(c);
        for (x, &off) in offs.iter().enumerate().take(dim) {
            let p = sp.add(2 * (base + off));
            tmp[2 * x] = *p;
            tmp[2 * x + 1] = *p.add(1);
        }
        let mut lq0 = 0usize;
        while lq0 < quads {
            let lqe = (lq0 + sweep).min(quads);
            let mut acc = [_mm512_setzero_pd(); 4];
            for i in 0..dim {
                // v = (vR, vI) broadcast to all four complex lanes.
                let v128 = _mm_loadu_pd(tmp.as_ptr().add(2 * i));
                let v = _mm512_broadcast_f64x2(v128);
                let vswap = _mm512_permute_pd(v, 0b01010101);
                for (a, lq) in (lq0..lqe).enumerate() {
                    let e = raw.add((lq * dim + i) * 16);
                    let mrr = _mm512_load_pd(e);
                    let mim = _mm512_load_pd(e.add(8));
                    acc[a] = _mm512_fmadd_pd(v, mrr, acc[a]);
                    acc[a] = _mm512_fmadd_pd(vswap, mim, acc[a]);
                }
            }
            for (a, lq) in (lq0..lqe).enumerate() {
                // Scatter the four complex outputs of this quad.
                let mut lanes = [0f64; 8];
                _mm512_storeu_pd(lanes.as_mut_ptr(), acc[a]);
                for r in 0..4 {
                    let off = offs[4 * lq + r];
                    let p = sp.add(2 * (base + off));
                    *p = lanes[2 * r];
                    *p.add(1) = lanes[2 * r + 1];
                }
            }
            lq0 = lqe;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{apply_fma, offsets, prepare};
    use qsim_util::complex::max_dist;
    use qsim_util::Xoshiro256;

    fn random_state(n: u32, seed: u64) -> Vec<c64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn random_matrix(k: u32, seed: u64) -> GateMatrix<f64> {
        let d = 1usize << k;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        GateMatrix::from_rows(
            k,
            (0..d * d)
                .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect(),
        )
    }

    fn run512(state: &mut [c64], qubits: &[u32], m: &GateMatrix<f64>) -> bool {
        if !avx512_available() {
            return false;
        }
        let (exp, pm) = prepare(state.len(), qubits, m);
        let packed = Packed512::pack(&pm);
        let offs = offsets(&exp, packed.dim());
        let blocks = state.len() >> packed.k();
        apply_avx512_range(state, &exp, &packed, &offs, 0, blocks);
        true
    }

    #[test]
    fn avx512_matches_scalar_k2_to_k5() {
        if !avx512_available() {
            eprintln!("AVX-512 unavailable on this host; skipping");
            return;
        }
        let n = 11;
        for k in 2..=5u32 {
            let m = random_matrix(k, 100 + k as u64);
            let qubits: Vec<u32> = (0..k).map(|j| (3 * j + 1) % n).collect();
            let mut qs = qubits.clone();
            qs.sort_unstable();
            qs.dedup();
            if qs.len() != qubits.len() {
                continue;
            }
            let state0 = random_state(n, 200 + k as u64);
            let mut a = state0.clone();
            assert!(run512(&mut a, &qubits, &m));
            let mut b = state0;
            apply_fma(&mut b, &qubits, &m);
            assert!(max_dist(&a, &b) < 1e-12, "k={k}: {}", max_dist(&a, &b));
        }
    }

    #[test]
    fn packed512_layout() {
        let m = GateMatrix::<f64>::identity(2);
        let p = Packed512::pack(&m);
        assert_eq!(p.k(), 2);
        // (row quad 0, input 0): rows 0..3 of column 0 = [1,0,0,0].
        let e = &p.raw()[0..16];
        assert_eq!(&e[0..8], &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // All imaginary parts zero.
        assert!(e[8..16].iter().all(|&x| x == 0.0));
        assert_eq!(
            p.raw().as_ptr() as usize % 64,
            0,
            "zmm loads need 64B alignment"
        );
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn pack512_rejects_single_qubit() {
        let _ = Packed512::pack(&GateMatrix::<f64>::identity(1));
    }

    #[test]
    fn avx512_high_order_qubits() {
        if !avx512_available() {
            return;
        }
        let n = 12;
        let m = random_matrix(4, 7);
        let qubits = vec![8, 9, 10, 11];
        let state0 = random_state(n, 8);
        let mut a = state0.clone();
        assert!(run512(&mut a, &qubits, &m));
        let mut b = state0;
        apply_fma(&mut b, &qubits, &m);
        assert!(max_dist(&a, &b) < 1e-12);
    }
}
