//! Node-level parallelism: the paper's §3.3 OpenMP layer, on rayon.
//!
//! A k-qubit gate sweep is 2^{n−k} independent block updates; different
//! block counters touch disjoint amplitude sets, so the block index space
//! is embarrassingly parallel. Like the paper's `collapse` directive, we
//! parallelize over the *flattened* counter range rather than any outer
//! loop of the nested index structure, so strong scaling does not degrade
//! when a gate acts on high-order qubits (few outer iterations).
//!
//! Safety: the state is shared across workers through `DisjointSlice`,
//! whose single invariant — distinct block counters expand to disjoint
//! index sets — is exactly the kernel indexing theorem tested in
//! `qsim_util::bits` (`expander_enumerates_disjoint_blocks`).

use crate::avx::apply_avx_range;
use crate::avx512::{apply_avx512_range, Packed512};
use crate::avxf32::{apply_avx_f32_range, PackedF32};
use crate::matrix::PackedMatrix;
use crate::opt::{self, apply_blocked_packed_range};
use qsim_util::bits::IndexExpander;
use qsim_util::complex::Complex;
use qsim_util::{c64, Real};
use rayon::prelude::*;

/// Below this many amplitudes a gate is applied sequentially: thread
/// fork/join overhead dominates tiny sweeps.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// A shared mutable state-vector pointer handed to rayon workers.
///
/// Each worker receives a disjoint block-counter range `[c0, c1)` and only
/// dereferences indices `expand(c) + off` for `c` in its range. Because the
/// expander enumerates disjoint index sets per counter, no two workers
/// alias — the standard argument for gate-level parallelism in state-vector
/// simulators.
pub(crate) struct DisjointSlice<T>(pub(crate) *mut Complex<T>, pub(crate) usize);
unsafe impl<T: Send> Send for DisjointSlice<T> {}
unsafe impl<T: Send> Sync for DisjointSlice<T> {}

impl<T> DisjointSlice<T> {
    /// Reconstitute the full slice. Caller must uphold the disjointness
    /// contract described on the type: each worker derives a &mut only to
    /// indices no other worker touches, so the aliasing clippy flags here
    /// cannot occur.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice(&self) -> &mut [Complex<T>] {
        core::slice::from_raw_parts_mut(self.0, self.1)
    }
}

/// Parallel step-3 (scalar FMA, blocked) sweep over all blocks.
pub fn par_apply_blocked<T: Real>(
    state: &mut [Complex<T>],
    exp: &IndexExpander,
    packed: &PackedMatrix<T>,
    b: usize,
    threads_hint: usize,
) {
    let k = packed.k();
    let blocks = state.len() >> k;
    let offs = opt::offsets(exp, packed.dim());
    if state.len() < PAR_THRESHOLD || threads_hint <= 1 {
        apply_blocked_packed_range(state, exp, packed, &offs, b, 0, blocks);
        return;
    }
    let shared = DisjointSlice(state.as_mut_ptr(), state.len());
    let chunks = chunk_ranges(blocks, threads_hint);
    chunks.into_par_iter().for_each(|(c0, c1)| {
        // SAFETY: chunk ranges partition [0, blocks); per-counter index
        // sets are disjoint (DisjointSlice contract).
        let s = unsafe { shared.slice() };
        apply_blocked_packed_range(s, exp, packed, &offs, b, c0, c1);
    });
}

/// Parallel AVX2 sweep (f64); falls back to scalar per range when AVX2 is
/// unavailable.
pub fn par_apply_avx(
    state: &mut [c64],
    exp: &IndexExpander,
    packed: &PackedMatrix<f64>,
    b: usize,
    threads_hint: usize,
) {
    let k = packed.k();
    let blocks = state.len() >> k;
    let offs = opt::offsets(exp, packed.dim());
    if state.len() < PAR_THRESHOLD || threads_hint <= 1 {
        apply_avx_range(state, exp, packed, &offs, b, 0, blocks);
        return;
    }
    let shared = DisjointSlice(state.as_mut_ptr(), state.len());
    let chunks = chunk_ranges(blocks, threads_hint);
    chunks.into_par_iter().for_each(|(c0, c1)| {
        // SAFETY: see par_apply_blocked.
        let s = unsafe { shared.slice() };
        apply_avx_range(s, exp, packed, &offs, b, c0, c1);
    });
}

/// Parallel AVX-512 sweep (f64, k >= 2); caller must have verified
/// availability.
pub fn par_apply_avx512(
    state: &mut [c64],
    exp: &IndexExpander,
    packed: &Packed512,
    threads_hint: usize,
) {
    let k = packed.k();
    let blocks = state.len() >> k;
    let offs = opt::offsets(exp, packed.dim());
    if state.len() < PAR_THRESHOLD || threads_hint <= 1 {
        apply_avx512_range(state, exp, packed, &offs, 0, blocks);
        return;
    }
    let shared = DisjointSlice(state.as_mut_ptr(), state.len());
    let chunks = chunk_ranges(blocks, threads_hint);
    chunks.into_par_iter().for_each(|(c0, c1)| {
        // SAFETY: see par_apply_blocked.
        let s = unsafe { shared.slice() };
        apply_avx512_range(s, exp, packed, &offs, c0, c1);
    });
}

/// Parallel single-precision AVX2 sweep (k >= 2); caller must have
/// verified availability.
pub fn par_apply_avx_f32(
    state: &mut [Complex<f32>],
    exp: &IndexExpander,
    packed: &PackedF32,
    threads_hint: usize,
) {
    let k = packed.k();
    let blocks = state.len() >> k;
    let offs = opt::offsets(exp, packed.dim());
    if state.len() < PAR_THRESHOLD || threads_hint <= 1 {
        apply_avx_f32_range(state, exp, packed, &offs, 0, blocks);
        return;
    }
    let shared = DisjointSlice(state.as_mut_ptr(), state.len());
    let chunks = chunk_ranges(blocks, threads_hint);
    chunks.into_par_iter().for_each(|(c0, c1)| {
        // SAFETY: see par_apply_blocked.
        let s = unsafe { shared.slice() };
        apply_avx_f32_range(s, exp, packed, &offs, c0, c1);
    });
}

/// Parallel per-amplitude map (diagonal gates, phases, probability sums).
/// Plain rayon chunks — amplitude-indexed work needs no unsafe.
pub fn par_map_amplitudes<T: Real>(
    state: &mut [Complex<T>],
    f: impl Fn(usize, Complex<T>) -> Complex<T> + Sync,
) {
    if state.len() < PAR_THRESHOLD {
        for (i, a) in state.iter_mut().enumerate() {
            *a = f(i, *a);
        }
        return;
    }
    let chunk = (state.len() / (rayon::current_num_threads() * 8)).max(1024);
    state
        .par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(ci, ch)| {
            let base = ci * chunk;
            for (j, a) in ch.iter_mut().enumerate() {
                *a = f(base + j, *a);
            }
        });
}

/// Parallel gather: `dst[t] = src[index(t)]` — the pack half of the fused
/// permute-scatter swap data path (contiguous writes, scattered reads).
/// Sequential below [`PAR_THRESHOLD`] destination elements.
pub fn par_gather<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    index: impl Fn(usize) -> usize + Sync,
) {
    if dst.len() < PAR_THRESHOLD {
        for (t, d) in dst.iter_mut().enumerate() {
            *d = src[index(t)];
        }
        return;
    }
    let chunk = (dst.len() / (rayon::current_num_threads() * 8)).max(1024);
    dst.par_chunks_mut(chunk).enumerate().for_each(|(ci, ch)| {
        let base = ci * chunk;
        for (j, d) in ch.iter_mut().enumerate() {
            *d = src[index(base + j)];
        }
    });
}

/// Parallel scatter: `dst[index(t)] = src[t]` — the unpack half of the
/// fused gather-unpermute swap data path (contiguous reads, scattered
/// writes). `index` must be injective on `0..src.len()`: callers pass bit
/// permutations, which are bijective, so distinct source positions write
/// disjoint destinations (the same contract as [`DisjointSlice`]).
/// Sequential below [`PAR_THRESHOLD`] source elements.
pub fn par_scatter<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    index: impl Fn(usize) -> usize + Sync,
) {
    if src.len() < PAR_THRESHOLD {
        for (t, &v) in src.iter().enumerate() {
            dst[index(t)] = v;
        }
        return;
    }
    let shared = DisjointSlice(dst.as_mut_ptr(), dst.len());
    let chunk = (src.len() / (rayon::current_num_threads() * 8)).max(1024);
    src.par_chunks(chunk).enumerate().for_each(|(ci, ch)| {
        // SAFETY: source chunks are disjoint and `index` is injective, so
        // no two workers write the same destination element.
        let d = unsafe { shared.slice() };
        let base = ci * chunk;
        for (j, &v) in ch.iter().enumerate() {
            d[index(base + j)] = v;
        }
    });
}

/// Parallel reduction over amplitudes.
pub fn par_reduce_amplitudes<T: Real, A: Send>(
    state: &[Complex<T>],
    identity: impl Fn() -> A + Sync + Send,
    fold: impl Fn(A, usize, Complex<T>) -> A + Sync,
    merge: impl Fn(A, A) -> A + Sync + Send,
) -> A {
    if state.len() < PAR_THRESHOLD {
        let mut acc = identity();
        for (i, &a) in state.iter().enumerate() {
            acc = fold(acc, i, a);
        }
        return acc;
    }
    let chunk = (state.len() / (rayon::current_num_threads() * 8)).max(1024);
    state
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, ch)| {
            let base = ci * chunk;
            let mut acc = identity();
            for (j, &a) in ch.iter().enumerate() {
                acc = fold(acc, base + j, a);
            }
            acc
        })
        .reduce(&identity, &merge)
}

/// Split `[0, blocks)` into roughly `parts * 4` contiguous ranges (over-
/// decomposition keeps rayon's work stealing effective when ranges have
/// unequal cache behaviour).
pub(crate) fn chunk_ranges(blocks: usize, parts: usize) -> Vec<(usize, usize)> {
    let want = (parts * 4).clamp(1, blocks.max(1));
    let per = blocks.div_ceil(want);
    let mut out = Vec::with_capacity(want);
    let mut c = 0;
    while c < blocks {
        let e = (c + per).min(blocks);
        out.push((c, e));
        c = e;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::GateMatrix;
    use crate::opt::{apply_fma, prepare};
    use qsim_util::complex::max_dist;
    use qsim_util::Xoshiro256;

    fn random_state(n: u32, seed: u64) -> Vec<c64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn random_matrix(k: u32, seed: u64) -> GateMatrix<f64> {
        let d = 1usize << k;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        GateMatrix::from_rows(
            k,
            (0..d * d)
                .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect(),
        )
    }

    #[test]
    fn parallel_matches_sequential_above_threshold() {
        let n = 16; // 65536 amplitudes > PAR_THRESHOLD
        for (k, qubits) in [
            (1, vec![9u32]),
            (3, vec![15, 2, 8]),
            (5, vec![0, 3, 7, 11, 14]),
        ] {
            let m = random_matrix(k, 7 + k as u64);
            let state0 = random_state(n, 13 + k as u64);
            let (exp, pm) = prepare(state0.len(), &qubits, &m);
            let packed = PackedMatrix::pack(&pm);
            let mut a = state0.clone();
            par_apply_blocked(&mut a, &exp, &packed, 4, 8);
            let mut b = state0.clone();
            apply_fma(&mut b, &qubits, &m);
            assert!(max_dist(&a, &b) < 1e-12, "scalar k={k}");
            let mut c = state0;
            par_apply_avx(&mut c, &exp, &packed, 4, 8);
            assert!(max_dist(&c, &b) < 1e-12, "avx k={k}");
        }
    }

    #[test]
    fn small_states_take_sequential_path() {
        let m = random_matrix(2, 3);
        let qubits = vec![1u32, 3];
        let state0 = random_state(6, 4);
        let (exp, pm) = prepare(state0.len(), &qubits, &m);
        let packed = PackedMatrix::pack(&pm);
        let mut a = state0.clone();
        par_apply_blocked(&mut a, &exp, &packed, 4, 8);
        let mut b = state0;
        apply_fma(&mut b, &qubits, &m);
        assert!(max_dist(&a, &b) < 1e-13);
    }

    #[test]
    fn par_map_and_reduce() {
        let mut state = random_state(15, 21);
        let expect_norm: f64 = state.iter().map(|a| a.norm_sqr() * 4.0).sum();
        par_map_amplitudes(&mut state, |_, a| a.scale(2.0));
        let norm = par_reduce_amplitudes(
            &state,
            || 0.0f64,
            |acc, _, a| acc + a.norm_sqr(),
            |x, y| x + y,
        );
        assert!((norm - expect_norm).abs() < 1e-9);
    }

    #[test]
    fn par_map_sees_correct_indices() {
        let mut state = vec![c64::zero(); 1 << 15];
        par_map_amplitudes(&mut state, |i, _| c64::new(i as f64, 0.0));
        for (i, a) in state.iter().enumerate() {
            assert_eq!(a.re, i as f64);
        }
    }

    #[test]
    fn gather_scatter_invert_each_other() {
        use qsim_util::bits::BitPermutation;
        for n in [10u32, 15] {
            // n=15 exceeds PAR_THRESHOLD and exercises the parallel paths.
            let src = random_state(n, 31 + n as u64);
            let perm = BitPermutation::new((0..n).map(|i| (i + 3) % n).collect());
            let mut gathered = vec![c64::zero(); src.len()];
            par_gather(&src, &mut gathered, |t| perm.apply(t));
            let mut back = vec![c64::zero(); src.len()];
            par_scatter(&gathered, &mut back, |t| perm.apply(t));
            assert_eq!(back, src, "n={n}");
            // Gather by perm equals the inverse permutation's permute_slice.
            let mut expect = vec![c64::zero(); src.len()];
            perm.inverse().permute_slice(&src, &mut expect);
            assert_eq!(gathered, expect, "n={n}");
        }
    }

    #[test]
    fn chunk_ranges_partition() {
        for blocks in [1usize, 7, 1024, 4097] {
            for parts in [1usize, 2, 8] {
                let r = chunk_ranges(blocks, parts);
                assert_eq!(r[0].0, 0);
                assert_eq!(r.last().unwrap().1, blocks);
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }
}
