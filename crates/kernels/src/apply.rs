//! Unified gate-application entry point.
//!
//! Simulators call [`apply_gate`] with a [`KernelConfig`]; dispatch picks
//! the optimization step, SIMD path, block size and parallelism. The
//! config is usually produced by [`crate::autotune::autotune`], mirroring
//! the paper's code-generation/benchmarking feedback loop, but every knob
//! can be set manually — the benchmark harnesses sweep them for Fig. 2.

use crate::avx;
use crate::matrix::{GateMatrix, PackedMatrix};
use crate::opt;
use crate::parallel;
use qsim_util::complex::Complex;
use qsim_util::{c64, Real};

/// Which rung of the §3.1–3.2 optimization ladder to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OptLevel {
    /// Step 0: two state vectors, textbook product (needs external dst —
    /// `apply_gate` emulates it with an internal scratch copy).
    TwoVector,
    /// Step 1: in-place, lazy evaluation.
    InPlace,
    /// Step 2: + Eq. (2)–(3) FMA re-association.
    Fma,
    /// Step 3: + register blocking and packed pre-permuted matrix.
    Blocked,
}

/// SIMD selection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Simd {
    /// Portable scalar code (still FMA-re-associated at step >= 2).
    Scalar,
    /// Force the AVX2+FMA path (scalar when unsupported).
    Avx2,
    /// Best available: AVX-512 for k >= 2 when the host supports it,
    /// else AVX2+FMA, else scalar. Only meaningful at
    /// `OptLevel::Blocked`.
    Auto,
}

/// Kernel dispatch configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    pub opt: OptLevel,
    pub simd: Simd,
    /// Register-blocking width for the scalar step-3 kernel.
    pub block: usize,
    /// Worker-thread hint; 1 forces sequential execution.
    pub threads: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            opt: OptLevel::Blocked,
            simd: Simd::Auto,
            block: 4,
            threads: rayon::current_num_threads(),
        }
    }
}

impl KernelConfig {
    /// Fully sequential, portable configuration (reference runs, tests).
    pub fn sequential() -> Self {
        Self {
            opt: OptLevel::Blocked,
            simd: Simd::Scalar,
            block: 4,
            threads: 1,
        }
    }
}

/// Apply a dense k-qubit gate to `state` at `qubits` under `cfg`.
///
/// f64 states additionally get the AVX2 path when `cfg.simd == Auto`;
/// other precisions always use the portable kernels (the generic bound
/// cannot name f64 specially, so `apply_gate` is specialized below via
/// [`ApplyDispatch`]).
pub fn apply_gate<T: Real + ApplyDispatch>(
    state: &mut [Complex<T>],
    qubits: &[u32],
    m: &GateMatrix<T>,
    cfg: &KernelConfig,
) {
    T::dispatch(state, qubits, m, cfg)
}

/// Sequential convenience wrapper used by tests and the reference paths.
pub fn apply_gate_seq<T: Real + ApplyDispatch>(
    state: &mut [Complex<T>],
    qubits: &[u32],
    m: &GateMatrix<T>,
) {
    apply_gate(state, qubits, m, &KernelConfig::sequential());
}

/// Precision-directed dispatch: f64 may take the AVX2 kernel, every other
/// precision takes the portable path.
pub trait ApplyDispatch: Real + Sized {
    fn dispatch(
        state: &mut [Complex<Self>],
        qubits: &[u32],
        m: &GateMatrix<Self>,
        cfg: &KernelConfig,
    );
}

fn dispatch_portable<T: Real>(
    state: &mut [Complex<T>],
    qubits: &[u32],
    m: &GateMatrix<T>,
    cfg: &KernelConfig,
) {
    match cfg.opt {
        OptLevel::TwoVector => {
            // Emulate the two-vector baseline: write into scratch, copy
            // back. The extra copy is part of what Fig. 2's step 1 removes.
            let mut dst = vec![Complex::<T>::zero(); state.len()];
            opt::apply_twovec(state, &mut dst, qubits, m);
            state.copy_from_slice(&dst);
        }
        OptLevel::InPlace => opt::apply_inplace(state, qubits, m),
        OptLevel::Fma => opt::apply_fma(state, qubits, m),
        OptLevel::Blocked => {
            let (exp, pm) = opt::prepare(state.len(), qubits, m);
            let packed = PackedMatrix::pack(&pm);
            parallel::par_apply_blocked(state, &exp, &packed, cfg.block, cfg.threads);
        }
    }
}

impl ApplyDispatch for f32 {
    fn dispatch(
        state: &mut [Complex<f32>],
        qubits: &[u32],
        m: &GateMatrix<f32>,
        cfg: &KernelConfig,
    ) {
        // §5 single-precision mode: k >= 2 gates take the 8-lane AVX2
        // path when available.
        if cfg.opt == OptLevel::Blocked
            && cfg.simd != Simd::Scalar
            && m.k() >= 2
            && avx::avx2_available()
        {
            let (exp, pm) = opt::prepare(state.len(), qubits, m);
            let packed = crate::avxf32::PackedF32::pack(&pm);
            parallel::par_apply_avx_f32(state, &exp, &packed, cfg.threads);
            return;
        }
        dispatch_portable(state, qubits, m, cfg);
    }
}

/// One-time measured choice between the AVX2 and AVX-512 kernels —
/// hardware advertising AVX-512 does not always run it faster (license-
/// based downclocking, emulation), so `Simd::Auto` trusts a micro-
/// benchmark, not the CPUID flag. This is the paper's code-generation /
/// benchmarking feedback loop applied to ISA selection.
pub(crate) fn avx512_wins() -> bool {
    use std::sync::OnceLock;
    static CHOICE: OnceLock<bool> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        if !crate::avx512::avx512_available() || !avx::avx2_available() {
            return crate::avx512::avx512_available();
        }
        let n = 14u32;
        let mut rng = qsim_util::Xoshiro256::seed_from_u64(0xa512);
        let mut state: Vec<c64> = (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let m = {
            let d = 16;
            GateMatrix::from_rows(
                4,
                (0..d * d)
                    .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                    .collect(),
            )
        };
        let qubits = [0u32, 1, 2, 3];
        let (exp, pm) = opt::prepare(state.len(), &qubits, &m);
        let mut time = |f: &mut dyn FnMut(&mut [c64])| {
            let t0 = std::time::Instant::now();
            for _ in 0..4 {
                f(&mut state);
            }
            t0.elapsed()
        };
        let p2 = PackedMatrix::pack(&pm);
        let t2 = time(&mut |s| parallel::par_apply_avx(s, &exp, &p2, 4, 1));
        let p5 = crate::avx512::Packed512::pack(&pm);
        let t5 = time(&mut |s| parallel::par_apply_avx512(s, &exp, &p5, 1));
        t5 < t2
    })
}

/// The f64 step-3 kernel variant a `(cfg, k)` pair resolves to. Factored
/// out of [`ApplyDispatch`] so the tiled sweep executor selects the exact
/// same kernel per gate as the per-gate path (bit-exact agreement).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum DensePath {
    /// Portable scalar blocked kernel (also the `opt != Blocked` marker:
    /// callers on those rungs never reach the packed paths).
    Scalar,
    Avx2,
    Avx512,
}

/// Resolve the dense f64 kernel path for a k-qubit gate under `cfg`,
/// mirroring the `ApplyDispatch for f64` conditions exactly.
pub(crate) fn choose_dense_path(cfg: &KernelConfig, k: u32) -> DensePath {
    if cfg.opt != OptLevel::Blocked || cfg.simd == Simd::Scalar {
        return DensePath::Scalar;
    }
    if cfg.simd == Simd::Auto && k >= 2 && crate::avx512::avx512_available() && avx512_wins() {
        return DensePath::Avx512;
    }
    if avx::avx2_available() {
        DensePath::Avx2
    } else {
        DensePath::Scalar
    }
}

impl ApplyDispatch for f64 {
    fn dispatch(state: &mut [c64], qubits: &[u32], m: &GateMatrix<f64>, cfg: &KernelConfig) {
        match choose_dense_path(cfg, m.k()) {
            DensePath::Avx512 => {
                let (exp, pm) = opt::prepare(state.len(), qubits, m);
                let packed = crate::avx512::Packed512::pack(&pm);
                parallel::par_apply_avx512(state, &exp, &packed, cfg.threads);
            }
            DensePath::Avx2 => {
                let (exp, pm) = opt::prepare(state.len(), qubits, m);
                let packed = PackedMatrix::pack(&pm);
                parallel::par_apply_avx(state, &exp, &packed, cfg.block, cfg.threads);
            }
            DensePath::Scalar => dispatch_portable(state, qubits, m, cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_util::complex::max_dist;
    use qsim_util::Xoshiro256;

    fn random_state(n: u32, seed: u64) -> Vec<c64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn random_matrix(k: u32, seed: u64) -> GateMatrix<f64> {
        let d = 1usize << k;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        GateMatrix::from_rows(
            k,
            (0..d * d)
                .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect(),
        )
    }

    #[test]
    fn all_config_combinations_agree() {
        let n = 12;
        let m = random_matrix(3, 5);
        let qubits = vec![1u32, 7, 10];
        let state0 = random_state(n, 6);
        let mut reference = state0.clone();
        opt::apply_fma(&mut reference, &qubits, &m);

        for opt_level in [
            OptLevel::TwoVector,
            OptLevel::InPlace,
            OptLevel::Fma,
            OptLevel::Blocked,
        ] {
            for simd in [Simd::Scalar, Simd::Auto] {
                for threads in [1usize, 4] {
                    let cfg = KernelConfig {
                        opt: opt_level,
                        simd,
                        block: 2,
                        threads,
                    };
                    let mut s = state0.clone();
                    apply_gate(&mut s, &qubits, &m, &cfg);
                    assert!(max_dist(&s, &reference) < 1e-12, "cfg mismatch: {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn f32_dispatch_works() {
        use qsim_util::c32;
        let m = random_matrix(2, 8).convert::<f32>();
        let mut s: Vec<c32> = random_state(10, 9).iter().map(|a| a.convert()).collect();
        let s0 = s.clone();
        apply_gate(&mut s, &[2, 6], &m, &KernelConfig::default());
        let mut expect = s0;
        apply_gate(&mut expect, &[2, 6], &m, &KernelConfig::sequential());
        assert!(max_dist(&s, &expect) < 1e-5);
    }

    #[test]
    fn default_config_is_fast_path() {
        let cfg = KernelConfig::default();
        assert_eq!(cfg.opt, OptLevel::Blocked);
        assert_eq!(cfg.simd, Simd::Auto);
        assert!(cfg.threads >= 1);
    }
}
