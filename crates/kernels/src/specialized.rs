//! Specialized kernels for structured gates (§3.5) and local qubit swaps
//! (§3.4).
//!
//! Diagonal gates (CZ, T, Z, S, controlled-phase) never mix amplitudes, so
//! they reduce to per-amplitude phase multiplications — and on *global*
//! qubits to rank-conditional phases, which is how the paper removes a
//! third of the 45-qubit circuit's communication steps. Permutation gates
//! (X, CNOT) only relabel basis states. The qubit-pair swap kernel is the
//! building block of the local reordering that brackets every
//! global-to-local all-to-all.

use qsim_util::bits::{gather_bits, get_bit, BitPermutation, IndexExpander};
use qsim_util::complex::Complex;
use qsim_util::Real;

/// Multiply the whole state by a scalar phase (e.g. a T-gate acting on a
/// global qubit contributes a rank-conditional global phase).
pub fn apply_global_phase<T: Real>(state: &mut [Complex<T>], phase: Complex<T>) {
    for a in state.iter_mut() {
        *a *= phase;
    }
}

/// Apply a diagonal k-qubit gate: `state[i] *= diag[bits of i at qubits]`.
///
/// `diag` has 2^k entries indexed little-endian by the operand order of
/// `qubits` (same convention as `GateMatrix`).
pub fn apply_diagonal<T: Real>(state: &mut [Complex<T>], qubits: &[u32], diag: &[Complex<T>]) {
    let k = qubits.len();
    assert_eq!(diag.len(), 1usize << k, "diagonal size mismatch");
    let n = qsim_util::bits::log2_exact(state.len());
    for &q in qubits {
        assert!(q < n, "qubit {q} out of range");
    }
    // Fast path: 1-qubit diagonal with unit first entry (T, Z, S, phase):
    // only the stride-offset half needs touching.
    if k == 1 && (diag[0] - Complex::one()).abs() <= T::EPSILON {
        let exp = IndexExpander::new(qubits);
        let stride = exp.strides()[0];
        let phase = diag[1];
        let blocks = state.len() >> 1;
        for c in 0..blocks {
            let idx = exp.expand(c) + stride;
            state[idx] *= phase;
        }
        return;
    }
    for (i, a) in state.iter_mut().enumerate() {
        *a *= diag[gather_bits(i, qubits)];
    }
}

/// Apply a controlled-Z on (`a`, `b`): phase −1 on basis states with both
/// bits set. The most common gate of supremacy circuits gets its own
/// kernel: no gather, no temporary, one conditional negate.
pub fn apply_cz<T: Real>(state: &mut [Complex<T>], a: u32, b: u32) {
    assert_ne!(a, b, "CZ needs distinct qubits");
    let n = qsim_util::bits::log2_exact(state.len());
    assert!(a < n && b < n, "qubit out of range");
    // Walk only the quarter of the state with both bits set.
    let (lo, hi) = (a.min(b), a.max(b));
    let exp = IndexExpander::new(&[lo, hi]);
    let both = (1usize << lo) + (1usize << hi);
    let blocks = state.len() >> 2;
    for c in 0..blocks {
        let idx = exp.expand(c) + both;
        state[idx] = -state[idx];
    }
}

/// Apply an X (NOT) on qubit `q` by swapping paired amplitudes. On a
/// *global* qubit this becomes a pure rank renumbering (handled in
/// `qsim-core::dist`); locally it is this permutation kernel.
pub fn apply_x<T: Real>(state: &mut [Complex<T>], q: u32) {
    let n = qsim_util::bits::log2_exact(state.len());
    assert!(q < n, "qubit out of range");
    let exp = IndexExpander::new(&[q]);
    let stride = 1usize << q;
    let blocks = state.len() >> 1;
    for c in 0..blocks {
        let i = exp.expand(c);
        state.swap(i, i + stride);
    }
}

/// Swap the amplitudes of two qubit positions in place: the SWAP gate, and
/// the unit step of local qubit reordering (§3.4: "we first use our
/// optimized kernels to achieve local swaps").
pub fn swap_qubit_pair<T: Real>(state: &mut [Complex<T>], a: u32, b: u32) {
    if a == b {
        return;
    }
    let n = qsim_util::bits::log2_exact(state.len());
    assert!(a < n && b < n, "qubit out of range");
    let (lo, hi) = (a.min(b), a.max(b));
    let exp = IndexExpander::new(&[lo, hi]);
    let (slo, shi) = (1usize << lo, 1usize << hi);
    let blocks = state.len() >> 2;
    // Only amplitudes whose two bits differ move: (01) <-> (10).
    for c in 0..blocks {
        let base = exp.expand(c);
        state.swap(base + slo, base + shi);
    }
}

/// Apply an arbitrary bit-position permutation to the state, in place,
/// as a sequence of pairwise qubit swaps (minimal transposition
/// decomposition). O(#transpositions · 2^n/4) moves, no scratch buffer.
pub fn permute_qubits_inplace<T: Real>(state: &mut [Complex<T>], perm: &BitPermutation) {
    assert_eq!(state.len(), 1usize << perm.n_bits(), "size mismatch");
    for (a, b) in perm.transpositions() {
        swap_qubit_pair(state, a, b);
    }
}

/// Out-of-place permutation into `scratch` (then copied back). Faster than
/// the transposition walk when the permutation moves many positions;
/// used when a staging buffer already exists (around all-to-alls).
pub fn permute_qubits_scratch<T: Real>(
    state: &mut [Complex<T>],
    scratch: &mut [Complex<T>],
    perm: &BitPermutation,
) {
    perm.permute_slice(state, scratch);
    state.copy_from_slice(scratch);
}

/// Probability of qubit `q` being 1 — used by measurement and by tests.
pub fn prob_one<T: Real>(state: &[Complex<T>], q: u32) -> T {
    let n = qsim_util::bits::log2_exact(state.len());
    assert!(q < n);
    let mut p = T::ZERO;
    for (i, a) in state.iter().enumerate() {
        if get_bit(i, q) == 1 {
            p += a.norm_sqr();
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::GateMatrix;
    use crate::opt::apply_fma;
    use qsim_util::c64;
    use qsim_util::complex::max_dist;
    use qsim_util::Xoshiro256;

    fn random_state(n: u32, seed: u64) -> Vec<c64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn t_matrix() -> GateMatrix<f64> {
        GateMatrix::from_rows(
            1,
            vec![
                c64::one(),
                c64::zero(),
                c64::zero(),
                c64::from_polar(1.0, std::f64::consts::FRAC_PI_4),
            ],
        )
    }

    fn cz_matrix() -> GateMatrix<f64> {
        let mut m = GateMatrix::identity(2);
        m.set(3, 3, -c64::one());
        m
    }

    #[test]
    fn diagonal_t_matches_dense_kernel() {
        for q in [0u32, 3, 6] {
            let state0 = random_state(7, 42 + q as u64);
            let mut a = state0.clone();
            apply_diagonal(&mut a, &[q], &t_matrix().as_diagonal().unwrap());
            let mut b = state0;
            apply_fma(&mut b, &[q], &t_matrix());
            assert!(max_dist(&a, &b) < 1e-14, "q={q}");
        }
    }

    #[test]
    fn cz_kernel_matches_dense_and_is_symmetric() {
        let state0 = random_state(6, 7);
        let mut a = state0.clone();
        apply_cz(&mut a, 1, 4);
        let mut b = state0.clone();
        apply_fma(&mut b, &[1, 4], &cz_matrix());
        assert!(max_dist(&a, &b) < 1e-14);
        // Symmetry: CZ(a,b) == CZ(b,a).
        let mut c = state0;
        apply_cz(&mut c, 4, 1);
        assert!(max_dist(&a, &c) == 0.0);
    }

    #[test]
    fn multi_qubit_diagonal() {
        // CZ as a 2-qubit diagonal.
        let state0 = random_state(5, 9);
        let mut a = state0.clone();
        apply_diagonal(&mut a, &[0, 3], &cz_matrix().as_diagonal().unwrap());
        let mut b = state0;
        apply_cz(&mut b, 0, 3);
        assert!(max_dist(&a, &b) < 1e-15);
    }

    #[test]
    fn x_kernel_is_involution_and_matches_dense() {
        let x = GateMatrix::from_rows(1, vec![c64::zero(), c64::one(), c64::one(), c64::zero()]);
        let state0 = random_state(6, 11);
        let mut a = state0.clone();
        apply_x(&mut a, 2);
        let mut b = state0.clone();
        apply_fma(&mut b, &[2], &x);
        assert!(max_dist(&a, &b) < 1e-15);
        apply_x(&mut a, 2);
        assert!(max_dist(&a, &state0) < 1e-15);
    }

    #[test]
    fn global_phase_preserves_probabilities() {
        let mut s = random_state(5, 13);
        let before: Vec<f64> = s.iter().map(|a| a.norm_sqr()).collect();
        apply_global_phase(&mut s, c64::from_polar(1.0, 1.234));
        let after: Vec<f64> = s.iter().map(|a| a.norm_sqr()).collect();
        for (x, y) in before.iter().zip(after.iter()) {
            assert!((x - y).abs() < 1e-14);
        }
    }

    #[test]
    fn swap_pair_exchanges_marginals() {
        let mut s = random_state(6, 17);
        // Make the marginals distinguishable.
        s[0b000001] = c64::new(2.0, 0.0);
        let p0 = prob_one(&s, 0);
        let p5 = prob_one(&s, 5);
        swap_qubit_pair(&mut s, 0, 5);
        assert!((prob_one(&s, 0) - p5).abs() < 1e-12);
        assert!((prob_one(&s, 5) - p0).abs() < 1e-12);
        // Involution.
        swap_qubit_pair(&mut s, 5, 0);
        assert!((prob_one(&s, 0) - p0).abs() < 1e-12);
    }

    #[test]
    fn swap_matches_permutation() {
        let s0 = random_state(5, 19);
        let mut a = s0.clone();
        swap_qubit_pair(&mut a, 1, 3);
        let perm = BitPermutation::transposition(5, 1, 3);
        let mut b = vec![c64::zero(); s0.len()];
        perm.permute_slice(&s0, &mut b);
        assert!(max_dist(&a, &b) < 1e-15);
    }

    #[test]
    fn inplace_permutation_matches_scratch_permutation() {
        let s0 = random_state(6, 23);
        let perm = BitPermutation::new(vec![3, 5, 0, 1, 4, 2]);
        let mut a = s0.clone();
        permute_qubits_inplace(&mut a, &perm);
        let mut b = s0.clone();
        let mut scratch = vec![c64::zero(); s0.len()];
        permute_qubits_scratch(&mut b, &mut scratch, &perm);
        assert!(max_dist(&a, &b) < 1e-15);
        // Undo with the inverse.
        permute_qubits_inplace(&mut a, &perm.inverse());
        assert!(max_dist(&a, &s0) < 1e-15);
    }

    #[test]
    fn diagonal_fast_path_matches_general_path() {
        // T has unit first entry -> fast path; compare against the generic
        // per-amplitude loop via a diagonal with non-unit first entry that
        // represents the same physical gate up to global phase.
        let state0 = random_state(6, 29);
        let t = t_matrix().as_diagonal().unwrap();
        let mut fast = state0.clone();
        apply_diagonal(&mut fast, &[4], &t);
        // Force the slow path: multiply the same diagonal but written as
        // phase * [conj(phase/|..|)...]; simpler: 2-qubit diagonal T⊗I.
        // T on operand 1 (-> qubit 4), identity on operand 0 (-> qubit 0).
        let ti = t_matrix().kron(&GateMatrix::identity(1));
        let mut slow = state0;
        apply_diagonal(&mut slow, &[0, 4], &ti.as_diagonal().unwrap());
        assert!(max_dist(&fast, &slow) < 1e-15);
    }
}
