//! # qsim-kernels
//!
//! The compute kernels of the simulator — the paper's §3.1–3.3 layers:
//!
//! * [`matrix`] — dense 2^k × 2^k gate matrices, their algebra (product,
//!   Kronecker, qubit permutation) and the packed `(m_R,m_R)/(−m_I,m_I)`
//!   layout behind the FMA kernels (Eq. 2–3).
//! * [`opt`] — the optimization-step ladder measured in Fig. 2:
//!   step 0 (two-vector naive) → step 1 (in-place / lazy evaluation) →
//!   step 2 (FMA re-association) → step 3 (register blocking + matrix
//!   pre-permutation).
//! * [`avx`] / [`avx512`] — explicit AVX2+FMA and AVX-512 vectorization of
//!   step 3 for f64, behind runtime feature detection (the paper's
//!   compiler-intrinsics layer; §3.2 cites 2× for AVX, 4× for AVX512).
//! * [`specialized`] — communication-free kernels for diagonal gates,
//!   permutation gates (X/CNOT) and in-place qubit-pair swaps (§3.5).
//! * [`parallel`] — rayon drivers over the block index space, the analogue
//!   of the paper's OpenMP `collapse` parallelization (§3.3).
//! * [`mod@autotune`] — the runtime code-selection / benchmarking feedback loop
//!   that picks kernel size kmax and block size for the host (§3.2).
//! * [`sweep`] — the cache-tiled stage executor: one streaming pass over
//!   the state applies every fused gate of a communication-free stage,
//!   with diagonal ops folded in as per-tile phases.
//!
//! The single entry point for simulators is [`apply::apply_gate`], which
//! dispatches on kernel configuration.

pub mod apply;
pub mod autotune;
pub mod avx;
pub mod avx512;
pub mod avxf32;
pub mod matrix;
pub mod opt;
pub mod parallel;
pub mod specialized;
pub mod sweep;

pub use apply::{apply_gate, apply_gate_seq, KernelConfig, OptLevel, Simd};
pub use autotune::{autotune, autotune_cached, tune_tile_qubits, TunedParams};
pub use matrix::{GateMatrix, PackedMatrix};
pub use sweep::{SweepDispatch, SweepStats};
