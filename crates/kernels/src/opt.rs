//! The optimization-step ladder of §3.1–3.2, measured in Fig. 2.
//!
//! Four functionally identical kernels apply a dense k-qubit gate to an
//! n-qubit state; each step folds in one of the paper's optimizations:
//!
//! | step | name | paper optimization |
//! |------|------|--------------------|
//! | 0 | [`apply_twovec`]  | textbook two-vector matrix-free product |
//! | 1 | [`apply_inplace`] | in-place / "lazy evaluation" — halves memory and traffic |
//! | 2 | [`apply_fma`]     | Eq. (2)–(3) re-association into pure FMA streams |
//! | 3 | [`apply_blocked`] | register blocking over inputs + packed, pre-permuted matrix |
//!
//! All kernels share the same indexing: qubit positions are sorted and the
//! matrix is permuted once per call (§3.2, "permute the matrix entries
//! before-hand in order to always have sorted qubit indices"), then the
//! state is walked in 2^{n−k} blocks whose member indices come from an
//! [`IndexExpander`].

use crate::matrix::{GateMatrix, PackedMatrix};
use qsim_util::bits::IndexExpander;
use qsim_util::complex::Complex;
use qsim_util::Real;

/// Largest k the fixed-size temporaries support. The paper evaluates
/// k ∈ {1..5}; we allow one extra for ablation headroom.
pub const MAX_K: u32 = 6;
const MAX_DIM: usize = 1 << MAX_K;

/// Step 0: two-vector application. Reads `src`, writes `dst`.
///
/// This is the "standard implementation featuring two state vectors"
/// of §3.1 — the roofline baseline with the worst memory traffic.
pub fn apply_twovec<T: Real>(
    src: &[Complex<T>],
    dst: &mut [Complex<T>],
    qubits: &[u32],
    m: &GateMatrix<T>,
) {
    assert_eq!(src.len(), dst.len());
    let (exp, pm) = prepare(src.len(), qubits, m);
    let dim = pm.dim();
    let blocks = src.len() >> pm.k();
    let offs = offsets(&exp, dim);
    for c in 0..blocks {
        let base = exp.expand(c);
        for l in 0..dim {
            let mut acc = Complex::zero();
            for (i, &off) in offs.iter().enumerate() {
                acc += pm.get(l, i) * src[base + off];
            }
            dst[base + offs[l]] = acc;
        }
    }
}

/// Step 1: in-place application with a 2^k temporary ("lazy evaluation").
/// Classic complex arithmetic (Eq. 1), no FMA re-association yet.
pub fn apply_inplace<T: Real>(state: &mut [Complex<T>], qubits: &[u32], m: &GateMatrix<T>) {
    let (exp, pm) = prepare(state.len(), qubits, m);
    let dim = pm.dim();
    let offs = offsets(&exp, dim);
    let blocks = state.len() >> pm.k();
    let mut tmp = [Complex::<T>::zero(); MAX_DIM];
    for c in 0..blocks {
        let base = exp.expand(c);
        for (x, &off) in offs.iter().enumerate() {
            tmp[x] = state[base + off];
        }
        for l in 0..dim {
            let mut acc = Complex::zero();
            for (i, &t) in tmp[..dim].iter().enumerate() {
                acc += pm.get(l, i) * t;
            }
            state[base + offs[l]] = acc;
        }
    }
}

/// Step 2: in-place + Eq. (2)–(3) FMA re-association. Each inner update is
/// two fused multiply-adds per component, no separate multiply/add/permute.
pub fn apply_fma<T: Real>(state: &mut [Complex<T>], qubits: &[u32], m: &GateMatrix<T>) {
    let (exp, pm) = prepare(state.len(), qubits, m);
    let dim = pm.dim();
    let offs = offsets(&exp, dim);
    let blocks = state.len() >> pm.k();
    let mut tmp = [Complex::<T>::zero(); MAX_DIM];
    let mut out = [Complex::<T>::zero(); MAX_DIM];
    for c in 0..blocks {
        let base = exp.expand(c);
        for (x, &off) in offs.iter().enumerate() {
            tmp[x] = state[base + off];
        }
        for (l, o) in out[..dim].iter_mut().enumerate() {
            let mut acc = Complex::zero();
            for (i, &t) in tmp[..dim].iter().enumerate() {
                acc.mul_add_eq23(t, pm.get(l, i));
            }
            *o = acc;
        }
        for (l, &off) in offs.iter().enumerate() {
            state[base + off] = out[l];
        }
    }
}

/// Step 3: step 2 plus register blocking over inputs with block size `b`
/// and the packed `(m_R,m_R)/(−m_I,m_I)` matrix built once per call.
///
/// For each input block, `b` gathered amplitudes (and their swapped
/// copies) stay live in registers while all 2^k outputs are updated — the
/// §3.2 scheme `ṽ_l += Σ_{j<B} m_{l,i(b,j)} v_{i(b,j)}`.
pub fn apply_blocked<T: Real>(
    state: &mut [Complex<T>],
    qubits: &[u32],
    m: &GateMatrix<T>,
    b: usize,
) {
    let (exp, pm) = prepare(state.len(), qubits, m);
    let packed = PackedMatrix::pack(&pm);
    apply_blocked_packed(state, &exp, &packed, b);
}

/// Step-3 inner loop on pre-prepared operands; reused by the parallel
/// driver so packing isn't repeated per chunk.
pub fn apply_blocked_packed<T: Real>(
    state: &mut [Complex<T>],
    exp: &IndexExpander,
    packed: &PackedMatrix<T>,
    b: usize,
) {
    let dim = packed.dim();
    let b = b.clamp(1, dim);
    let offs = offsets(exp, dim);
    let blocks = state.len() >> packed.k();
    apply_blocked_packed_range(state, exp, packed, &offs, b, 0, blocks);
}

/// Step-3 inner loop over a sub-range of blocks `[c0, c1)`; the unit the
/// rayon driver parallelizes over.
pub(crate) fn apply_blocked_packed_range<T: Real>(
    state: &mut [Complex<T>],
    exp: &IndexExpander,
    packed: &PackedMatrix<T>,
    offs: &[usize],
    b: usize,
    c0: usize,
    c1: usize,
) {
    let dim = packed.dim();
    let raw = packed.raw();
    let mut tmp = [Complex::<T>::zero(); MAX_DIM];
    let mut out = [Complex::<T>::zero(); MAX_DIM];
    for c in c0..c1 {
        let base = exp.expand(c);
        for (x, &off) in offs.iter().enumerate().take(dim) {
            tmp[x] = state[base + off];
        }
        out[..dim].fill(Complex::zero());
        // Blocked sweep: inputs j in [i0, i0+b) stay in registers while all
        // output pairs are updated.
        let mut i0 = 0;
        while i0 < dim {
            let iend = (i0 + b).min(dim);
            for lp in 0..dim / 2 {
                let mut a0 = out[2 * lp];
                let mut a1 = out[2 * lp + 1];
                for i in i0..iend {
                    let v = tmp[i];
                    let e = &raw[(lp * dim + i) * 8..(lp * dim + i) * 8 + 8];
                    // Row 2lp: (rr0, rr0) then (−im0, im0).
                    a0.re = v.re.mul_add(e[0], a0.re);
                    a0.im = v.im.mul_add(e[1], a0.im);
                    a0.re = v.im.mul_add(e[4], a0.re);
                    a0.im = v.re.mul_add(e[5], a0.im);
                    // Row 2lp+1.
                    a1.re = v.re.mul_add(e[2], a1.re);
                    a1.im = v.im.mul_add(e[3], a1.im);
                    a1.re = v.im.mul_add(e[6], a1.re);
                    a1.im = v.re.mul_add(e[7], a1.im);
                }
                out[2 * lp] = a0;
                out[2 * lp + 1] = a1;
            }
            i0 = iend;
        }
        for (l, &off) in offs.iter().enumerate().take(dim) {
            state[base + off] = out[l];
        }
    }
}

/// Shared preamble: validate, sort operands ascending, permute the matrix
/// once (§3.2 pre-permutation), and build the index expander.
pub(crate) fn prepare<T: Real>(
    len: usize,
    qubits: &[u32],
    m: &GateMatrix<T>,
) -> (IndexExpander, GateMatrix<T>) {
    assert!(len.is_power_of_two(), "state length must be 2^n");
    let n = len.trailing_zeros();
    for &q in qubits {
        assert!(q < n, "qubit {q} out of range for n={n}");
    }
    prepare_free(qubits, m)
}

/// Length-free half of [`prepare`]: sort operands and pre-permute the
/// matrix without knowing the state size. Used by the tiled sweep
/// executor, whose gates are prepared once per stage and then applied to
/// many differently-sized slices (full state and cache tiles).
pub(crate) fn prepare_free<T: Real>(
    qubits: &[u32],
    m: &GateMatrix<T>,
) -> (IndexExpander, GateMatrix<T>) {
    let k = m.k();
    assert_eq!(qubits.len(), k as usize, "operand arity mismatch");
    assert!((1..=MAX_K).contains(&k), "unsupported kernel size k={k}");
    // order[j] = index into `qubits` of the j-th smallest position.
    let mut order: Vec<usize> = (0..qubits.len()).collect();
    order.sort_by_key(|&j| qubits[j]);
    let sorted: Vec<u32> = order.iter().map(|&j| qubits[j]).collect();
    let already_sorted = order.iter().enumerate().all(|(a, &b)| a == b);
    let pm = if already_sorted {
        m.clone()
    } else {
        m.permuted_qubits(&order)
    };
    (IndexExpander::new(&sorted), pm)
}

/// Offset table: `offs[x]` = state offset of local index `x` from a block
/// base, for sorted operands.
#[inline]
pub(crate) fn offsets(exp: &IndexExpander, dim: usize) -> Vec<usize> {
    (0..dim).map(|x| exp.offset(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_util::c64;
    use qsim_util::complex::max_dist;
    use qsim_util::{SplitMix64, Xoshiro256};

    fn random_state(n: u32, seed: u64) -> Vec<c64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut v: Vec<c64> = (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let norm: f64 = v.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        v.iter_mut().for_each(|a| *a = a.scale(1.0 / norm));
        v
    }

    fn random_unitary(k: u32, seed: u64) -> GateMatrix<f64> {
        // Gram–Schmidt on a random complex matrix: good enough for tests.
        let d = 1usize << k;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xabcd);
        let mut rows: Vec<Vec<c64>> = (0..d)
            .map(|_| {
                (0..d)
                    .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                    .collect()
            })
            .collect();
        for i in 0..d {
            for j in 0..i {
                let dot: c64 = (0..d).map(|t| rows[j][t].conj() * rows[i][t]).sum();
                let (lo, hi) = rows.split_at_mut(i);
                for (x, &rjt) in hi[0].iter_mut().zip(lo[j].iter()) {
                    let s = dot * rjt;
                    *x -= s;
                }
            }
            let norm: f64 = rows[i].iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
            rows[i].iter_mut().for_each(|a| *a = a.scale(1.0 / norm));
        }
        GateMatrix::from_rows(k, rows.into_iter().flatten().collect())
    }

    /// Dense reference: full 2^n × 2^n product via embed.
    fn reference_apply(state: &[c64], qubits: &[u32], m: &GateMatrix<f64>) -> Vec<c64> {
        let n = state.len().trailing_zeros();
        let big = m.embed(n, qubits);
        let d = state.len();
        let mut out = vec![c64::zero(); d];
        for (r, o) in out.iter_mut().enumerate() {
            for (c, &s) in state.iter().enumerate() {
                *o += big.get(r, c) * s;
            }
        }
        out
    }

    #[test]
    fn all_steps_agree_with_reference_k1_to_k4() {
        let n = 8;
        let mut sm = SplitMix64::new(2024);
        for k in 1..=4u32 {
            let m = random_unitary(k, sm.next_u64());
            // Unsorted, non-adjacent operands exercise permutation.
            let qubits: Vec<u32> = match k {
                1 => vec![5],
                2 => vec![6, 2],
                3 => vec![7, 0, 4],
                _ => vec![3, 7, 1, 5],
            };
            let state = random_state(n, sm.next_u64());
            let expect = reference_apply(&state, &qubits, &m);

            let mut dst = vec![c64::zero(); state.len()];
            apply_twovec(&state, &mut dst, &qubits, &m);
            assert!(max_dist(&dst, &expect) < 1e-12, "twovec k={k}");

            let mut s1 = state.clone();
            apply_inplace(&mut s1, &qubits, &m);
            assert!(max_dist(&s1, &expect) < 1e-12, "inplace k={k}");

            let mut s2 = state.clone();
            apply_fma(&mut s2, &qubits, &m);
            assert!(max_dist(&s2, &expect) < 1e-12, "fma k={k}");

            for b in [1usize, 2, 4, 8, 32] {
                let mut s3 = state.clone();
                apply_blocked(&mut s3, &qubits, &m, b);
                assert!(max_dist(&s3, &expect) < 1e-12, "blocked k={k} b={b}");
            }
        }
    }

    #[test]
    fn k5_blocked_agrees_with_fma() {
        let n = 9;
        let m = random_unitary(5, 77);
        let qubits = vec![8, 1, 6, 3, 0];
        let state = random_state(n, 78);
        let mut a = state.clone();
        apply_fma(&mut a, &qubits, &m);
        let mut b = state.clone();
        apply_blocked(&mut b, &qubits, &m, 4);
        assert!(max_dist(&a, &b) < 1e-12);
        // And against the dense reference.
        let expect = reference_apply(&state, &qubits, &m);
        assert!(max_dist(&a, &expect) < 1e-11);
    }

    #[test]
    fn norm_is_preserved() {
        let mut state = random_state(10, 5);
        for k in 1..=5u32 {
            let m = random_unitary(k, 100 + k as u64);
            let qubits: Vec<u32> = (0..k).map(|j| 9 - 2 * (j % 5)).collect::<Vec<_>>();
            let mut qs = qubits.clone();
            qs.sort_unstable();
            qs.dedup();
            if qs.len() != qubits.len() {
                continue;
            }
            apply_blocked(&mut state, &qubits, &m, 4);
            let norm: f64 = state.iter().map(|a| a.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-10, "k={k} norm={norm}");
        }
    }

    #[test]
    fn x_gate_on_each_qubit_permutes_basis() {
        let x = GateMatrix::from_rows(1, vec![c64::zero(), c64::one(), c64::one(), c64::zero()]);
        let n = 6;
        for q in 0..n {
            let mut state = vec![c64::zero(); 1 << n];
            state[0] = c64::one();
            apply_fma(&mut state, &[q], &x);
            // |0..0⟩ -> |0..1_q..0⟩.
            let expect_idx = 1usize << q;
            for (i, &a) in state.iter().enumerate() {
                let expect = if i == expect_idx {
                    c64::one()
                } else {
                    c64::zero()
                };
                assert!((a - expect).abs() < 1e-15, "q={q} i={i}");
            }
        }
    }

    #[test]
    fn operand_order_convention() {
        // CNOT(control=operand1, target=operand0) applied to qubits [t, c]:
        // flips qubit t iff qubit c is 1.
        let mut cnot = GateMatrix::<f64>::identity(2);
        cnot.set(2, 2, c64::zero());
        cnot.set(3, 3, c64::zero());
        cnot.set(2, 3, c64::one());
        cnot.set(3, 2, c64::one());
        let n = 4;
        // target = qubit 0, control = qubit 3.
        let mut state = vec![c64::zero(); 1 << n];
        state[0b1000] = c64::one(); // control set
        apply_fma(&mut state, &[0, 3], &cnot);
        assert!((state[0b1001] - c64::one()).abs() < 1e-15);
        // Control clear: nothing happens.
        let mut state2 = vec![c64::zero(); 1 << n];
        state2[0b0010] = c64::one();
        apply_fma(&mut state2, &[0, 3], &cnot);
        assert!((state2[0b0010] - c64::one()).abs() < 1e-15);
    }

    #[test]
    fn f32_kernels_work() {
        use qsim_util::c32;
        let m64 = random_unitary(2, 9);
        let m: GateMatrix<f32> = m64.convert();
        let mut state: Vec<c32> = random_state(6, 10).iter().map(|a| a.convert()).collect();
        let before: f32 = state.iter().map(|a| a.norm_sqr()).sum();
        apply_blocked(&mut state, &[1, 4], &m, 2);
        let after: f32 = state.iter().map(|a| a.norm_sqr()).sum();
        assert!((before - after).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qubit() {
        let m = GateMatrix::<f64>::identity(1);
        let mut state = vec![c64::zero(); 8];
        apply_fma(&mut state, &[3], &m);
    }
}
