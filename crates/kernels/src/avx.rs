//! Explicit AVX2+FMA vectorization of the step-3 kernel (f64 only).
//!
//! This is the Rust analogue of the paper's compiler-intrinsics layer
//! (§3.2): updates for two consecutive temporary-vector entries are packed
//! into one 256-bit lane, the gathered input amplitude is kept in register
//! in both its `(v_R, v_I)` and swapped `(v_I, v_R)` forms (one permute per
//! input, hoisted out of the output loop), and each packed matrix entry
//! contributes exactly two `vfmadd` instructions — the Eq. (2)–(3) scheme.
//!
//! Register blocking: for k ≤ 4 all 2^k/2 ≤ 8 accumulator vectors stay
//! resident in ymm registers across the full input sweep; for k = 5..6 the
//! output rows are processed in half/quarter sweeps to avoid spills —
//! "blocking to reduce register-spilling" (§3).
//!
//! Feature detection happens once per call via
//! `is_x86_feature_detected!`; non-x86 targets or older CPUs fall back to
//! the portable scalar step-3 kernel, which keeps the crate
//! performance-portable (the role the paper assigns to its code generator).

use crate::matrix::PackedMatrix;
use crate::opt;
use qsim_util::bits::IndexExpander;
use qsim_util::c64;

/// Does this host support the explicit AVX2+FMA path?
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Apply a packed k-qubit gate to blocks `[c0, c1)` with the AVX2 kernel,
/// falling back to the scalar step-3 kernel when AVX2 is unavailable.
///
/// `offs` is the offset table for the (sorted) expander; `b` is the scalar
/// fallback's block size.
pub fn apply_avx_range(
    state: &mut [c64],
    exp: &IndexExpander,
    packed: &PackedMatrix<f64>,
    offs: &[usize],
    b: usize,
    c0: usize,
    c1: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: feature presence checked at runtime above.
            unsafe { apply_avx_range_impl(state, exp, packed, offs, c0, c1) };
            return;
        }
    }
    opt::apply_blocked_packed_range(state, exp, packed, offs, b, c0, c1);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn apply_avx_range_impl(
    state: &mut [c64],
    exp: &IndexExpander,
    packed: &PackedMatrix<f64>,
    offs: &[usize],
    c0: usize,
    c1: usize,
) {
    use core::arch::x86_64::*;
    let dim = packed.dim();
    debug_assert!(dim <= 1 << opt::MAX_K);
    let raw = packed.raw().as_ptr();
    let sp = state.as_mut_ptr() as *mut f64;
    // Temporary gathered inputs, interleaved (re, im).
    let mut tmp = [0f64; 2 << opt::MAX_K];
    // Output row pairs processed per sweep: keep <= 8 accumulators in ymm.
    let pairs = dim / 2;
    let sweep = pairs.min(8);
    for c in c0..c1 {
        let base = exp.expand(c);
        for (x, &off) in offs.iter().enumerate().take(dim) {
            let p = sp.add(2 * (base + off));
            tmp[2 * x] = *p;
            tmp[2 * x + 1] = *p.add(1);
        }
        let mut lp0 = 0usize;
        while lp0 < pairs {
            let lpe = (lp0 + sweep).min(pairs);
            let nacc = lpe - lp0;
            // Accumulators for up to 8 output pairs.
            let mut acc = [_mm256_setzero_pd(); 8];
            for i in 0..dim {
                // v = (vR, vI, vR, vI), vswap = (vI, vR, vI, vR).
                let v128 = _mm_loadu_pd(tmp.as_ptr().add(2 * i));
                let v = _mm256_set_m128d(v128, v128);
                let vswap = _mm256_permute_pd(v, 0b0101);
                for (a, lp) in (lp0..lpe).enumerate() {
                    let e = raw.add((lp * dim + i) * 8);
                    // (m_R, m_R) pairs for rows 2lp and 2lp+1.
                    let mrr = _mm256_load_pd(e);
                    // (−m_I, m_I) pairs.
                    let mim = _mm256_load_pd(e.add(4));
                    acc[a] = _mm256_fmadd_pd(v, mrr, acc[a]);
                    acc[a] = _mm256_fmadd_pd(vswap, mim, acc[a]);
                }
            }
            for (a, lp) in (lp0..lpe).enumerate().take(nacc) {
                // acc lanes: (row 2lp re, im, row 2lp+1 re, im).
                let lo = _mm256_castpd256_pd128(acc[a]);
                let hi = _mm256_extractf128_pd(acc[a], 1);
                let o0 = offs[2 * lp];
                let o1 = offs[2 * lp + 1];
                _mm_storeu_pd(sp.add(2 * (base + o0)), lo);
                _mm_storeu_pd(sp.add(2 * (base + o1)), hi);
            }
            lp0 = lpe;
        }
    }
}

/// The paper's *step 2 before re-ordering*: explicit vectorization of the
/// textbook complex product (Eq. 1), one 128-bit lane per amplitude, with
/// multiplies, horizontal adds and permutes — the "wasted compute
/// resources due to artificial dependencies and additional permutes" that
/// Eq. (2)–(3) then eliminates. Exists so the Fig. 2 ladder can measure
/// vectorization and re-association as separate steps.
pub fn apply_avx_eq1(state: &mut [c64], qubits: &[u32], m: &crate::matrix::GateMatrix<f64>) {
    let (exp, pm) = opt::prepare(state.len(), qubits, m);
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: feature presence checked at runtime above.
            unsafe { apply_avx_eq1_impl(state, &exp, &pm) };
            return;
        }
    }
    let blocks = state.len() >> pm.k();
    let offs = opt::offsets(&exp, pm.dim());
    let packed = PackedMatrix::pack(&pm);
    opt::apply_blocked_packed_range(state, &exp, &packed, &offs, 1, 0, blocks);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn apply_avx_eq1_impl(
    state: &mut [c64],
    exp: &IndexExpander,
    pm: &crate::matrix::GateMatrix<f64>,
) {
    use core::arch::x86_64::*;
    let dim = pm.dim();
    let offs = opt::offsets(exp, dim);
    let blocks = state.len() >> pm.k();
    let sp = state.as_mut_ptr() as *mut f64;
    let me = pm.entries().as_ptr() as *const f64;
    let mut tmp = [0f64; 2 << opt::MAX_K];
    let mut out = [0f64; 2 << opt::MAX_K];
    for c in 0..blocks {
        let base = exp.expand(c);
        for (x, &off) in offs.iter().enumerate().take(dim) {
            let p = sp.add(2 * (base + off));
            tmp[2 * x] = *p;
            tmp[2 * x + 1] = *p.add(1);
        }
        for l in 0..dim {
            // Accumulate (m_R·v_R, m_I·v_I) and (m_R·v_I, m_I·v_R) lanes,
            // then reduce: re = hsub, im = hadd — Eq. (1) verbatim.
            let mut acc_re = _mm_setzero_pd();
            let mut acc_im = _mm_setzero_pd();
            for i in 0..dim {
                let mv = _mm_loadu_pd(me.add(2 * (l * dim + i)));
                let v = _mm_loadu_pd(tmp.as_ptr().add(2 * i));
                let vswap = _mm_permute_pd(v, 0b01);
                acc_re = _mm_add_pd(acc_re, _mm_mul_pd(mv, v));
                acc_im = _mm_add_pd(acc_im, _mm_mul_pd(mv, vswap));
            }
            let res = _mm_hsub_pd(acc_re, acc_re); // (re, re)
            let ims = _mm_hadd_pd(acc_im, acc_im); // (im, im)
            out[2 * l] = _mm_cvtsd_f64(res);
            out[2 * l + 1] = _mm_cvtsd_f64(ims);
        }
        for (l, &off) in offs.iter().enumerate().take(dim) {
            let p = sp.add(2 * (base + off));
            *p = out[2 * l];
            *p.add(1) = out[2 * l + 1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::GateMatrix;
    use crate::opt::{apply_fma, offsets, prepare};
    use qsim_util::complex::max_dist;
    use qsim_util::Xoshiro256;

    fn random_state(n: u32, seed: u64) -> Vec<c64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn random_unitaryish(k: u32, seed: u64) -> GateMatrix<f64> {
        // Any matrix works for kernel-equivalence tests.
        let d = 1usize << k;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        GateMatrix::from_rows(
            k,
            (0..d * d)
                .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect(),
        )
    }

    fn run_avx(state: &mut [c64], qubits: &[u32], m: &GateMatrix<f64>) {
        let (exp, pm) = prepare(state.len(), qubits, m);
        let packed = PackedMatrix::pack(&pm);
        let offs = offsets(&exp, packed.dim());
        let blocks = state.len() >> packed.k();
        apply_avx_range(state, &exp, &packed, &offs, 4, 0, blocks);
    }

    #[test]
    fn avx_matches_scalar_for_all_k() {
        if !avx2_available() {
            eprintln!("AVX2 unavailable; fallback path exercised instead");
        }
        let n = 10;
        for k in 1..=5u32 {
            let m = random_unitaryish(k, 1000 + k as u64);
            let qubits: Vec<u32> = (0..k).map(|j| (j * 2 + 1) % n).collect();
            let state0 = random_state(n, 2000 + k as u64);
            let mut a = state0.clone();
            run_avx(&mut a, &qubits, &m);
            let mut b = state0;
            apply_fma(&mut b, &qubits, &m);
            assert!(max_dist(&a, &b) < 1e-12, "k={k}");
        }
    }

    #[test]
    fn avx_handles_high_order_qubits() {
        let n = 12;
        let m = random_unitaryish(3, 31);
        let qubits = vec![11, 10, 9];
        let state0 = random_state(n, 32);
        let mut a = state0.clone();
        run_avx(&mut a, &qubits, &m);
        let mut b = state0;
        apply_fma(&mut b, &qubits, &m);
        assert!(max_dist(&a, &b) < 1e-12);
    }

    #[test]
    fn avx_eq1_matches_scalar_for_all_k() {
        let n = 10;
        for k in 1..=5u32 {
            let m = random_unitaryish(k, 4000 + k as u64);
            let qubits: Vec<u32> = (0..k).map(|j| (j * 3 + 2) % n).collect();
            let mut qs = qubits.clone();
            qs.sort_unstable();
            qs.dedup();
            if qs.len() != qubits.len() {
                continue;
            }
            let state0 = random_state(n, 5000 + k as u64);
            let mut a = state0.clone();
            apply_avx_eq1(&mut a, &qubits, &m);
            let mut b = state0;
            apply_fma(&mut b, &qubits, &m);
            assert!(max_dist(&a, &b) < 1e-12, "eq1 k={k}");
        }
    }

    #[test]
    fn avx_partial_range_composes() {
        // Applying [0, mid) then [mid, blocks) must equal one full sweep.
        let n = 9;
        let m = random_unitaryish(2, 55);
        let qubits = vec![4, 7];
        let state0 = random_state(n, 56);
        let (exp, pm) = prepare(state0.len(), &qubits, &m);
        let packed = PackedMatrix::pack(&pm);
        let offs = offsets(&exp, packed.dim());
        let blocks = state0.len() >> 2;
        let mut a = state0.clone();
        apply_avx_range(&mut a, &exp, &packed, &offs, 4, 0, blocks / 2);
        apply_avx_range(&mut a, &exp, &packed, &offs, 4, blocks / 2, blocks);
        let mut b = state0;
        apply_avx_range(&mut b, &exp, &packed, &offs, 4, 0, blocks);
        assert!(max_dist(&a, &b) < 1e-13);
    }
}
