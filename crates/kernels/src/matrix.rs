//! Kernel-facing matrix layout.
//!
//! [`GateMatrix`] (re-exported from `qsim-util`) is the portable dense
//! matrix; [`PackedMatrix`] is the Eq. (2)-(3) layout consumed by the FMA
//! and AVX2 kernels: for every entry `m`, the pairs `(m_R, m_R)` and
//! `(-m_I, m_I)` are stored contiguously so the inner loop is exactly two
//! fused multiply-adds per entry.

pub use qsim_util::matrix::GateMatrix;

use qsim_util::AlignedVec;
use qsim_util::Real;

/// The Eq. (2)–(3) packed layout of a gate matrix.
///
/// For every output row `l` and input column `i`, two scalar pairs are
/// stored adjacently: `(m_R, m_R)` then `(−m_I, m_I)`. The scalar FMA
/// kernel reads them as `Complex`-shaped pairs; the AVX2 kernel loads two
/// consecutive rows' pairs as one 256-bit vector, which requires rows to be
/// the *minor* dimension. Layout (f64, row pair `L = l/2`):
///
/// ```text
/// [ i=0: rr(l=2L), rr(l=2L+1), im(l=2L), im(l=2L+1) | i=1: ... ] per L
/// ```
///
/// i.e. column-major over `i` within a row pair, so the inner loop over
/// inputs streams the matrix linearly.
pub struct PackedMatrix<T> {
    k: u32,
    /// `[row_pair][i][rr0 rr1 im0 im1]` flattened; each rr/im is 2 scalars.
    data: AlignedVec<T>,
}

impl<T: Real> PackedMatrix<T> {
    /// Pack a gate matrix. For odd dimensions this cannot happen (dims are
    /// powers of two ≥ 2).
    pub fn pack(m: &GateMatrix<T>) -> Self {
        let d = m.dim();
        assert!(d >= 2, "packing needs k >= 1");
        let pairs = d / 2;
        // Per (row pair, input): 8 scalars (rr0 rr1 pair + im0 im1 pair,
        // each entry itself a (x, x) 2-scalar pair).
        let mut data = AlignedVec::new_zeroed(pairs * d * 8);
        for lp in 0..pairs {
            for i in 0..d {
                let base = (lp * d + i) * 8;
                let m0 = m.get(2 * lp, i);
                let m1 = m.get(2 * lp + 1, i);
                // (m_R, m_R) for both rows of the pair.
                data[base] = m0.re;
                data[base + 1] = m0.re;
                data[base + 2] = m1.re;
                data[base + 3] = m1.re;
                // (−m_I, m_I) for both rows.
                data[base + 4] = -m0.im;
                data[base + 5] = m0.im;
                data[base + 6] = -m1.im;
                data[base + 7] = m1.im;
            }
        }
        Self { k: m.k(), data }
    }

    #[inline(always)]
    pub fn k(&self) -> u32 {
        self.k
    }

    #[inline(always)]
    pub fn dim(&self) -> usize {
        1usize << self.k
    }

    /// Raw packed scalars; layout documented on the type.
    #[inline(always)]
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// The 8 packed scalars for (row pair `lp`, input `i`).
    #[inline(always)]
    pub fn entry(&self, lp: usize, i: usize) -> &[T] {
        let base = (lp * self.dim() + i) * 8;
        &self.data[base..base + 8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_util::c64;

    fn h() -> GateMatrix<f64> {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        GateMatrix::from_rows(
            1,
            vec![
                c64::new(s, 0.0),
                c64::new(s, 0.0),
                c64::new(s, 0.0),
                c64::new(-s, 0.0),
            ],
        )
    }

    #[test]
    fn packed_matrix_layout() {
        let m = h();
        let p = PackedMatrix::pack(&m);
        assert_eq!(p.k(), 1);
        assert_eq!(p.dim(), 2);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert_eq!(p.entry(0, 0), &[s, s, s, s, -0.0, 0.0, -0.0, 0.0]);
        assert_eq!(p.entry(0, 1), &[s, s, -s, -s, -0.0, 0.0, -0.0, 0.0]);
    }

    #[test]
    fn packed_matrix_imaginary_parts() {
        let y_half = GateMatrix::from_rows(
            1,
            vec![
                c64::new(0.5, 0.5),
                c64::new(-0.5, -0.5),
                c64::new(0.5, 0.5),
                c64::new(0.5, 0.5),
            ],
        );
        let p = PackedMatrix::pack(&y_half);
        assert_eq!(p.entry(0, 0), &[0.5, 0.5, 0.5, 0.5, -0.5, 0.5, -0.5, 0.5]);
        assert_eq!(p.entry(0, 1), &[-0.5, -0.5, 0.5, 0.5, 0.5, -0.5, -0.5, 0.5]);
    }

    #[test]
    fn packed_alignment_per_entry() {
        // Each 8-scalar entry must be 32-byte aligned for _mm256_load_pd.
        let m = GateMatrix::<f64>::identity(3);
        let p = PackedMatrix::pack(&m);
        assert_eq!(p.raw().as_ptr() as usize % 64, 0);
        assert_eq!(p.entry(2, 5).as_ptr() as usize % 32, 0);
    }
}
