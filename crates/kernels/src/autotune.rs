//! Runtime kernel autotuning — the paper's "automatic code-generation /
//! benchmarking feedback loop" (§3.2) recast for a compiled library.
//!
//! The paper generates kernel variants offline and benchmarks them to pick
//! the block size and the largest profitable kernel size `kmax`. Here the
//! variants already exist (macro-/generic-compiled); the feedback loop
//! runs at startup on a small state vector and selects:
//!
//! * `block` — the register-blocking width of the scalar step-3 kernel;
//! * `kmax`  — the largest k whose kernel still delivers good *effective*
//!   throughput. Because a k-qubit fused gate replaces ≥ k single/two-qubit
//!   gates (Table 1 shows more than k on average), the figure of merit is
//!   amplitude-sweeps avoided per second: `gflops_equivalent(k) =
//!   k × amplitudes/second`, the same "larger gates in (almost) the same
//!   time" argument of §3.3.
//!
//! Tuning takes tens of milliseconds and is cached by callers (the
//! distributed simulator tunes once per process).

use crate::apply::{apply_gate, KernelConfig, OptLevel, Simd};
use crate::matrix::GateMatrix;
use qsim_util::c64;
use qsim_util::flops::gate_flops;
use qsim_util::stats::{summarize, time_reps};
use qsim_util::Xoshiro256;

/// Autotuning result.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TunedParams {
    /// Largest profitable fused-kernel size (paper finds 4 on Edison, 4–5
    /// on KNL).
    pub kmax: u32,
    /// Scalar register-blocking width.
    pub block: usize,
    /// Measured GFLOPS per kernel size k (index 0 ↔ k=1), low-order
    /// qubits.
    pub gflops_by_k: [f64; 5],
}

/// Candidate block widths swept by the feedback loop.
pub const BLOCK_CANDIDATES: [usize; 4] = [1, 2, 4, 8];

/// Run the tuning loop on a 2^n_test state (n_test ∈ [10, 26] is sane;
/// benchmarks use 22+, tests use small values for speed).
pub fn autotune(n_test: u32, threads: usize) -> TunedParams {
    assert!(
        (8..=28).contains(&n_test),
        "unreasonable tuning size {n_test}"
    );
    let len = 1usize << n_test;
    let mut rng = Xoshiro256::seed_from_u64(0x7ae5);
    let mut state: Vec<c64> = (0..len)
        .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect();

    // Sweep block width on the k=4 scalar kernel (the size the paper
    // identifies as the workhorse).
    let m4 = random_dense(4);
    let q4: Vec<u32> = (0..4).collect();
    let mut best_block = BLOCK_CANDIDATES[0];
    let mut best_time = f64::INFINITY;
    for &b in &BLOCK_CANDIDATES {
        let cfg = KernelConfig {
            opt: OptLevel::Blocked,
            simd: Simd::Scalar,
            block: b,
            threads,
        };
        let t = summarize(&time_reps(1, 3, || {
            apply_gate(&mut state, &q4, &m4, &cfg);
        }))
        .median;
        if t < best_time {
            best_time = t;
            best_block = b;
        }
    }

    // Measure per-k GFLOPS with the production config and pick kmax by
    // effective throughput.
    let cfg = KernelConfig {
        opt: OptLevel::Blocked,
        simd: Simd::Auto,
        block: best_block,
        threads,
    };
    let mut gflops_by_k = [0f64; 5];
    let mut best_k = 1u32;
    let mut best_score = 0f64;
    for k in 1..=5u32 {
        let m = random_dense(k);
        let qs: Vec<u32> = (0..k).collect();
        let t = summarize(&time_reps(1, 3, || {
            apply_gate(&mut state, &qs, &m, &cfg);
        }))
        .median;
        let gf = gate_flops(n_test, k) as f64 / t / 1e9;
        gflops_by_k[(k - 1) as usize] = gf;
        // Effective figure of merit: gates fused per sweep ~ k, so a
        // k-kernel is worth k single-gate sweeps.
        let score = k as f64 / t;
        if score > best_score {
            best_score = score;
            best_k = k;
        }
    }

    TunedParams {
        kmax: best_k,
        block: best_block,
        gflops_by_k,
    }
}

/// Memoized [`autotune`]: the measurement loop runs once per distinct
/// `(n_test, threads)` pair per process and later callers get the cached
/// result — `SingleNodeSimulator::autotuned` no longer re-tunes per
/// construction in benches and tests.
pub fn autotune_cached(n_test: u32, threads: usize) -> TunedParams {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<(u32, usize), TunedParams>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(p) = cache.lock().unwrap().get(&(n_test, threads)) {
        return *p;
    }
    // Tune outside the lock: concurrent first callers may race and tune
    // twice, but never deadlock or serialize later lookups.
    let p = autotune(n_test, threads);
    cache.lock().unwrap().insert((n_test, threads), p);
    p
}

/// Candidate tile sizes (log2 amplitudes) for the cache-tiled stage
/// executor — 2^12..2^16 amplitudes are 64 KiB..1 MiB, bracketing L2.
pub const TILE_CANDIDATES: [u32; 3] = [12, 14, 16];

/// Tune the tile size for the tiled stage executor with the same
/// measure-then-pick loop as [`autotune`]'s block sweep: run a surrogate
/// three-cluster tiled pass over a 2^18 state at each candidate size and
/// keep the fastest. Cached per process (the choice is a property of the
/// cache hierarchy, not of the circuit).
pub fn tune_tile_qubits() -> u32 {
    use std::sync::OnceLock;
    static CHOICE: OnceLock<u32> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        let n = 18u32;
        let mut rng = Xoshiro256::seed_from_u64(0x711e);
        let mut state: Vec<c64> = (0..1usize << n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let cfg = KernelConfig {
            opt: OptLevel::Blocked,
            simd: Simd::Auto,
            block: 4,
            threads: 1,
        };
        let mut best = TILE_CANDIDATES[0];
        let mut best_time = f64::INFINITY;
        for &tq in &TILE_CANDIDATES {
            let tile: Vec<u32> = (0..tq).collect();
            let ops: Vec<crate::sweep::TileOp> = (0..3)
                .map(|i| {
                    let qs: Vec<u32> = (4 * i..4 * i + 4).collect();
                    crate::sweep::TileOp::Dense(crate::sweep::PreparedGate::new(
                        &qs,
                        &random_dense(4),
                        &cfg,
                    ))
                })
                .collect();
            let pass = crate::sweep::TiledPass::new(tile, ops);
            let mut stats = crate::sweep::SweepStats::default();
            let t = summarize(&time_reps(1, 3, || {
                pass.run(&mut state, 0, 1, &mut stats);
            }))
            .median;
            if t < best_time {
                best_time = t;
                best = tq;
            }
        }
        best
    })
}

/// Candidate pipeline depths (sub-chunks per peer segment) for the fused
/// global-swap engine.
pub const SUB_CHUNK_CANDIDATES: [usize; 4] = [1, 2, 4, 8];

/// A sub-chunk whose pack takes less time than this is dominated by
/// per-message overhead; the tuner never splits below it.
const SUB_CHUNK_FLOOR_SECONDS: f64 = 50e-6;

/// Tune the pipeline depth `S` for a fused global swap whose per-peer
/// segments hold `seg_len` amplitudes — the same measure-then-pick
/// feedback loop as [`autotune`], applied to the swap data path: the
/// permuted-gather (pack) bandwidth is measured on a surrogate buffer, and
/// the deepest candidate whose sub-chunk pack time still clears the
/// per-message overhead floor wins. Deeper pipelines overlap more packing
/// with other ranks' progress but pay one message per sub-chunk.
pub fn tune_swap_sub_chunks(seg_len: usize) -> usize {
    if seg_len < 2 {
        return 1;
    }
    // Measure on a power-of-two surrogate in [2^10, 2^18] so tuning stays
    // in the tens of milliseconds even for huge segments.
    let bits = seg_len.clamp(1 << 10, 1 << 18).ilog2();
    let len = 1usize << bits;
    let mut rng = Xoshiro256::seed_from_u64(0xc0f);
    let src: Vec<c64> = (0..len)
        .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect();
    let mut dst = vec![c64::zero(); len];
    let perm =
        qsim_util::bits::BitPermutation::new((0..bits).map(|i| (i + bits / 2) % bits).collect());
    let t = summarize(&time_reps(1, 3, || {
        crate::parallel::par_gather(&src, &mut dst, |i| perm.apply(i));
    }))
    .median;
    let seg_seconds = t / len as f64 * seg_len as f64;
    let mut best = 1usize;
    for &s in &SUB_CHUNK_CANDIDATES {
        if s <= seg_len && seg_seconds / s as f64 >= SUB_CHUNK_FLOOR_SECONDS {
            best = s;
        }
    }
    best
}

fn random_dense(k: u32) -> GateMatrix<f64> {
    let d = 1usize << k;
    let mut rng = Xoshiro256::seed_from_u64(0x51ed ^ k as u64);
    GateMatrix::from_rows(
        k,
        (0..d * d)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_on_small_state_returns_sane_params() {
        let p = autotune(12, 1);
        assert!((1..=5).contains(&p.kmax), "kmax={}", p.kmax);
        assert!(BLOCK_CANDIDATES.contains(&p.block));
        for (i, &g) in p.gflops_by_k.iter().enumerate() {
            assert!(g > 0.0, "k={} has zero throughput", i + 1);
            assert!(g.is_finite());
        }
    }

    #[test]
    fn larger_kernels_do_more_flops_per_second_or_so() {
        // Weak sanity property: the k=4 kernel should not be an order of
        // magnitude slower in GFLOPS than k=1 (it does 9x the FLOPs for
        // roughly the same traffic).
        let p = autotune(14, 1);
        assert!(
            p.gflops_by_k[3] > p.gflops_by_k[0] * 0.8,
            "k=4 {} vs k=1 {}",
            p.gflops_by_k[3],
            p.gflops_by_k[0]
        );
    }

    #[test]
    #[should_panic(expected = "unreasonable tuning size")]
    fn rejects_huge_tuning_state() {
        let _ = autotune(40, 1);
    }

    #[test]
    fn cached_autotune_returns_identical_params() {
        let a = autotune_cached(10, 1);
        let b = autotune_cached(10, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn tile_tuning_picks_a_candidate() {
        let t = tune_tile_qubits();
        assert!(TILE_CANDIDATES.contains(&t), "tile {t} not a candidate");
        assert_eq!(t, tune_tile_qubits(), "choice must be stable");
    }

    #[test]
    fn sub_chunk_tuning_is_sane_and_monotone() {
        // Tiny segments must not be split; the chosen depth is always a
        // candidate and never exceeds the segment.
        assert_eq!(tune_swap_sub_chunks(1), 1);
        let small = tune_swap_sub_chunks(1 << 8);
        let large = tune_swap_sub_chunks(1 << 24);
        for s in [small, large] {
            assert!(
                SUB_CHUNK_CANDIDATES.contains(&s),
                "depth {s} not a candidate"
            );
        }
        assert!(
            small <= large,
            "bigger segments must not pick shallower pipelines ({small} > {large})"
        );
    }
}
