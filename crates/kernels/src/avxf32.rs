//! AVX2+FMA kernel for single-precision amplitudes.
//!
//! §5 of the paper: "the simulation of 46 qubits is feasible when using
//! single-precision floating point numbers" — half the bytes per
//! amplitude doubles the reachable state at fixed memory AND doubles the
//! SIMD width. One 256-bit lane carries FOUR `(re, im)` f32 pairs, so the
//! packing covers four consecutive temp-vector rows per matrix entry,
//! with the same two-FMA Eq. (2)–(3) structure as the f64 paths.

use crate::matrix::GateMatrix;
use crate::opt;
use qsim_util::bits::IndexExpander;
use qsim_util::complex::Complex;
use qsim_util::AlignedVec;

#[allow(non_camel_case_types)]
type c32 = Complex<f32>;

/// f32 matrix packed for 256-bit lanes: per (row quad, input), 16 floats:
/// `(m_R, m_R)` for rows 4L..4L+3 then `(−m_I, m_I)` for the same rows.
pub struct PackedF32 {
    k: u32,
    data: AlignedVec<f32>,
}

impl PackedF32 {
    /// Pack a (pre-permuted) f32 gate matrix; requires `k >= 2`.
    pub fn pack(m: &GateMatrix<f32>) -> Self {
        let d = m.dim();
        assert!(d >= 4, "f32 AVX2 packing needs k >= 2");
        let quads = d / 4;
        let mut data = AlignedVec::new_zeroed(quads * d * 16);
        for lq in 0..quads {
            for i in 0..d {
                let base = (lq * d + i) * 16;
                for r in 0..4 {
                    let e = m.get(4 * lq + r, i);
                    data[base + 2 * r] = e.re;
                    data[base + 2 * r + 1] = e.re;
                    data[base + 8 + 2 * r] = -e.im;
                    data[base + 8 + 2 * r + 1] = e.im;
                }
            }
        }
        Self { k: m.k(), data }
    }

    #[inline(always)]
    pub fn k(&self) -> u32 {
        self.k
    }

    #[inline(always)]
    pub fn dim(&self) -> usize {
        1usize << self.k
    }

    #[inline(always)]
    pub fn raw(&self) -> &[f32] {
        &self.data
    }
}

/// Apply a packed f32 k-qubit gate to blocks `[c0, c1)` with AVX2.
/// Caller must have verified `avx2_available()`.
pub fn apply_avx_f32_range(
    state: &mut [c32],
    exp: &IndexExpander,
    packed: &PackedF32,
    offs: &[usize],
    c0: usize,
    c1: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::avx::avx2_available() {
            // SAFETY: runtime feature check above.
            unsafe { apply_avx_f32_impl(state, exp, packed, offs, c0, c1) };
            return;
        }
    }
    unreachable!("caller must check avx2_available()");
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn apply_avx_f32_impl(
    state: &mut [c32],
    exp: &IndexExpander,
    packed: &PackedF32,
    offs: &[usize],
    c0: usize,
    c1: usize,
) {
    use core::arch::x86_64::*;
    let dim = packed.dim();
    let raw = packed.raw().as_ptr();
    let sp = state.as_mut_ptr() as *mut f32;
    let mut tmp = [0f32; 2 << opt::MAX_K];
    let quads = dim / 4;
    let sweep = quads.min(8);
    for c in c0..c1 {
        let base = exp.expand(c);
        for (x, &off) in offs.iter().enumerate().take(dim) {
            let p = sp.add(2 * (base + off));
            tmp[2 * x] = *p;
            tmp[2 * x + 1] = *p.add(1);
        }
        let mut lq0 = 0usize;
        while lq0 < quads {
            let lqe = (lq0 + sweep).min(quads);
            let mut acc = [_mm256_setzero_ps(); 8];
            for i in 0..dim {
                // Broadcast (vR, vI) into all four complex sub-lanes.
                let v64 = (tmp.as_ptr().add(2 * i) as *const i64).read_unaligned();
                let v = _mm256_castsi256_ps(_mm256_set1_epi64x(v64));
                // (vI, vR) per pair.
                let vswap = _mm256_permute_ps(v, 0b10_11_00_01);
                for (a, lq) in (lq0..lqe).enumerate() {
                    let e = raw.add((lq * dim + i) * 16);
                    let mrr = _mm256_load_ps(e);
                    let mim = _mm256_load_ps(e.add(8));
                    acc[a] = _mm256_fmadd_ps(v, mrr, acc[a]);
                    acc[a] = _mm256_fmadd_ps(vswap, mim, acc[a]);
                }
            }
            for (a, lq) in (lq0..lqe).enumerate() {
                let mut lanes = [0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), acc[a]);
                for r in 0..4 {
                    let off = offs[4 * lq + r];
                    let p = sp.add(2 * (base + off));
                    *p = lanes[2 * r];
                    *p.add(1) = lanes[2 * r + 1];
                }
            }
            lq0 = lqe;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{apply_fma, offsets, prepare};
    use qsim_util::complex::max_dist;
    use qsim_util::Xoshiro256;

    fn random_state32(n: u32, seed: u64) -> Vec<c32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| c32::new(rng.next_f64() as f32 - 0.5, rng.next_f64() as f32 - 0.5))
            .collect()
    }

    fn random_matrix32(k: u32, seed: u64) -> GateMatrix<f32> {
        let d = 1usize << k;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        GateMatrix::from_rows(
            k,
            (0..d * d)
                .map(|_| c32::new(rng.next_f64() as f32 - 0.5, rng.next_f64() as f32 - 0.5))
                .collect(),
        )
    }

    #[test]
    fn f32_avx_matches_scalar_k2_to_k5() {
        if !crate::avx::avx2_available() {
            eprintln!("AVX2 unavailable; skipping");
            return;
        }
        let n = 11;
        for k in 2..=5u32 {
            let m = random_matrix32(k, 300 + k as u64);
            let qubits: Vec<u32> = (0..k).map(|j| (j * 2 + 1) % n).collect();
            let state0 = random_state32(n, 400 + k as u64);
            let mut a = state0.clone();
            let (exp, pm) = prepare(a.len(), &qubits, &m);
            let packed = PackedF32::pack(&pm);
            let offs = offsets(&exp, packed.dim());
            let blocks = a.len() >> packed.k();
            apply_avx_f32_range(&mut a, &exp, &packed, &offs, 0, blocks);
            let mut b = state0;
            apply_fma(&mut b, &qubits, &m);
            assert!(max_dist(&a, &b) < 1e-4, "k={k}: {}", max_dist(&a, &b));
        }
    }

    #[test]
    fn packed_f32_layout_and_alignment() {
        let m = GateMatrix::<f32>::identity(2);
        let p = PackedF32::pack(&m);
        assert_eq!(p.raw().as_ptr() as usize % 32, 0);
        assert_eq!(&p.raw()[0..8], &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_single_qubit() {
        let _ = PackedF32::pack(&GateMatrix::<f32>::identity(1));
    }
}
