//! Quick full-scale scheduler check: swap counts, cluster counts and
//! per-gate communication for the paper's depth-25 circuit sizes — the
//! numbers behind Fig. 5b and Table 1, in one table.
//!
//! ```text
//! cargo run -p qsim-sched --release --example swapcheck
//! ```

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_sched::{global_gate_count, plan, SchedulerConfig};
use std::time::Instant;
fn main() {
    for (r, c, l) in [
        (6u32, 5u32, 29u32),
        (6, 6, 30),
        (7, 6, 30),
        (9, 5, 30),
        (7, 7, 30),
    ] {
        let n = r * c;
        let circ = supremacy_circuit(&SupremacySpec {
            rows: r,
            cols: c,
            depth: 25,
            seed: 0,
        });
        let t0 = Instant::now();
        let s = plan(&circ, &SchedulerConfig::distributed(l.min(n), 4));
        let mut cfg_m = SchedulerConfig::distributed(l.min(n), 4);
        cfg_m.worst_case_dense = false;
        let sm = plan(&circ, &cfg_m);
        let dt = t0.elapsed().as_secs_f64();
        let gg = global_gate_count(&circ, l.min(n), true);
        let ggm = global_gate_count(&circ, l.min(n), false);
        println!("{}x{} n={} l={} swaps(worst/median)={}/{} stages={} clusters={} gates/cluster={:.1} globalgates(worst/median)={}/{} plan_time={:.2}s",
            r, c, n, l.min(n), s.n_swaps(), sm.n_swaps(), s.stages.len(), s.n_clusters(), s.gates_per_cluster(), gg, ggm, dt);
    }
}
