//! Ablation tests for the scheduler's individual optimizations — each of
//! the paper's §3.5–3.6 design choices must pull in its documented
//! direction on real supremacy workloads.

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_circuit::Circuit;
use qsim_sched::{plan, SchedulerConfig};

fn workload(depth: u32) -> Circuit {
    supremacy_circuit(&SupremacySpec {
        rows: 4,
        cols: 5,
        depth,
        seed: 0,
    })
}

#[test]
fn median_mode_never_needs_more_swaps_than_worst_case() {
    // Fewer gates treated dense can only help: the search space of the
    // median mode contains every worst-case plan.
    for depth in [15u32, 25] {
        let c = workload(depth);
        let worst = plan(&c, &SchedulerConfig::distributed(16, 4));
        let mut cfg = SchedulerConfig::distributed(16, 4);
        cfg.worst_case_dense = false;
        let median = plan(&c, &cfg);
        assert!(
            median.n_swaps() <= worst.n_swaps(),
            "depth {depth}: median {} > worst {}",
            median.n_swaps(),
            worst.n_swaps()
        );
    }
}

#[test]
fn more_cluster_trials_never_increase_cluster_count_much() {
    let c = workload(25);
    let mut prev = usize::MAX;
    for trials in [1usize, 2, 8] {
        let mut cfg = SchedulerConfig::distributed(16, 4);
        cfg.cluster_trials = trials;
        let s = plan(&c, &cfg);
        s.verify(&c);
        // Greedy search: more trials should help or be neutral (small
        // slack for seed interactions across stage boundaries).
        assert!(
            s.n_clusters() <= prev.saturating_add(2),
            "trials={trials}: {} clusters after {prev}",
            s.n_clusters()
        );
        prev = prev.min(s.n_clusters());
    }
}

#[test]
fn swap_adjustment_does_not_hurt_cluster_quality() {
    let c = workload(25);
    let with = plan(&c, &SchedulerConfig::distributed(16, 4));
    let mut cfg = SchedulerConfig::distributed(16, 4);
    cfg.adjust_swaps = false;
    let without = plan(&c, &cfg);
    with.verify(&c);
    without.verify(&c);
    assert!(
        with.n_swaps() == without.n_swaps(),
        "adjustment must not change swaps"
    );
    assert!(
        with.gates_per_cluster() >= without.gates_per_cluster() - 0.5,
        "adjustment hurt clustering: {:.2} vs {:.2}",
        with.gates_per_cluster(),
        without.gates_per_cluster()
    );
}

#[test]
fn kmax_sweep_monotonicity_on_brickwork() {
    let c = qsim_circuit::algorithms::brickwork_1d(16, 20, 5);
    let mut prev = usize::MAX;
    for kmax in [2u32, 3, 4, 5] {
        let s = plan(&c, &SchedulerConfig::single_node(16, kmax));
        s.verify(&c);
        assert!(
            s.n_clusters() <= prev,
            "kmax={kmax}: clusters increased ({} after {prev})",
            s.n_clusters()
        );
        prev = s.n_clusters();
    }
}

#[test]
fn diagonal_ops_only_appear_with_specialization() {
    let c = workload(25);
    let with = plan(&c, &SchedulerConfig::distributed(16, 4));
    let mut cfg = SchedulerConfig::distributed(16, 4);
    cfg.specialize_diagonal = false;
    let without = plan(&c, &cfg);
    assert!(with.n_diagonal_ops() > 0, "CZs on globals must specialize");
    assert_eq!(
        without.n_diagonal_ops(),
        0,
        "specialization off must put every gate in clusters"
    );
}

#[test]
fn single_node_plans_have_one_stage() {
    for kmax in [3u32, 5] {
        let c = workload(20);
        let s = plan(&c, &SchedulerConfig::single_node(20, kmax));
        assert_eq!(s.stages.len(), 1);
        assert_eq!(s.n_swaps(), 0);
        assert_eq!(s.n_diagonal_ops(), 0, "every qubit is local");
    }
}
