//! Property tests for the §3.6.2 qubit-mapping heuristic.
//!
//! `mapping_from_clusters` feeds `Circuit::remapped`, which asserts its
//! input is a permutation — but the heuristic itself asserted bijectivity
//! nowhere. These tests pin it down for arbitrary cluster sets: empty
//! clusters, overlapping clusters, qubits absent from every cluster,
//! duplicated clusters and out-of-order membership.

use proptest::prelude::*;
use qsim_sched::mapping::mapping_from_clusters;
use std::collections::HashSet;

fn assert_permutation(map: &[u32], n: u32) {
    assert_eq!(map.len(), n as usize);
    let mut seen = vec![false; n as usize];
    for &m in map {
        assert!(m < n, "mapped position {m} out of range 0..{n}");
        assert!(!seen[m as usize], "position {m} assigned twice");
        seen[m as usize] = true;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary cluster sets over 1..=24 qubits always yield a valid
    /// permutation of 0..n.
    #[test]
    fn mapping_is_always_a_permutation(
        n in 1u32..=24,
        raw in prop::collection::vec(
            prop::collection::vec(0u32..64, 0..6),
            0..12,
        ),
    ) {
        let clusters: Vec<HashSet<u32>> = raw
            .iter()
            .map(|c| c.iter().map(|&q| q % n).collect())
            .collect();
        let map = mapping_from_clusters(&clusters, n);
        assert_permutation(&map, n);
    }

    /// Degenerate inputs: no clusters at all, and every cluster empty.
    #[test]
    fn empty_and_trivial_cluster_sets(n in 1u32..=16, m in 0usize..5) {
        let map = mapping_from_clusters(&[], n);
        assert_permutation(&map, n);
        let empties = vec![HashSet::new(); m];
        let map = mapping_from_clusters(&empties, n);
        assert_permutation(&map, n);
    }

    /// Duplicated clusters (the same set many times) must not double-
    /// assign the same position.
    #[test]
    fn repeated_clusters_stay_bijective(
        n in 2u32..=20,
        reps in 1usize..8,
        members in prop::collection::vec(0u32..64, 1..5),
    ) {
        let set: HashSet<u32> = members.iter().map(|&q| q % n).collect();
        let clusters = vec![set; reps];
        let map = mapping_from_clusters(&clusters, n);
        assert_permutation(&map, n);
    }
}
