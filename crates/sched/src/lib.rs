//! # qsim-sched
//!
//! The circuit-optimization layer of the paper (§3.5–3.6): everything that
//! happens *before* any amplitude is touched, turning a gate list into a
//! communication-minimal execution plan.
//!
//! * [`schedule`] — the plan data model: stages of fused operations
//!   separated by global-to-local swaps, with the logical→physical qubit
//!   mapping tracked per stage.
//! * [`stage`] — stage finding (§3.6.1 step 1): greedy commutation-aware
//!   reordering that maximizes the run of gates executable without
//!   communication, with diagonal-gate specialization on global qubits
//!   (§3.5) and a Belady-style "cheap search" for which qubits to swap.
//! * [`cluster`] — clustering (§3.6.1 step 2): merging runs of 1- and
//!   2-qubit gates into k ≤ kmax fused gates, with a small local search to
//!   maximize gates per cluster, and the step-3 swap-point adjustment.
//! * [`fuse`] — matrix fusion: embedding and multiplying gate matrices
//!   into one 2^k × 2^k cluster matrix.
//! * [`mapping`] — the §3.6.2 qubit-mapping heuristic assigning hot qubits
//!   to low-order bit locations.
//! * [`comm`] — communication statistics: swap counts, per-gate global
//!   gate counts (the comparison baseline of Fig. 5), and byte-volume
//!   models.
//! * [`runs`] — stage-run planning for out-of-core execution: maximal
//!   swap-free runs (one disk traversal each) and stage segmentation for
//!   checkpoint granularity.
//! * [`sweep`] — stage-sweep planning for the cache-tiled executor:
//!   footprint-aware op ordering and grouping of consecutive ops into
//!   single streaming passes.
//! * [`cost`] — the schedule cost model: machine-independent resource
//!   counts ([`PlanResources`]) weighted into modeled seconds by a
//!   per-machine [`CostModel`].
//! * [`search`] — cost-guided schedule search: beam over planner
//!   configurations plus annealing over logical relabelings, with the
//!   greedy plan as a structural floor.
//!
//! The top-level entry point is [`stage::plan`]: circuit + config →
//! [`Schedule`]; [`search::search_plan`] is the optimizing variant.

pub mod cluster;
pub mod comm;
pub mod config;
pub mod cost;
pub mod fuse;
pub mod mapping;
pub mod runs;
pub mod schedule;
pub mod search;
pub mod stage;
pub mod sweep;

pub use comm::{global_gate_count, CommStats};
pub use config::SchedulerConfig;
pub use cost::{plan_resources, CostModel, PlanResources};
pub use runs::{plan_runs, segment_stages, StageRun};
pub use schedule::{Cluster, DiagonalOp, Schedule, Stage, StageOp, SwapOp};
pub use search::{search_plan, SearchConfig, SearchOutcome};
pub use stage::plan;
pub use sweep::{plan_stage_sweeps, SweepPass, SweepPlan};
