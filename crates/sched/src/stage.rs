//! Stage finding — §3.6.1 step 1, the optimization that matters most in
//! the multi-node setting.
//!
//! The scheduler reorders gates (only across different qubits — gates on
//! the same qubit never commute in supremacy circuits) into *stages*: each
//! stage is a maximal run of gates executable without communication under
//! the current logical→physical mapping. A gate is executable when
//!
//! * all its operands sit at local positions, **or**
//! * it is diagonal and §3.5 specialization is on (diagonal gates on
//!   global qubits are rank-conditional phases — free).
//!
//! Stage finding is worst-case by default (§3.6.1): gates drawn from the
//! *random* single-qubit set {T, X^1/2, Y^1/2} are assumed dense even when
//! the draw produced a T, because the authors cannot rely on lucky draws;
//! only each qubit's deterministic second gate (always T by construction)
//! keeps its diagonal specialization.
//!
//! When a stage stalls, ALL global qubits are swapped with local ones
//! (one all-to-all, §3.4). Which local qubits to give up is either the
//! paper's upper-bound choice (the lowest-order locals) or the "cheap
//! search": a Belady-style furthest-next-local-need selection — the qubit
//! whose next gate *requiring locality* lies furthest in the future is the
//! best candidate to park in the global bits.

use crate::cluster::build_stage_ops;
use crate::config::SchedulerConfig;
use crate::schedule::{apply_swap_to_mapping, Schedule, Stage, StageOp, SwapOp};
use qsim_circuit::{Circuit, DependencyTracker, Gate};

/// Plan a circuit: stage finding + clustering + swap adjustment.
pub fn plan(circuit: &Circuit, cfg: &SchedulerConfig) -> Schedule {
    let n = circuit.n_qubits();
    let l = cfg.local_qubits;
    assert!(l >= 1 && l <= n, "local qubits {l} out of range (n={n})");
    assert!(cfg.kmax >= 1, "kmax must be positive");
    if let Some(widest) = circuit.gates().iter().map(|g| g.arity() as u32).max() {
        assert!(
            widest <= l,
            "a {widest}-qubit gate cannot run with only {l} local qubits"
        );
    }
    // Clusters can never exceed the local qubit count.
    let cfg = &SchedulerConfig {
        kmax: cfg.kmax.min(l),
        ..*cfg
    };

    let treat_dense = dense_for_scheduling(circuit, cfg);
    let mapping = initial_mapping(circuit, cfg, &treat_dense);

    // Phase 1: stage finding on raw gate lists. With the cheap search on,
    // a bounded DFS explores the per-stall candidate swaps and keeps the
    // plan with the fewest swaps; otherwise a single greedy pass with the
    // paper's lowest-order-slot swaps.
    let mut raw_stages = if cfg.swap_search {
        let mut search = SwapSearch {
            circuit,
            cfg,
            treat_dense: &treat_dense,
            best: None,
            budget: 4000,
        };
        let tracker = DependencyTracker::new(circuit);
        search.dfs(tracker, mapping.clone(), Vec::new(), 0);
        // The DFS can exhaust its budget on adversarial configurations
        // (e.g. many blocked two-qubit gates with specialization off);
        // the greedy pass always terminates and is the guaranteed
        // fallback.
        search
            .best
            .unwrap_or_else(|| greedy_stages(circuit, cfg, &treat_dense, mapping))
    } else {
        greedy_stages(circuit, cfg, &treat_dense, mapping)
    };
    if raw_stages.is_empty() {
        raw_stages.push((Vec::new(), None, (0..n).collect()));
    }

    // Phase 2: clustering, with §3.6.1-step-3 swap adjustment between
    // consecutive stages.
    let mut stages: Vec<Stage> = Vec::new();
    let mut carried: Vec<usize> = Vec::new();
    for (si, (gates, swap, map)) in raw_stages.iter().enumerate() {
        let mut stage_gates = std::mem::take(&mut carried);
        stage_gates.extend_from_slice(gates);
        let mut ops = build_stage_ops(circuit, &stage_gates, map, cfg);
        if cfg.adjust_swaps {
            if let Some(sw) = swap {
                let moved = pop_movable_suffix(&mut ops, sw, cfg);
                carried = moved;
                // Re-check: gates carried forward keep their physical
                // positions (their slots are disjoint from the swap).
                let _ = si;
            }
        }
        stages.push(Stage {
            mapping: map.clone(),
            ops,
            swap: swap.clone(),
        });
    }
    // Any carry left after the final stage belongs to the final stage.
    if !carried.is_empty() {
        let last = stages.last_mut().unwrap();
        let extra = build_stage_ops(circuit, &carried, &last.mapping.clone(), cfg);
        last.ops.extend(extra);
    }

    Schedule {
        n_qubits: n,
        local_qubits: l,
        kmax: cfg.kmax,
        stages,
    }
}

/// Greedily execute every currently-executable gate; returns them in
/// execution order. Stops at the communication stall point.
fn collect_stage(
    circuit: &Circuit,
    tracker: &mut DependencyTracker,
    mapping: &[u32],
    cfg: &SchedulerConfig,
    treat_dense: &[bool],
) -> Vec<usize> {
    let mut out = Vec::new();
    loop {
        let ready = tracker.ready_gates();
        let mut progressed = false;
        for gi in ready {
            if is_executable(&circuit.gates()[gi], gi, mapping, cfg, treat_dense) {
                tracker.execute(gi);
                out.push(gi);
                progressed = true;
            }
        }
        if !progressed {
            return out;
        }
    }
}

/// Can this gate run under the mapping without communication?
fn is_executable(
    g: &Gate,
    gi: usize,
    mapping: &[u32],
    cfg: &SchedulerConfig,
    treat_dense: &[bool],
) -> bool {
    if !needs_local(g, gi, cfg, treat_dense) {
        return true;
    }
    g.qubits()
        .iter()
        .all(|&q| mapping[q as usize] < cfg.local_qubits)
}

/// Does this gate require all operands local (communication if global)?
fn needs_local(g: &Gate, gi: usize, cfg: &SchedulerConfig, treat_dense: &[bool]) -> bool {
    if treat_dense[gi] {
        return true;
    }
    !(cfg.specialize_diagonal && g.is_diagonal())
}

/// Worst-case density flags (§3.6.1): the first non-H single-qubit gate on
/// each qubit is the deterministic T (kept diagonal); every later gate
/// from the random set {T, X^1/2, Y^1/2} is assumed dense. X^1/2 and
/// Y^1/2 are dense anyway, so only later T/T† gates are upgraded.
pub(crate) fn dense_for_scheduling(circuit: &Circuit, cfg: &SchedulerConfig) -> Vec<bool> {
    let n = circuit.n_qubits() as usize;
    let mut first_non_h_seen = vec![false; n];
    let mut out = Vec::with_capacity(circuit.len());
    for g in circuit.gates() {
        let mut dense = g.is_dense() || g.is_permutation();
        // Permutation gates (X, CNOT, SWAP) are executed as dense kernels
        // by this implementation, so they require locality. (Rank
        // renumbering is a possible future specialization, §3.5.)
        if cfg.worst_case_dense {
            if let Gate::T(q) | Gate::Tdg(q) = *g {
                if first_non_h_seen[q as usize] {
                    dense = true;
                }
            }
        }
        if g.arity() == 1 && !matches!(g, Gate::H(_)) {
            let q = g.qubits()[0] as usize;
            first_non_h_seen[q] = true;
        }
        out.push(dense);
    }
    out
}

/// How far does a stage get under `mapping`? Returns (gates executed,
/// circuit finished). Runs on a clone of the tracker — the core of the
/// "cheap search" (§3.6.1): candidate swap targets are scored by actually
/// simulating the stage they enable.
fn simulate_stage(
    circuit: &Circuit,
    tracker: &DependencyTracker,
    mapping: &[u32],
    cfg: &SchedulerConfig,
    treat_dense: &[bool],
) -> (usize, bool) {
    let mut t = tracker.clone();
    let gates = collect_stage(circuit, &mut t, mapping, cfg, treat_dense);
    (gates.len(), t.is_done())
}

/// Initial logical→physical mapping. With the cheap search enabled,
/// several candidate global sets are scored by simulating the first
/// stage; otherwise identity.
fn initial_mapping(circuit: &Circuit, cfg: &SchedulerConfig, treat_dense: &[bool]) -> Vec<u32> {
    let n = circuit.n_qubits();
    let l = cfg.local_qubits;
    let g = n - l;

    if g == 0 || !cfg.swap_search {
        return (0..n).collect();
    }
    // First local-requiring gate index per qubit (usize::MAX if none).
    let mut first_need = vec![usize::MAX; n as usize];
    for (gi, gate) in circuit.gates().iter().enumerate() {
        if needs_local(gate, gi, cfg, treat_dense) {
            for q in gate.qubits() {
                if first_need[q as usize] == usize::MAX {
                    first_need[q as usize] = gi;
                }
            }
        }
    }
    let tracker = DependencyTracker::new(circuit);
    let candidates = [
        build_mapping_from_scores(&first_need, n, l),
        // Contiguity candidates: high/low qubit blocks are spatially
        // clustered on grid workloads, which delays blocking percolation.
        (0..n).collect::<Vec<u32>>(),
        (0..n).map(|q| (q + g) % n).collect::<Vec<u32>>(),
    ];
    candidates
        .into_iter()
        .max_by_key(|m| simulate_stage(circuit, &tracker, m, cfg, treat_dense).0)
        .unwrap()
}

/// One greedy stage-finding pass with the paper's upper-bound swap
/// choice (all globals ↔ lowest-order locals).
type RawStage = (Vec<usize>, Option<SwapOp>, Vec<u32>);

fn greedy_stages(
    circuit: &Circuit,
    cfg: &SchedulerConfig,
    treat_dense: &[bool],
    mut mapping: Vec<u32>,
) -> Vec<RawStage> {
    let n = circuit.n_qubits();
    let l = cfg.local_qubits;
    let g = n - l;

    let mut tracker = DependencyTracker::new(circuit);
    let mut out: Vec<RawStage> = Vec::new();
    let mut stalls = 0usize;
    while !tracker.is_done() {
        let stage_gates = collect_stage(circuit, &mut tracker, &mapping, cfg, treat_dense);
        if tracker.is_done() {
            out.push((stage_gates, None, mapping.clone()));
            break;
        }
        if stage_gates.is_empty() {
            stalls += 1;
            assert!(
                stalls < 6,
                "scheduler livelock: swaps do not unblock the frontier"
            );
        } else {
            stalls = 0;
        }
        // Alternate protection/eviction on consecutive stalls: the
        // eviction swap is step one of the two-swap juggle for blocked
        // wide gates (see basic_swap).
        let swap = basic_swap(
            circuit,
            &tracker,
            &mapping,
            cfg,
            treat_dense,
            stalls % 2 == 1,
        );
        let next = apply_swap_to_mapping(&mapping, &swap, l, g);
        out.push((stage_gates, Some(swap), mapping.clone()));
        mapping = next;
    }
    out
}

/// Local positions holding qubits of currently-blocked frontier gates:
/// evicting them to global space cannot help and (for blocked two-qubit
/// gates) can livelock the swap loop, so the slot choosers avoid them.
fn protected_positions(
    circuit: &Circuit,
    tracker: &DependencyTracker,
    mapping: &[u32],
    cfg: &SchedulerConfig,
    treat_dense: &[bool],
) -> Vec<bool> {
    let l = cfg.local_qubits;
    let mut out = vec![false; l as usize];
    for gi in tracker.ready_gates() {
        let gate = &circuit.gates()[gi];
        if !is_executable(gate, gi, mapping, cfg, treat_dense) {
            for q in gate.qubits() {
                let p = mapping[q as usize];
                if p < l {
                    out[p as usize] = true;
                }
            }
        }
    }
    out
}

/// The paper's upper-bound swap (all globals ↔ lowest-order locals),
/// skipping slots whose qubits a blocked frontier gate needs local.
///
/// `evict`: invert the protection — *prefer* evicting the blocked gates'
/// local operands. This is the first half of the two-swap juggle needed
/// when a blocked wide gate has more local operands than can survive a
/// full swap (survivors = l − g): park ALL its operands in the global
/// bits, then the next full swap brings them in together.
fn basic_swap(
    circuit: &Circuit,
    tracker: &DependencyTracker,
    mapping: &[u32],
    cfg: &SchedulerConfig,
    treat_dense: &[bool],
    evict: bool,
) -> SwapOp {
    let l = cfg.local_qubits;
    let g = circuit.n_qubits() - l;
    let protected = protected_positions(circuit, tracker, mapping, cfg, treat_dense);
    let prefer = |p: &u32| -> bool {
        let is_protected = protected[*p as usize];
        if evict {
            is_protected
        } else {
            !is_protected
        }
    };
    let mut slots: Vec<u32> = (0..l).filter(prefer).collect();
    if (slots.len() as u32) < g {
        slots.extend((0..l).filter(|p| !prefer(p)));
    }
    slots.truncate(g as usize);
    slots.sort_unstable();
    SwapOp { local_slots: slots }
}

/// Bounded DFS over candidate swaps, minimizing the number of swaps
/// (ties: more is not explored further once the bound is hit). The search
/// is the full-strength version of the paper's "cheap search algorithm to
/// find better local qubits to swap with"; `budget` caps explored nodes
/// so planning stays in the paper's 1–3 second regime.
struct SwapSearch<'a> {
    circuit: &'a Circuit,
    cfg: &'a SchedulerConfig,
    treat_dense: &'a [bool],
    best: Option<Vec<RawStage>>,
    budget: usize,
}

impl SwapSearch<'_> {
    fn dfs(
        &mut self,
        mut tracker: DependencyTracker,
        mapping: Vec<u32>,
        mut acc: Vec<RawStage>,
        empty_streak: usize,
    ) {
        if self.budget == 0 || empty_streak >= 2 {
            // Two consecutive stages without progress: this branch is
            // thrashing (e.g. blocked multi-qubit gates ping-ponging
            // between global sets) — abandon it; the greedy fallback in
            // `plan` guarantees completeness.
            return;
        }
        self.budget -= 1;
        // Prune: already as many swaps as the best complete plan.
        if let Some(best) = &self.best {
            let best_swaps = best.iter().filter(|s| s.1.is_some()).count();
            if acc.len() >= best_swaps {
                return;
            }
        }
        let stage_gates = collect_stage(
            self.circuit,
            &mut tracker,
            &mapping,
            self.cfg,
            self.treat_dense,
        );
        if tracker.is_done() {
            acc.push((stage_gates, None, mapping));
            let swaps = acc.iter().filter(|s| s.1.is_some()).count();
            let better = match &self.best {
                None => true,
                Some(b) => swaps < b.iter().filter(|s| s.1.is_some()).count(),
            };
            if better {
                self.best = Some(acc);
            }
            return;
        }
        // Guard against livelock: a swap must change the mapping.
        let l = self.cfg.local_qubits;
        let g = self.circuit.n_qubits() - l;
        let swaps = candidate_swaps(self.circuit, &tracker, &mapping, self.cfg, self.treat_dense);
        for swap in swaps {
            let next = apply_swap_to_mapping(&mapping, &swap, l, g);
            if next == mapping && stage_gates.is_empty() {
                continue; // no progress possible down this branch
            }
            let mut acc2 = acc.clone();
            acc2.push((stage_gates.clone(), Some(swap), mapping.clone()));
            let streak = if stage_gates.is_empty() {
                empty_streak + 1
            } else {
                0
            };
            self.dfs(tracker.clone(), next, acc2, streak);
        }
    }
}

/// Candidate swaps at a stall point, deduplicated.
fn candidate_swaps(
    circuit: &Circuit,
    tracker: &DependencyTracker,
    mapping: &[u32],
    cfg: &SchedulerConfig,
    treat_dense: &[bool],
) -> Vec<SwapOp> {
    let n = circuit.n_qubits();
    let l = cfg.local_qubits;
    let g = n - l;

    debug_assert!(g > 0, "no swap possible without global qubits");
    // Candidate scores, each turned into a candidate global set:
    // (a) Belady — next local-requiring gate per qubit, furthest first;
    // (b) nearly-finished — fewest remaining local-requiring gates (the
    //     right choice before a potential final stage);
    // (c) the paper's upper bound — lowest-order local slots.
    let mut next_need = vec![usize::MAX; n as usize];
    let mut remaining_need = vec![0usize; n as usize];
    // A second score set under the opposite worst-case flag, giving the
    // search candidate diversity: the worst-case plan is always legal
    // under median rules, so its swap targets are worth trying there too
    // (and vice versa).
    let mut alt_cfg = *cfg;
    alt_cfg.worst_case_dense = !cfg.worst_case_dense;
    let alt_dense = dense_for_scheduling(circuit, &alt_cfg);
    let mut next_need_strict = vec![usize::MAX; n as usize];
    let mut remaining_strict = vec![0usize; n as usize];
    for gi in 0..circuit.len() {
        if tracker.is_executed(gi) {
            continue;
        }
        let gate = &circuit.gates()[gi];
        if needs_local(gate, gi, cfg, treat_dense) {
            for q in gate.qubits() {
                if next_need[q as usize] == usize::MAX {
                    next_need[q as usize] = gi;
                }
                remaining_need[q as usize] += 1;
            }
        }
        if needs_local(gate, gi, &alt_cfg, &alt_dense) {
            for q in gate.qubits() {
                if next_need_strict[q as usize] == usize::MAX {
                    next_need_strict[q as usize] = gi;
                }
                remaining_strict[q as usize] += 1;
            }
        }
    }
    // Qubits involved in currently blocked frontier gates must come (or
    // stay) local: force their scores to "needed immediately".
    for gi in tracker.ready_gates() {
        let gate = &circuit.gates()[gi];
        if !is_executable(gate, gi, mapping, cfg, treat_dense) {
            for q in gate.qubits() {
                next_need[q as usize] = 0;
                remaining_need[q as usize] = usize::MAX;
                next_need_strict[q as usize] = 0;
                remaining_strict[q as usize] = usize::MAX;
            }
        }
    }
    // Nearly-finished score: invert remaining counts (fewer = better
    // global candidate = larger score).
    let max_rem = circuit.len() + 1;
    let invert =
        |v: &[usize]| -> Vec<usize> { v.iter().map(|&r| max_rem.saturating_sub(r)).collect() };
    let mut candidates: Vec<Vec<u32>> = vec![
        build_mapping_from_scores(&next_need, n, l),
        build_mapping_from_scores(&invert(&remaining_need), n, l),
        build_mapping_from_scores(&next_need_strict, n, l),
        build_mapping_from_scores(&invert(&remaining_strict), n, l),
    ];
    // (c) the basic lowest-order slot swap relative to the current map
    // (with blocked-frontier qubits protected from eviction), and
    // (d) its eviction twin — step one of the two-swap juggle for
    // blocked gates too wide to satisfy in one swap.
    for evict in [false, true] {
        candidates.push(apply_swap_to_mapping(
            mapping,
            &basic_swap(circuit, tracker, mapping, cfg, treat_dense, evict),
            l,
            g,
        ));
    }
    // Order candidates best-first by simulated next-stage progress so the
    // DFS finds a good plan early (tightening its pruning bound).
    let mut scored: Vec<(usize, usize, Vec<u32>)> = candidates
        .into_iter()
        .map(|m| {
            let (gates, done) = simulate_stage(circuit, tracker, &m, cfg, treat_dense);
            (done as usize, gates, m)
        })
        .collect();
    scored.sort_by_key(|s| (std::cmp::Reverse(s.0), std::cmp::Reverse(s.1)));
    let mut out: Vec<SwapOp> = Vec::new();
    for (_, _, target) in scored {
        let swap = mapping_pair_to_swap(mapping, &target, l, g);
        if !out.contains(&swap) {
            out.push(swap);
        }
    }
    out
}

/// Convert (current mapping, target mapping) into a full SwapOp: the new
/// globals that are currently local vacate their slots; current globals
/// fill them. Full swaps move ALL globals in, so when the target would
/// keep a qubit global it is still cycled through a local slot (padded
/// with the lowest-order free local positions).
fn mapping_pair_to_swap(mapping: &[u32], target: &[u32], l: u32, g: u32) -> SwapOp {
    let n = mapping.len() as u32;
    let mut slots: Vec<u32> = (0..n)
        .filter(|&q| target[q as usize] >= l && mapping[q as usize] < l)
        .map(|q| mapping[q as usize])
        .collect();
    slots.sort_unstable();
    let mut extra = 0u32;
    while (slots.len() as u32) < g {
        // Pad with unused low-order local positions.
        while slots.contains(&extra) {
            extra += 1;
        }
        slots.push(extra);
        slots.sort_unstable();
        extra += 1;
    }
    slots.truncate(g as usize);
    SwapOp { local_slots: slots }
}

/// Shared helper: given per-qubit scores (higher = better global
/// candidate), build a mapping with the top-g qubits at global positions
/// and everything else local, preserving relative order.
fn build_mapping_from_scores(score: &[usize], n: u32, l: u32) -> Vec<u32> {
    let g = (n - l) as usize;
    let mut order: Vec<u32> = (0..n).collect();
    // Stable: later-needed qubits first; ties by qubit id.
    order.sort_by_key(|&q| (std::cmp::Reverse(score[q as usize]), q));
    let global_set: std::collections::HashSet<u32> = order[..g].iter().copied().collect();
    let mut mapping = vec![0u32; n as usize];
    let mut next_local = 0u32;
    let mut next_global = l;
    for q in 0..n {
        if global_set.contains(&q) {
            mapping[q as usize] = next_global;
            next_global += 1;
        } else {
            mapping[q as usize] = next_local;
            next_local += 1;
        }
    }
    mapping
}

/// Pop the suffix of underfull, swap-disjoint clusters for §3.6.1 step 3.
/// Returns their gate indices in order (to prepend to the next stage).
fn pop_movable_suffix(ops: &mut Vec<StageOp>, swap: &SwapOp, cfg: &SchedulerConfig) -> Vec<usize> {
    let mut moved: Vec<Vec<usize>> = Vec::new();
    while let Some(StageOp::Cluster(c)) = ops.last() {
        let underfull = c.gate_indices.len() < cfg.kmax as usize;
        let disjoint = c.qubits.iter().all(|q| !swap.local_slots.contains(q));
        if underfull && disjoint {
            if let Some(StageOp::Cluster(c)) = ops.pop() {
                moved.push(c.gate_indices);
            }
        } else {
            break;
        }
    }
    moved.reverse();
    moved.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    fn spec(rows: u32, cols: u32, depth: u32) -> Circuit {
        supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth,
            seed: 0,
        })
    }

    #[test]
    fn single_node_plan_has_no_swaps() {
        let c = spec(3, 3, 12);
        let cfg = SchedulerConfig::single_node(9, 4);
        let s = plan(&c, &cfg);
        assert_eq!(s.n_swaps(), 0);
        assert_eq!(s.stages.len(), 1);
        s.verify(&c);
    }

    #[test]
    fn distributed_plan_verifies_and_swaps_bounded() {
        let c = spec(4, 4, 16);
        for l in [12u32, 13, 14] {
            let cfg = SchedulerConfig::distributed(l, 4);
            let s = plan(&c, &cfg);
            s.verify(&c);
            assert!(s.n_swaps() >= 1, "l={l} should need communication");
            assert!(s.n_swaps() <= 6, "l={l}: {} swaps is too many", s.n_swaps());
        }
    }

    #[test]
    fn specialization_reduces_or_equals_swaps() {
        let c = spec(4, 4, 16);
        let on = plan(&c, &SchedulerConfig::distributed(12, 4));
        let mut cfg_off = SchedulerConfig::distributed(12, 4);
        cfg_off.specialize_diagonal = false;
        let off = plan(&c, &cfg_off);
        on.verify(&c);
        off.verify(&c);
        assert!(
            on.n_swaps() <= off.n_swaps(),
            "specialization must not increase swaps: {} vs {}",
            on.n_swaps(),
            off.n_swaps()
        );
    }

    #[test]
    fn swap_search_reduces_or_equals_swaps() {
        let c = spec(4, 4, 24);
        let mut cfg_basic = SchedulerConfig::distributed(12, 4);
        cfg_basic.swap_search = false;
        let basic = plan(&c, &cfg_basic);
        let searched = plan(&c, &SchedulerConfig::distributed(12, 4));
        basic.verify(&c);
        searched.verify(&c);
        assert!(searched.n_swaps() <= basic.n_swaps());
    }

    #[test]
    fn all_gates_scheduled_exactly_once() {
        let c = spec(3, 4, 20);
        let cfg = SchedulerConfig::distributed(9, 3);
        let s = plan(&c, &cfg);
        let mut seen = vec![false; c.len()];
        for stage in &s.stages {
            for op in &stage.ops {
                for &gi in op.gate_indices() {
                    assert!(!seen[gi], "gate {gi} scheduled twice");
                    seen[gi] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn worst_case_dense_flags() {
        // H dense; first T diagonal; subsequent T dense under worst case.
        let mut c = Circuit::new(1);
        c.h(0).t(0).sqrt_x(0).t(0);
        let cfg = SchedulerConfig::distributed(1, 1);
        let d = dense_for_scheduling(&c, &cfg);
        assert_eq!(d, vec![true, false, true, true]);
        let mut cfg2 = cfg;
        cfg2.worst_case_dense = false;
        let d2 = dense_for_scheduling(&c, &cfg2);
        assert_eq!(d2, vec![true, false, true, false]);
    }

    #[test]
    fn mapping_from_scores_puts_late_needs_global() {
        let score = vec![5usize, 100, 1, 50];
        let m = build_mapping_from_scores(&score, 4, 2);
        // Qubits 1 and 3 have the latest needs -> global (positions 2, 3).
        assert!(m[1] >= 2 && m[3] >= 2);
        assert!(m[0] < 2 && m[2] < 2);
    }

    #[test]
    fn fig5_shape_more_depth_not_fewer_swaps() {
        // Swap counts must be monotone (within noise) in circuit depth.
        let mut prev = 0usize;
        for depth in [8u32, 16, 32] {
            let c = spec(4, 4, depth);
            let s = plan(&c, &SchedulerConfig::distributed(12, 4));
            s.verify(&c);
            assert!(
                s.n_swaps() + 1 >= prev,
                "depth {depth}: swaps dropped sharply"
            );
            prev = s.n_swaps();
        }
    }
}
