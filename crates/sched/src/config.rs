//! Scheduler configuration.

/// Knobs of the §3.5–3.6 optimization pipeline. Every flag corresponds to
/// one of the paper's named optimizations so the benches can ablate them
/// individually.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Number of local qubits l; the remaining `n − l` are global (rank)
    /// bits. `l == n` plans a single-node execution with no swaps.
    pub local_qubits: u32,
    /// Largest fused-cluster size (§3.6.1 step 2). The paper evaluates
    /// kmax ∈ {3, 4, 5} (Table 1).
    pub kmax: u32,
    /// §3.5 gate specialization: diagonal gates (CZ, T, Rz, …) on global
    /// qubits execute without communication. Disabling forces every gate
    /// onto local qubits — the ablation for "3 swaps instead of 2".
    pub specialize_diagonal: bool,
    /// Worst-case stage finding (§3.6.1): *randomly drawn* single-qubit
    /// gates are assumed dense even if the instance happened to draw a T.
    /// The deterministic second-gate T is still diagonal. This matches the
    /// paper's swap counts; disabling uses the instance's actual gates.
    pub worst_case_dense: bool,
    /// The "cheap search" for better swap targets (§3.6.1 step 1):
    /// Belady-style furthest-next-dense-use selection of which qubits
    /// become global. Disabled = always swap all globals with the
    /// lowest-order local qubits (the paper's upper-bound strategy).
    pub swap_search: bool,
    /// §3.6.1 step 3: move trailing underfull clusters across the next
    /// swap when their qubits stay local, to raise gates/cluster.
    pub adjust_swaps: bool,
    /// Number of clustering seed trials in the "small local search"
    /// (§3.6.1 step 2); 1 = pure greedy.
    pub cluster_trials: usize,
    /// Reorder each stage's op list by qubit footprint so consecutive
    /// clusters share tile bits — feeds the cache-tiled sweep executor
    /// (more ops per streaming pass). Dependency-safe: only ops on
    /// disjoint position sets are commuted.
    pub sweep_order: bool,
}

impl SchedulerConfig {
    /// Paper-faithful defaults for a distributed run with `l` local
    /// qubits.
    pub fn distributed(local_qubits: u32, kmax: u32) -> Self {
        Self {
            local_qubits,
            kmax,
            specialize_diagonal: true,
            worst_case_dense: true,
            swap_search: true,
            adjust_swaps: true,
            cluster_trials: 4,
            sweep_order: true,
        }
    }

    /// Single-node plan: every qubit local, clustering only.
    pub fn single_node(n_qubits: u32, kmax: u32) -> Self {
        Self::distributed(n_qubits, kmax)
    }

    /// The unoptimized upper-bound configuration (no search, no
    /// specialization, no adjustment) — the ablation baseline.
    pub fn naive(local_qubits: u32, kmax: u32) -> Self {
        Self {
            local_qubits,
            kmax,
            specialize_diagonal: false,
            worst_case_dense: true,
            swap_search: false,
            adjust_swaps: false,
            cluster_trials: 1,
            sweep_order: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_as_documented() {
        let d = SchedulerConfig::distributed(30, 4);
        assert!(d.specialize_diagonal && d.swap_search && d.adjust_swaps);
        assert_eq!(d.kmax, 4);
        assert!(d.sweep_order);
        let n = SchedulerConfig::naive(30, 4);
        assert!(!n.specialize_diagonal && !n.swap_search && !n.adjust_swaps);
        assert!(!n.sweep_order);
        let s = SchedulerConfig::single_node(20, 5);
        assert_eq!(s.local_qubits, 20);
    }
}
