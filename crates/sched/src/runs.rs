//! Stage-run planning for out-of-core execution.
//!
//! A disk-resident state pays one full-state traversal per streaming
//! pass, so the relevant batching unit is not the [`Stage`] but the
//! *run*: a maximal sequence of consecutive swap-free stages. Every op
//! of a run executes under the same logical→physical mapping, so a
//! chunk loaded once can absorb the whole run before writeback —
//! traversals drop from one per stage to one per swap boundary
//! (`runs == n_swaps() + 1`).
//!
//! [`segment_stages`] is the inverse knob: it splits each stage's op
//! list into several swap-free stages sharing the mapping (the swap
//! stays on the last segment). Out-of-core deployments want fine-grained
//! stages for checkpoint/restart — a petascale traversal is hours of
//! wall-clock, and a crash mid-stage must not lose the whole stage —
//! and [`plan_runs`] makes the traversal count independent of that
//! granularity.

use crate::schedule::{Schedule, Stage, SwapOp};
use std::ops::Range;

/// A maximal swap-free sequence of consecutive stages, closed by the
/// swap of its last stage (`None` only for the final run).
#[derive(Clone, Debug)]
pub struct StageRun {
    /// Index range into `schedule.stages`; never empty.
    pub stages: Range<usize>,
    /// The swap executed after the run (the last stage's swap).
    pub swap: Option<SwapOp>,
}

impl StageRun {
    /// Number of stages batched into this run.
    pub fn len(&self) -> usize {
        self.stages.end - self.stages.start
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// Group consecutive swap-free stages into maximal runs. For any
/// schedule this yields exactly `n_swaps() + 1` runs, except that a
/// schedule whose *final* stage carries a swap yields `n_swaps()` runs.
pub fn plan_runs(schedule: &Schedule) -> Vec<StageRun> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    for (i, stage) in schedule.stages.iter().enumerate() {
        let last = i + 1 == schedule.stages.len();
        if stage.swap.is_some() || last {
            runs.push(StageRun {
                stages: start..i + 1,
                swap: stage.swap.clone(),
            });
            start = i + 1;
        }
    }
    runs
}

/// Split every stage with more than `max_ops` ops into consecutive
/// swap-free segments of at most `max_ops` ops each, all sharing the
/// parent stage's mapping; the parent's swap moves to the last segment.
/// The result verifies against the same circuit and is bit-identical in
/// effect (op order is preserved exactly).
pub fn segment_stages(schedule: &Schedule, max_ops: usize) -> Schedule {
    assert!(max_ops >= 1, "segment size must be at least one op");
    let mut stages = Vec::with_capacity(schedule.stages.len());
    for stage in &schedule.stages {
        if stage.ops.len() <= max_ops {
            stages.push(stage.clone());
            continue;
        }
        let n_segments = stage.ops.len().div_ceil(max_ops);
        for (i, ops) in stage.ops.chunks(max_ops).enumerate() {
            stages.push(Stage {
                mapping: stage.mapping.clone(),
                ops: ops.to_vec(),
                swap: if i + 1 == n_segments {
                    stage.swap.clone()
                } else {
                    None
                },
            });
        }
    }
    Schedule {
        n_qubits: schedule.n_qubits,
        local_qubits: schedule.local_qubits,
        kmax: schedule.kmax,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use crate::stage::plan;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    fn sample_schedule() -> (qsim_circuit::Circuit, Schedule) {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 2,
            cols: 4,
            depth: 20,
            seed: 3,
        });
        let schedule = plan(&c, &SchedulerConfig::distributed(6, 4));
        schedule.verify(&c);
        (c, schedule)
    }

    #[test]
    fn runs_equal_swap_boundaries_plus_one() {
        let (_, schedule) = sample_schedule();
        assert!(schedule.n_swaps() > 0, "want a multi-swap sample");
        let runs = plan_runs(&schedule);
        assert_eq!(runs.len(), schedule.n_swaps() + 1);
        // Runs tile the stage list exactly.
        let mut next = 0usize;
        for run in &runs {
            assert_eq!(run.stages.start, next);
            assert!(!run.is_empty());
            next = run.stages.end;
            // Interior runs end in their swap; only the final run is open.
            let last_stage = &schedule.stages[run.stages.end - 1];
            assert_eq!(last_stage.swap, run.swap);
        }
        assert_eq!(next, schedule.stages.len());
    }

    #[test]
    fn segmentation_preserves_ops_and_swaps() {
        let (c, schedule) = sample_schedule();
        for max_ops in [1usize, 2, 3] {
            let seg = segment_stages(&schedule, max_ops);
            seg.verify(&c); // same circuit, same order, legal plan
            assert_eq!(seg.n_swaps(), schedule.n_swaps());
            assert!(seg.stages.len() >= schedule.stages.len());
            assert!(seg.stages.iter().all(|s| s.ops.len() <= max_ops));
            // Batching undoes segmentation: run count is granularity-
            // independent.
            assert_eq!(plan_runs(&seg).len(), plan_runs(&schedule).len());
            // Per-run op streams are identical.
            let flat = |s: &Schedule| -> Vec<usize> {
                s.stages
                    .iter()
                    .flat_map(|st| st.ops.iter().flat_map(|op| op.gate_indices().to_vec()))
                    .collect()
            };
            assert_eq!(flat(&seg), flat(&schedule));
        }
    }

    #[test]
    fn single_stage_schedule_is_one_run() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 2,
            cols: 2,
            depth: 8,
            seed: 0,
        });
        let schedule = plan(&c, &SchedulerConfig::single_node(4, 2));
        let runs = plan_runs(&schedule);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].stages, 0..schedule.stages.len());
        assert!(runs[0].swap.is_none());
    }
}
