//! Cost model for schedule search.
//!
//! The planner's greedy heuristics minimize swap *count*; the search
//! layer ([`crate::search`]) needs a single scalar that also weighs the
//! quantities a swap count cannot see — streaming passes of the tiled
//! executor and disk traversals of the out-of-core engine — so that
//! trading one resource for another is a principled decision instead of
//! a tie-break. [`PlanResources`] extracts the machine-independent
//! counts from a schedule (swap bytes via [`CommStats`], stage passes
//! and streamed bytes via the sweep planner, traversal count via
//! [`plan_runs`]); [`CostModel`] converts them to modeled seconds with
//! per-machine weights, either analytic defaults or calibrated from a
//! short memory-bandwidth probe.
//!
//! The model does not need to be *accurate* — only *monotone enough*
//! that ranking candidate plans by modeled seconds ranks them by real
//! cost. All weights are therefore simple bandwidth reciprocals plus
//! fixed per-pass overheads.

use crate::comm::CommStats;
use crate::runs::plan_runs;
use crate::schedule::Schedule;
use crate::sweep::{plan_stage_sweeps, DEFAULT_TILE_QUBITS};

/// Machine-independent resource counts of one schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanResources {
    /// Global-to-local swaps (the Fig. 5 metric).
    pub n_swaps: usize,
    /// Bytes through the slow tier per swap × swap count.
    pub swap_bytes: u64,
    /// Streaming passes of the tiled executor, summed over stages.
    pub stage_passes: usize,
    /// Bytes streamed through memory by those passes (passes × state
    /// bytes — every pass touches the whole register once).
    pub streamed_bytes: u64,
    /// Full-state traversals of the out-of-core engine
    /// (`plan_runs().len()`).
    pub ooc_runs: usize,
    /// Dense kernel flops: Σ over clusters of `8 · 2^k · 2^n` — the term
    /// that keeps `kmax` a genuine trade-off (a bigger cluster saves a
    /// pass but squares its matrix work).
    pub cluster_flops: u64,
    /// The same flops binned by cluster width (`flops_by_k[k]`, k ≥ 8
    /// folded into the last bin). Kernel efficiency is strongly
    /// k-dependent — small-k kernels are overhead-bound, so a plan with
    /// fewer *raw* flops in k=3 clusters can be slower than one with
    /// more flops in k=4 clusters; the per-k weights of [`CostModel`]
    /// capture that.
    pub flops_by_k: [u64; MAX_COST_K + 1],
}

/// Largest cluster width with its own flop-weight bin; wider clusters
/// (possible only via the single-wide-gate exception) share the top bin.
pub const MAX_COST_K: usize = 7;

/// Extract the resource counts of `schedule`. `amp_bytes` is 16 for f64
/// amplitudes, 8 for f32; `tile_qubits` is the tile budget the pass
/// counts are modeled under (use [`DEFAULT_TILE_QUBITS`] when the
/// measured tile size is not known yet — ranking is insensitive to the
/// exact budget).
pub fn plan_resources(schedule: &Schedule, amp_bytes: u64, tile_qubits: u32) -> PlanResources {
    let n = schedule.n_qubits;
    let l = schedule.local_qubits;
    let n_swaps = schedule.n_swaps();
    let swap_bytes = if l < n {
        CommStats::new(n, l, 0, n_swaps, amp_bytes).scheduled_bytes()
    } else {
        0
    };
    let stage_passes: usize = schedule
        .stages
        .iter()
        .map(|s| plan_stage_sweeps(&s.ops, l, tile_qubits).passes.len())
        .sum();
    let mut cluster_flops = 0u64;
    let mut flops_by_k = [0u64; MAX_COST_K + 1];
    for stage in &schedule.stages {
        for op in &stage.ops {
            if let crate::schedule::StageOp::Cluster(c) = op {
                let f = 8u64 << (c.qubits.len() as u32 + n);
                cluster_flops += f;
                flops_by_k[c.qubits.len().min(MAX_COST_K)] += f;
            }
        }
    }
    let state_bytes = (1u64 << n) * amp_bytes;
    PlanResources {
        n_swaps,
        swap_bytes,
        stage_passes,
        // Each pass reads and writes the full register once.
        streamed_bytes: 2 * state_bytes * stage_passes as u64,
        ooc_runs: plan_runs(schedule).len(),
        cluster_flops,
        flops_by_k,
    }
}

/// Per-machine weights converting [`PlanResources`] to modeled seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Seconds per byte crossing the slow tier (network all-to-all or
    /// disk) during a full swap.
    pub swap_byte_seconds: f64,
    /// Seconds per byte streamed through memory by a compute pass.
    pub stream_byte_seconds: f64,
    /// Fixed overhead per streaming pass (tile scheduling, barriers).
    pub pass_seconds: f64,
    /// Fixed overhead per out-of-core traversal (handle churn, seeks).
    pub run_seconds: f64,
    /// Seconds per dense kernel flop, per cluster width k (reciprocal
    /// effective GFLOPS of the k-qubit kernel). Small-k kernels pay more
    /// per flop (overhead-bound), so this table is what stops the model
    /// from preferring "fewer raw flops in smaller clusters" when the
    /// real machine disagrees. Calibrate from a measured kernel ladder
    /// (e.g. `autotune` GFLOPS) when available.
    pub flop_seconds_by_k: [f64; MAX_COST_K + 1],
}

impl CostModel {
    /// Analytic defaults: 10 GB/s effective memory streaming, slow tier
    /// 4× slower than memory (the in-process fabric is a memcpy; a real
    /// network or SSD is slower still — the ratio only has to preserve
    /// the ordering "a swap is more expensive than a pass").
    pub fn analytic() -> Self {
        let stream = 1.0 / 10e9;
        // Relative per-flop cost by cluster width, shaped like a measured
        // fused-kernel ladder (Fig. 2/7): k ≤ 2 is overhead/bandwidth
        // bound (expensive per flop), k = 4–5 is the sweet spot, very
        // wide kernels start spilling registers. Absolute scale is the
        // same 10 GFLOPS as streaming; only the shape matters for
        // ranking.
        let shape = [4.0, 4.0, 2.0, 1.4, 1.0, 0.95, 1.05, 1.25];
        Self {
            swap_byte_seconds: 4.0 * stream,
            stream_byte_seconds: stream,
            pass_seconds: 50e-6,
            run_seconds: 500e-6,
            flop_seconds_by_k: shape.map(|s| s / 10e9),
        }
    }

    /// Replace the per-k flop weights with a measured kernel ladder:
    /// `gflops_by_k[i]` is the effective GFLOPS of the (i+1)-qubit
    /// kernel (the `autotune` convention). Widths beyond the ladder
    /// extrapolate from the last measured point with a mild 10%/qubit
    /// penalty; non-finite or non-positive entries fall back the same
    /// way.
    ///
    /// The measured *shape* (each weight relative to the k=4 sweet
    /// spot) is clamped to within 1.1× of the analytic shape: search
    /// decisions hinge on per-flop ratios between *adjacent* k, where
    /// the true machine-to-machine spread is small but the rung-to-rung
    /// noise of a quick probe on a loaded host is not — at 1.5× a noisy
    /// k=5 rung could price kmax 5 below kmax 4 and flip a correction
    /// the ground-truth A/B confirms. The ladder therefore sets the
    /// absolute scale (via the k=4 pivot) while the analytic profile
    /// pins the relative shape to ±10%.
    pub fn with_kernel_gflops(mut self, gflops_by_k: &[f64]) -> Self {
        let clamp_abs = |s: f64| s.clamp(1.0 / 500e9, 1.0 / 0.05e9);
        let mut w = [0f64; MAX_COST_K + 1];
        let mut last = self.flop_seconds_by_k[1];
        for (k, slot) in w.iter_mut().enumerate().skip(1) {
            let measured = gflops_by_k
                .get(k - 1)
                .copied()
                .filter(|g| g.is_finite() && *g > 0.0);
            last = match measured {
                Some(g) => clamp_abs(1.0 / (g * 1e9)),
                None => clamp_abs(last * 1.1),
            };
            *slot = last;
        }
        // Width-0 clusters cannot occur; mirror k=1 to keep the table
        // total.
        w[0] = w[1];
        let analytic = Self::analytic().flop_seconds_by_k;
        let pivot = w[4];
        for k in 0..=MAX_COST_K {
            let shape = analytic[k] / analytic[4];
            let rel = (w[k] / pivot).clamp(shape / 1.1, shape * 1.1);
            self.flop_seconds_by_k[k] = clamp_abs(rel * pivot);
        }
        self
    }

    /// Calibrate the streaming weight from a short measured probe: one
    /// pass over `probe_bytes` of memory (default-sized when 0). The
    /// swap weight keeps the analytic 4× ratio — the probe measures the
    /// fast tier only, and the model needs relative, not absolute,
    /// fidelity.
    pub fn calibrated(probe_bytes: usize) -> Self {
        let len = if probe_bytes == 0 {
            1usize << 22
        } else {
            probe_bytes
        }
        .div_ceil(8);
        let mut buf = vec![1u64; len];
        // Warm the pages, then time a read-modify-write sweep.
        for v in buf.iter_mut() {
            *v = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for v in buf.iter_mut() {
            *v = v.wrapping_add(1);
            acc ^= *v;
        }
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(acc);
        let bytes = (len * 8) as f64;
        // 2× for the read+write traffic of the probe loop; clamp to a
        // sane band so a noisy probe cannot invert the model's ordering.
        let stream = (dt / (2.0 * bytes)).clamp(1.0 / 200e9, 1.0 / 0.5e9);
        Self {
            stream_byte_seconds: stream,
            swap_byte_seconds: 4.0 * stream,
            ..Self::analytic()
        }
    }

    /// Build a model from recorded bench rates (bytes/second), e.g. the
    /// `BENCH_*.json` streaming and swap bandwidths.
    pub fn from_rates(stream_bytes_per_sec: f64, swap_bytes_per_sec: f64) -> Self {
        assert!(stream_bytes_per_sec > 0.0 && swap_bytes_per_sec > 0.0);
        Self {
            stream_byte_seconds: 1.0 / stream_bytes_per_sec,
            swap_byte_seconds: 1.0 / swap_bytes_per_sec,
            ..Self::analytic()
        }
    }

    /// Modeled seconds of a plan with resource counts `r`.
    pub fn seconds(&self, r: &PlanResources) -> f64 {
        let flops: f64 = r
            .flops_by_k
            .iter()
            .zip(self.flop_seconds_by_k.iter())
            .map(|(&f, &w)| f as f64 * w)
            .sum();
        r.swap_bytes as f64 * self.swap_byte_seconds
            + r.streamed_bytes as f64 * self.stream_byte_seconds
            + r.stage_passes as f64 * self.pass_seconds
            + r.ooc_runs as f64 * self.run_seconds
            + flops
    }

    /// Convenience: resources + modeled seconds of `schedule`.
    pub fn cost(&self, schedule: &Schedule, amp_bytes: u64) -> (PlanResources, f64) {
        let r = plan_resources(schedule, amp_bytes, DEFAULT_TILE_QUBITS);
        let s = self.seconds(&r);
        (r, s)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::analytic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use crate::stage::plan;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    fn workload() -> qsim_circuit::Circuit {
        supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 20,
            seed: 2,
        })
    }

    #[test]
    fn resources_match_schedule_counters() {
        let c = workload();
        let s = plan(&c, &SchedulerConfig::distributed(9, 4));
        let r = plan_resources(&s, 16, DEFAULT_TILE_QUBITS);
        assert_eq!(r.n_swaps, s.n_swaps());
        assert_eq!(r.ooc_runs, plan_runs(&s).len());
        assert!(
            r.stage_passes >= s.stages.len() - s.stages.iter().filter(|x| x.ops.is_empty()).count()
        );
        assert_eq!(
            r.swap_bytes,
            CommStats::new(12, 9, 0, s.n_swaps(), 16).scheduled_bytes()
        );
        assert_eq!(
            r.streamed_bytes,
            2 * (1u64 << 12) * 16 * r.stage_passes as u64
        );
    }

    #[test]
    fn single_node_plan_has_no_swap_bytes() {
        let c = workload();
        let s = plan(&c, &SchedulerConfig::single_node(12, 4));
        let r = plan_resources(&s, 16, DEFAULT_TILE_QUBITS);
        assert_eq!(r.n_swaps, 0);
        assert_eq!(r.swap_bytes, 0);
        assert_eq!(r.ooc_runs, 1);
        assert!(r.stage_passes > 0);
    }

    fn flops_in_bin(k: usize, flops: u64) -> [u64; MAX_COST_K + 1] {
        let mut f = [0u64; MAX_COST_K + 1];
        f[k] = flops;
        f
    }

    #[test]
    fn cost_is_monotone_in_every_resource() {
        let m = CostModel::analytic();
        let base = PlanResources {
            n_swaps: 2,
            swap_bytes: 1 << 20,
            stage_passes: 10,
            streamed_bytes: 1 << 24,
            ooc_runs: 3,
            cluster_flops: 1 << 30,
            flops_by_k: flops_in_bin(4, 1 << 30),
        };
        let c0 = m.seconds(&base);
        for bump in [
            PlanResources {
                swap_bytes: base.swap_bytes * 2,
                ..base
            },
            PlanResources {
                streamed_bytes: base.streamed_bytes * 2,
                ..base
            },
            PlanResources {
                stage_passes: base.stage_passes + 1,
                ..base
            },
            PlanResources {
                ooc_runs: base.ooc_runs + 1,
                ..base
            },
            PlanResources {
                cluster_flops: base.cluster_flops * 2,
                flops_by_k: flops_in_bin(4, 2 << 30),
                ..base
            },
        ] {
            assert!(m.seconds(&bump) > c0);
        }
    }

    #[test]
    fn small_clusters_pay_more_per_flop() {
        // The same raw flop count in k=3 clusters must model costlier
        // than in k=4 clusters — otherwise search prefers "fewer raw
        // flops via smaller kmax", which real kernels punish.
        let m = CostModel::analytic();
        let base = PlanResources {
            n_swaps: 0,
            swap_bytes: 0,
            stage_passes: 4,
            streamed_bytes: 1 << 24,
            ooc_runs: 1,
            cluster_flops: 1 << 30,
            flops_by_k: flops_in_bin(4, 1 << 30),
        };
        let small_k = PlanResources {
            flops_by_k: flops_in_bin(3, 1 << 30),
            ..base
        };
        assert!(m.seconds(&small_k) > m.seconds(&base));
        // And the measured-ladder constructor preserves that shape even
        // from a partial ladder with junk entries.
        let cal = CostModel::analytic().with_kernel_gflops(&[2.0, 4.0, 7.0, 10.0, f64::NAN]);
        assert!(cal.flop_seconds_by_k[1] > cal.flop_seconds_by_k[4]);
        assert!(cal.flop_seconds_by_k[5] > cal.flop_seconds_by_k[4]);
        assert!(cal
            .flop_seconds_by_k
            .iter()
            .all(|w| w.is_finite() && *w > 0.0));
    }

    #[test]
    fn fewer_swaps_cost_less_all_else_equal() {
        // A swap is modeled strictly more expensive than the pass it
        // replaces — the property that makes swap count the primary
        // objective, matching the paper.
        let c = workload();
        let good = plan(&c, &SchedulerConfig::distributed(9, 4));
        let mut naive_cfg = SchedulerConfig::naive(9, 4);
        naive_cfg.worst_case_dense = true;
        let bad = plan(&c, &naive_cfg);
        assert!(bad.n_swaps() >= good.n_swaps());
        if bad.n_swaps() > good.n_swaps() {
            let m = CostModel::analytic();
            let (_, cg) = m.cost(&good, 16);
            let (_, cb) = m.cost(&bad, 16);
            assert!(cg < cb, "fewer swaps must model cheaper: {cg} vs {cb}");
        }
    }

    #[test]
    fn calibrated_model_is_sane() {
        let m = CostModel::calibrated(1 << 20);
        assert!(m.stream_byte_seconds > 0.0 && m.stream_byte_seconds.is_finite());
        assert!(m.swap_byte_seconds > m.stream_byte_seconds);
        let r = CostModel::from_rates(10e9, 2.5e9);
        assert!((r.swap_byte_seconds / r.stream_byte_seconds - 4.0).abs() < 1e-12);
    }
}
