//! Gate fusion: building one 2^k × 2^k matrix from a run of small gates
//! (§3.6.1 step 2, "execute this k-qubit gate instead of many single- and
//! two-qubit gates").
//!
//! Fusion happens in *physical* coordinates: each gate's logical operands
//! are translated through the stage mapping, located inside the cluster's
//! sorted position list, embedded to the cluster arity, and multiplied
//! onto the accumulated product (later gates on the left).

use qsim_circuit::Gate;
use qsim_util::c64;
use qsim_util::matrix::GateMatrix;

/// Fuse `gates` (in application order) into one matrix over the sorted
/// physical positions `cluster_qubits`. `mapping[logical] = physical`.
pub fn fuse_gates(
    gates: &[(usize, &Gate)],
    cluster_qubits: &[u32],
    mapping: &[u32],
) -> GateMatrix<f64> {
    let k = cluster_qubits.len() as u32;
    assert!(k >= 1, "empty cluster");
    debug_assert!(cluster_qubits.windows(2).all(|w| w[0] < w[1]));
    let mut fused = GateMatrix::<f64>::identity(k);
    for &(_, g) in gates {
        let embedded = embed_gate(g, cluster_qubits, mapping);
        // Later gates act after: |ψ⟩ → G·fused·|ψ⟩.
        fused = embedded.matmul(&fused);
    }
    fused
}

/// Embed one gate into the cluster's operand space.
pub fn embed_gate(g: &Gate, cluster_qubits: &[u32], mapping: &[u32]) -> GateMatrix<f64> {
    let slots: Vec<u32> = g
        .qubits()
        .iter()
        .map(|&q| {
            let p = mapping[q as usize];
            cluster_qubits
                .iter()
                .position(|&cq| cq == p)
                .unwrap_or_else(|| {
                    panic!("gate qubit {q} (phys {p}) outside cluster {cluster_qubits:?}")
                }) as u32
        })
        .collect();
    let m: GateMatrix<f64> = g.matrix();
    m.embed(cluster_qubits.len() as u32, &slots)
}

/// Build the diagonal of a diagonal gate in physical-position operand
/// order, for §3.5 specialized execution. Returns `(positions, diag)`
/// with positions in the gate's operand order mapped to physical.
pub fn diagonal_of(g: &Gate, mapping: &[u32]) -> (Vec<u32>, Vec<c64>) {
    let m: GateMatrix<f64> = g.matrix();
    let diag = m
        .as_diagonal()
        .unwrap_or_else(|| panic!("{} is not diagonal", g.name()));
    let positions = g.qubits().iter().map(|&q| mapping[q as usize]).collect();
    (positions, diag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::dense::{apply_gate_dense, zero_state};
    use qsim_util::complex::max_dist;
    use qsim_util::Complex;

    /// Apply a fused cluster matrix to a dense state (test helper).
    fn apply_matrix_dense(
        state: &mut Vec<Complex<f64>>,
        n: u32,
        qubits: &[u32],
        m: &GateMatrix<f64>,
    ) {
        let big = m.embed(n, qubits);
        let d = state.len();
        let mut out = vec![Complex::zero(); d];
        for (r, o) in out.iter_mut().enumerate() {
            for (c, &s) in state.iter().enumerate() {
                *o += big.get(r, c) * s;
            }
        }
        *state = out;
    }

    #[test]
    fn fusion_equals_sequential_application() {
        // H(0), CZ(0,1), T(1), X^1/2(0) fused over cluster {0,1}.
        let gates = vec![Gate::H(0), Gate::CZ(0, 1), Gate::T(1), Gate::SqrtX(0)];
        let mapping = vec![0u32, 1, 2];
        let refs: Vec<(usize, &Gate)> = gates.iter().enumerate().collect();
        let fused = fuse_gates(&refs, &[0, 1], &mapping);
        assert!(fused.unitarity_residual() < 1e-12);

        let n = 3;
        let mut a = zero_state::<f64>(n);
        // Put some amplitude everywhere first.
        for q in 0..n {
            apply_gate_dense(&mut a, n, &Gate::H(q));
        }
        let mut b = a.clone();
        for g in &gates {
            apply_gate_dense(&mut a, n, g);
        }
        apply_matrix_dense(&mut b, n, &[0, 1], &fused);
        assert!(max_dist(&a, &b) < 1e-12);
    }

    #[test]
    fn fusion_respects_mapping() {
        // Logical qubit 2 mapped to physical 0; H(2) must land on slot 0
        // of cluster {0}.
        let mapping = vec![2u32, 1, 0];
        let g = Gate::H(2);
        let refs = vec![(0usize, &g)];
        let fused = fuse_gates(&refs, &[0], &mapping);
        let h: GateMatrix<f64> = Gate::H(0).matrix();
        assert_eq!(fused, h);
    }

    #[test]
    fn fusion_order_matters() {
        // H then T differs from T then H.
        let h = Gate::H(0);
        let t = Gate::T(0);
        let mapping = vec![0u32];
        let ht = fuse_gates(&[(0, &h), (1, &t)], &[0], &mapping);
        let th = fuse_gates(&[(0, &t), (1, &h)], &[0], &mapping);
        assert!(max_dist(ht.entries(), th.entries()) > 0.1);
        // ht = T·H as matrices.
        let tm: GateMatrix<f64> = t.matrix();
        let hm: GateMatrix<f64> = h.matrix();
        let expect = tm.matmul(&hm);
        assert!(max_dist(ht.entries(), expect.entries()) < 1e-12);
    }

    #[test]
    fn diagonal_extraction_maps_positions() {
        let mapping = vec![5u32, 3, 7];
        let (pos, diag) = diagonal_of(&Gate::CZ(0, 2), &mapping);
        assert_eq!(pos, vec![5, 7]);
        assert_eq!(diag.len(), 4);
        assert_eq!(diag[3], -c64::one());
        assert_eq!(diag[0], c64::one());
    }

    #[test]
    #[should_panic(expected = "not diagonal")]
    fn diagonal_of_dense_gate_panics() {
        let _ = diagonal_of(&Gate::H(0), &[0]);
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn embed_outside_cluster_panics() {
        let mapping = vec![0u32, 1];
        let _ = embed_gate(&Gate::H(1), &[0], &mapping);
    }

    #[test]
    fn fused_supremacy_stage_is_unitary() {
        // Many gates over a 4-qubit cluster stay unitary.
        let gates = vec![
            Gate::H(0),
            Gate::H(1),
            Gate::H(2),
            Gate::H(3),
            Gate::CZ(0, 1),
            Gate::CZ(2, 3),
            Gate::T(0),
            Gate::SqrtY(1),
            Gate::CZ(1, 2),
            Gate::SqrtX(3),
            Gate::T(2),
        ];
        let mapping = vec![0u32, 1, 2, 3];
        let refs: Vec<(usize, &Gate)> = gates.iter().enumerate().collect();
        let fused = fuse_gates(&refs, &[0, 1, 2, 3], &mapping);
        assert!(fused.unitarity_residual() < 1e-10);
    }
}
