//! Cost-model-guided schedule search.
//!
//! The greedy planner ([`crate::stage::plan`]) is one-shot: it commits to
//! the paper's heuristics (§3.6) at a fixed `kmax` and never revisits a
//! decision. Scheduling is pure precomputation, so [`search_plan`] spends
//! a bounded budget of extra `plan()` evaluations exploring the axes the
//! greedy pass fixes up front:
//!
//! 1. **Beam over planner configurations** — `kmax` neighbors and the
//!    sweep-order toggle, each a full greedy plan scored by the
//!    [`CostModel`];
//! 2. **Annealing over logical relabelings** — random transpositions of
//!    qubit labels change which qubits the mapping heuristics group into
//!    clusters, accepted by simulated annealing on modeled cost.
//!
//! A relabeled plan is translated back into a schedule of the *original*
//! circuit (see [`unpermute_schedule`]): stage ops and swaps live in
//! physical space and carry over unchanged; only the logical→physical
//! mappings are composed with the relabeling. The result is `verify`'d
//! against the original circuit before it can be adopted.
//!
//! Greedy is the floor: the searched plan is adopted only if its modeled
//! cost clears an adoption margin below greedy's
//! ([`SearchConfig::adopt_margin`]), and never if it schedules *more*
//! swaps than greedy — so enabling search can never make the modeled
//! plan worse, and noise-level model deltas cannot trade away the
//! paper's primary objective.

use crate::config::SchedulerConfig;
use crate::cost::{plan_resources, CostModel, PlanResources};
use crate::schedule::Schedule;
use crate::stage::plan;
use crate::sweep::DEFAULT_TILE_QUBITS;
use qsim_circuit::Circuit;
use qsim_util::Xoshiro256;

/// Knobs of one search run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchConfig {
    /// Maximum number of `plan()` evaluations beyond the greedy baseline.
    /// Each evaluation is a full greedy plan of the circuit, so search
    /// time is roughly `budget ×` greedy planning time.
    pub budget: usize,
    /// Beam width of the configuration sweep: the best `beam_width`
    /// configurations each get an annealing refinement pass.
    pub beam_width: usize,
    /// Seed of the annealing proposal stream (search is deterministic
    /// for a fixed seed + budget).
    pub seed: u64,
    /// Bytes per amplitude under the target precision (16 for f64, 8
    /// for f32) — feeds the cost model's byte counts.
    pub amp_bytes: u64,
    /// Explore logical relabelings. Must be `false` for consumers that
    /// read the final state in *physical* order without translating
    /// through the schedule's final mapping (the single-node engine).
    pub permute_labels: bool,
    /// Tile budget the pass counts are modeled under.
    pub tile_qubits: u32,
    /// Minimum *relative* modeled improvement required for adoption:
    /// the searched plan must model below `greedy × (1 − adopt_margin)`.
    /// The cost model is only trusted for ranking, not for resolving
    /// sub-percent differences — without a margin the search happily
    /// trades real resources for noise-level flop shavings.
    pub adopt_margin: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            budget: 32,
            beam_width: 2,
            seed: 0x5eed_5eed,
            amp_bytes: 16,
            permute_labels: true,
            tile_qubits: DEFAULT_TILE_QUBITS,
            adopt_margin: 0.02,
        }
    }
}

/// Result of [`search_plan`].
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The winning schedule: the cheapest candidate if one beat greedy,
    /// otherwise the greedy plan itself.
    pub schedule: Schedule,
    /// Whether a searched candidate was adopted over greedy.
    pub adopted: bool,
    /// Total `plan()` evaluations spent (greedy baseline included).
    pub candidates: usize,
    /// Modeled seconds of the greedy baseline.
    pub greedy_cost: f64,
    /// Modeled seconds of the returned schedule (`== greedy_cost` when
    /// not adopted).
    pub best_cost: f64,
    /// Resource counts of the greedy baseline.
    pub greedy_resources: PlanResources,
    /// Resource counts of the returned schedule.
    pub best_resources: PlanResources,
}

/// One scored candidate inside the search.
#[derive(Clone)]
struct Candidate {
    cfg: SchedulerConfig,
    /// Logical relabeling under which the plan was produced
    /// (`perm[original] = relabeled`); identity for pure config variants.
    perm: Vec<u32>,
    schedule: Schedule,
    resources: PlanResources,
    cost: f64,
}

/// Translate a schedule planned for `circuit.remapped(perm)` back into a
/// schedule of the original circuit.
///
/// `remapped` relabels gate operands (`q → perm[q]`) while preserving
/// gate order, so gate indices, clusters, diagonal ops and swaps — all of
/// which live in *physical* space or index the gate list — are already
/// correct for the original circuit. Only the logical→physical mappings
/// mention labels: the relabeled plan sends label `perm[q]` to physical
/// slot `mapping[perm[q]]`, so the original logical qubit `q` lives at
/// `mapping[perm[q]]`.
pub fn unpermute_schedule(mut schedule: Schedule, perm: &[u32]) -> Schedule {
    for stage in &mut schedule.stages {
        let old = stage.mapping.clone();
        for (q, slot) in stage.mapping.iter_mut().enumerate() {
            *slot = old[perm[q] as usize];
        }
    }
    schedule
}

fn identity_perm(n: u32) -> Vec<u32> {
    (0..n).collect()
}

fn is_identity(perm: &[u32]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| p == i as u32)
}

/// Plan `circuit` under `cfg` with logical labels permuted by `perm`,
/// returning a schedule of the *original* circuit plus its score.
fn evaluate(
    circuit: &Circuit,
    cfg: &SchedulerConfig,
    perm: &[u32],
    model: &CostModel,
    search: &SearchConfig,
) -> Candidate {
    let schedule = if is_identity(perm) {
        plan(circuit, cfg)
    } else {
        unpermute_schedule(plan(&circuit.remapped(perm), cfg), perm)
    };
    let resources = plan_resources(&schedule, search.amp_bytes, search.tile_qubits);
    let cost = model.seconds(&resources);
    Candidate {
        cfg: *cfg,
        perm: perm.to_vec(),
        schedule,
        resources,
        cost,
    }
}

/// Neighboring planner configurations of `base`: `kmax ± 1` (clamped to
/// `2..=local_qubits`, never below the widest gate) crossed with the
/// sweep-order toggle, excluding `base` itself.
fn config_variants(base: &SchedulerConfig, circuit: &Circuit) -> Vec<SchedulerConfig> {
    let widest = circuit
        .gates()
        .iter()
        .map(|g| g.qubits().len() as u32)
        .max()
        .unwrap_or(1);
    let kmax_floor = widest.max(2);
    let kmax_ceil = base.local_qubits;
    let mut out = Vec::new();
    for dk in [-1i32, 0, 1] {
        let kmax = (base.kmax as i32 + dk).clamp(kmax_floor as i32, kmax_ceil as i32) as u32;
        for sweep_order in [base.sweep_order, !base.sweep_order] {
            let cand = SchedulerConfig {
                kmax,
                sweep_order,
                ..*base
            };
            if cand != *base && !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out
}

/// Search for a cheaper schedule of `circuit` than the greedy plan under
/// `base`. See the module docs for the algorithm; the returned outcome
/// always contains a schedule that `verify`s against `circuit`, and its
/// modeled cost is never above greedy's.
pub fn search_plan(
    circuit: &Circuit,
    base: &SchedulerConfig,
    model: &CostModel,
    search: &SearchConfig,
) -> SearchOutcome {
    let n = circuit.n_qubits();
    let ident = identity_perm(n);
    let greedy = evaluate(circuit, base, &ident, model, search);
    let greedy_cost = greedy.cost;
    let greedy_resources = greedy.resources;
    let mut candidates = 1usize;
    let mut budget = search.budget;

    // Swaps are the paper's primary objective and the model's weakest
    // axis (the slow tier of a real cluster is far worse than any probe
    // run on this host can see), so a candidate with more swaps than
    // greedy is never viable no matter how cheap it models.
    let viable = |c: &Candidate| c.resources.n_swaps <= greedy_resources.n_swaps;

    // Phase 1: beam over planner configurations.
    let mut beam: Vec<Candidate> = vec![greedy.clone()];
    for cfg in config_variants(base, circuit) {
        if budget == 0 {
            break;
        }
        budget -= 1;
        candidates += 1;
        let cand = evaluate(circuit, &cfg, &ident, model, search);
        if viable(&cand) {
            beam.push(cand);
        }
    }
    beam.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    beam.truncate(search.beam_width.max(1));

    // Phase 2: annealing over logical relabelings, refining each beam
    // survivor with an equal share of the remaining budget.
    let mut best = beam[0].clone();
    if search.permute_labels && n >= 2 && budget > 0 {
        let share = budget / beam.len();
        let mut leftover = budget - share * beam.len();
        for (b, seed_lane) in beam.iter().enumerate() {
            let steps = share + if b == 0 { leftover } else { 0 };
            leftover = 0;
            if steps == 0 {
                continue;
            }
            let mut rng = Xoshiro256::seed_from_u64(search.seed ^ (b as u64).wrapping_mul(0x9e37));
            let mut current = seed_lane.clone();
            // Temperature starts at a fifth of the greedy cost and decays
            // geometrically to ~1% of that over the lane's steps.
            let t0 = 0.2 * greedy_cost.max(f64::MIN_POSITIVE);
            let alpha = 0.01f64.powf(1.0 / steps as f64);
            let mut t = t0;
            for _ in 0..steps {
                let mut perm = current.perm.clone();
                let i = (rng.next_u64() % n as u64) as usize;
                let mut j = (rng.next_u64() % (n as u64 - 1)) as usize;
                if j >= i {
                    j += 1;
                }
                perm.swap(i, j);
                candidates += 1;
                let cand = evaluate(circuit, &current.cfg, &perm, model, search);
                let delta = cand.cost - current.cost;
                if viable(&cand) && (delta < 0.0 || rng.next_f64() < (-delta / t).exp()) {
                    current = cand;
                }
                if current.cost < best.cost {
                    best = current.clone();
                }
                t *= alpha;
            }
        }
    }

    // Greedy is the floor: adopt only an improvement that clears the
    // margin (the model ranks, it does not resolve sub-percent deltas),
    // and never a plan that fails structural validation against the
    // original circuit.
    let adopted = best.cost < greedy_cost * (1.0 - search.adopt_margin.max(0.0))
        && (is_identity(&best.perm) || !best.schedule.stages.is_empty());
    if adopted {
        best.schedule.verify(circuit);
        SearchOutcome {
            schedule: best.schedule,
            adopted: true,
            candidates,
            greedy_cost,
            best_cost: best.cost,
            greedy_resources,
            best_resources: best.resources,
        }
    } else {
        SearchOutcome {
            schedule: greedy.schedule,
            adopted: false,
            candidates,
            greedy_cost,
            best_cost: greedy_cost,
            greedy_resources,
            best_resources: greedy_resources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    fn workload(rows: u32, cols: u32, depth: u32, seed: u64) -> Circuit {
        supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth,
            seed,
        })
    }

    #[test]
    fn search_never_adopts_costlier_than_greedy() {
        let model = CostModel::analytic();
        for (l, seed) in [(9u32, 1u64), (9, 2), (10, 3), (12, 4)] {
            let c = workload(3, 4, 20, seed);
            let base = SchedulerConfig::distributed(l, 4);
            let out = search_plan(
                &c,
                &base,
                &model,
                &SearchConfig {
                    budget: 12,
                    ..SearchConfig::default()
                },
            );
            assert!(out.best_cost <= out.greedy_cost);
            if out.adopted {
                assert!(out.best_cost < out.greedy_cost);
            }
            // The swap floor: search never returns more swaps than greedy.
            assert!(out.best_resources.n_swaps <= out.greedy_resources.n_swaps);
            out.schedule.verify(&c);
        }
    }

    #[test]
    fn adopt_margin_blocks_noise_level_wins() {
        // With a 100% margin no candidate can clear the bar, so search
        // must fall back to greedy no matter what it finds.
        let c = workload(3, 4, 24, 3);
        let base = SchedulerConfig::distributed(8, 4);
        let out = search_plan(
            &c,
            &base,
            &CostModel::analytic(),
            &SearchConfig {
                budget: 16,
                adopt_margin: 1.0,
                ..SearchConfig::default()
            },
        );
        assert!(!out.adopted);
        assert_eq!(out.best_cost, out.greedy_cost);
    }

    #[test]
    fn search_is_deterministic_for_fixed_seed() {
        let c = workload(3, 4, 16, 7);
        let base = SchedulerConfig::distributed(9, 4);
        let model = CostModel::analytic();
        let cfg = SearchConfig {
            budget: 10,
            seed: 42,
            ..SearchConfig::default()
        };
        let a = search_plan(&c, &base, &model, &cfg);
        let b = search_plan(&c, &base, &model, &cfg);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.adopted, b.adopted);
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.schedule.n_swaps(), b.schedule.n_swaps());
    }

    #[test]
    fn budget_bounds_evaluations() {
        let c = workload(3, 3, 12, 5);
        let base = SchedulerConfig::distributed(7, 4);
        let out = search_plan(
            &c,
            &base,
            &CostModel::analytic(),
            &SearchConfig {
                budget: 5,
                ..SearchConfig::default()
            },
        );
        assert!(out.candidates <= 6, "greedy + budget: {}", out.candidates);
        let zero = search_plan(
            &c,
            &base,
            &CostModel::analytic(),
            &SearchConfig {
                budget: 0,
                ..SearchConfig::default()
            },
        );
        assert_eq!(zero.candidates, 1);
        assert!(!zero.adopted);
    }

    #[test]
    fn unpermuted_relabeled_plan_verifies_against_original() {
        let c = workload(3, 4, 20, 9);
        let n = c.n_qubits();
        // A deliberately non-trivial relabeling: reverse the labels.
        let perm: Vec<u32> = (0..n).rev().collect();
        let cfg = SchedulerConfig::distributed(9, 4);
        let s = unpermute_schedule(plan(&c.remapped(&perm), &cfg), &perm);
        s.verify(&c);
    }

    #[test]
    fn permute_labels_off_keeps_identity_mappings_axis() {
        // Single-node consumers read physical order: with the permutation
        // axis off, search must only return plans the greedy planner could
        // have produced itself (identity relabeling).
        let c = workload(3, 4, 16, 11);
        let base = SchedulerConfig::single_node(12, 4);
        let out = search_plan(
            &c,
            &base,
            &CostModel::analytic(),
            &SearchConfig {
                budget: 8,
                permute_labels: false,
                ..SearchConfig::default()
            },
        );
        out.schedule.verify(&c);
        assert!(out.best_cost <= out.greedy_cost);
    }

    #[test]
    fn searched_plan_reduces_or_matches_modeled_resources() {
        // The headline property of the bench: at a scale where the flop
        // term dominates, search corrects a suboptimal base `kmax` and
        // the relabeling axis finds plans with strictly fewer swaps or
        // passes. Run a small seed sweep and require it to happen at
        // least once (deterministic seeds).
        let model = CostModel::analytic();
        let mut improved = false;
        for seed in 1..=6u64 {
            let c = workload(4, 4, 24, seed);
            let base = SchedulerConfig::distributed(12, 3);
            let out = search_plan(
                &c,
                &base,
                &model,
                &SearchConfig {
                    budget: 24,
                    ..SearchConfig::default()
                },
            );
            assert!(out.best_resources.n_swaps <= out.greedy_resources.n_swaps);
            if out.adopted
                && (out.best_resources.n_swaps < out.greedy_resources.n_swaps
                    || out.best_resources.stage_passes < out.greedy_resources.stage_passes)
            {
                improved = true;
            }
        }
        assert!(improved, "search failed to improve any of 6 seeds");
    }
}
