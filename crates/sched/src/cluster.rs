//! Clustering — §3.6.1 step 2.
//!
//! Within a stage, runs of single- and two-qubit gates are merged into one
//! k ≤ kmax fused gate, executed by a single k-qubit kernel sweep instead
//! of many cheap sweeps. The greedy grower absorbs every ready gate whose
//! operands fit in the cluster's qubit set (growing the set while
//! `|Q| ≤ kmax`); a small local search tries several seeds and keeps the
//! cluster that captured the most gates, "before assigning the remaining
//! gates to new clusters".
//!
//! Diagonal gates with a global operand cannot join a dense cluster
//! (their operand is not addressable by a local kernel); they are emitted
//! as §3.5 specialized [`DiagonalOp`]s, interleaved in dependency order.

use crate::config::SchedulerConfig;
use crate::fuse::{diagonal_of, fuse_gates};
use crate::schedule::{Cluster, DiagonalOp, StageOp};
use qsim_circuit::{Circuit, Gate};
use std::collections::BTreeSet;

/// Per-stage dependency tracker over a gate-index subsequence.
struct StageTracker {
    /// Positions (into the stage list) per qubit, in order.
    chains: Vec<Vec<usize>>,
    cursor: Vec<usize>,
    done: Vec<bool>,
    n_done: usize,
    qubit_cache: Vec<Vec<u32>>,
}

impl StageTracker {
    fn new(circuit: &Circuit, stage_gates: &[usize]) -> Self {
        let n = circuit.n_qubits() as usize;
        let mut chains = vec![Vec::new(); n];
        let mut qubit_cache = Vec::with_capacity(stage_gates.len());
        for (pos, &gi) in stage_gates.iter().enumerate() {
            let qs = circuit.gates()[gi].qubits();
            for &q in &qs {
                chains[q as usize].push(pos);
            }
            qubit_cache.push(qs);
        }
        Self {
            cursor: vec![0; n],
            done: vec![false; stage_gates.len()],
            n_done: 0,
            chains,
            qubit_cache,
        }
    }

    fn is_ready(&self, pos: usize) -> bool {
        !self.done[pos]
            && self.qubit_cache[pos].iter().all(|&q| {
                let ch = &self.chains[q as usize];
                let cur = self.cursor[q as usize];
                cur < ch.len() && ch[cur] == pos
            })
    }

    fn execute(&mut self, pos: usize) {
        debug_assert!(self.is_ready(pos));
        for &q in &self.qubit_cache[pos] {
            self.cursor[q as usize] += 1;
        }
        self.done[pos] = true;
        self.n_done += 1;
    }

    fn ready_positions(&self) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for (q, ch) in self.chains.iter().enumerate() {
            if let Some(&pos) = ch.get(self.cursor[q]) {
                if self.is_ready(pos) && !out.contains(&pos) {
                    out.push(pos);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn is_done(&self) -> bool {
        self.n_done == self.done.len()
    }

    fn snapshot(&self) -> (Vec<usize>, Vec<bool>, usize) {
        (self.cursor.clone(), self.done.clone(), self.n_done)
    }

    fn restore(&mut self, snap: (Vec<usize>, Vec<bool>, usize)) {
        self.cursor = snap.0;
        self.done = snap.1;
        self.n_done = snap.2;
    }
}

/// Build the ordered op list for one stage.
///
/// `stage_gates` are circuit gate indices in a dependency-consistent
/// order; `mapping[logical] = physical`.
pub fn build_stage_ops(
    circuit: &Circuit,
    stage_gates: &[usize],
    mapping: &[u32],
    cfg: &SchedulerConfig,
) -> Vec<StageOp> {
    let l = cfg.local_qubits;
    let mut tr = StageTracker::new(circuit, stage_gates);
    let mut ops: Vec<StageOp> = Vec::new();

    let phys = |gi: usize| -> Vec<u32> {
        circuit.gates()[gi]
            .qubits()
            .iter()
            .map(|&q| mapping[q as usize])
            .collect()
    };
    let is_global_diag = |gi: usize| -> bool { phys(gi).iter().any(|&p| p >= l) };

    while !tr.is_done() {
        let ready = tr.ready_positions();
        debug_assert!(!ready.is_empty(), "stage tracker stuck");

        // Emit any ready specialized diagonal ops first: they are cheap
        // and unblock chains for clustering.
        let mut emitted_diag = false;
        for &pos in &ready {
            if tr.done[pos] {
                continue;
            }
            let gi = stage_gates[pos];
            if is_global_diag(gi) {
                debug_assert!(
                    circuit.gates()[gi].is_diagonal(),
                    "global dense gate in stage"
                );
                let (positions, diag) = diagonal_of(&circuit.gates()[gi], mapping);
                ops.push(StageOp::Diagonal(DiagonalOp {
                    positions,
                    diag,
                    gate_indices: vec![gi],
                }));
                tr.execute(pos);
                emitted_diag = true;
            }
        }
        if emitted_diag {
            continue;
        }

        // Local search over seeds: grow a candidate cluster from each of
        // the first `cluster_trials` ready gates, keep the biggest.
        let seeds: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&p| !tr.done[p])
            .take(cfg.cluster_trials.max(1))
            .collect();
        debug_assert!(!seeds.is_empty());
        let mut best: Option<Vec<usize>> = None;
        for &seed in &seeds {
            let snap = tr.snapshot();
            let members = grow_cluster(circuit, stage_gates, &mut tr, seed, mapping, cfg);
            tr.restore(snap);
            if best.as_ref().is_none_or(|b| members.len() > b.len()) {
                best = Some(members);
            }
        }
        let members = best.unwrap();
        // Commit: re-execute the chosen members.
        for &pos in &members {
            tr.execute(pos);
        }
        let gate_indices: Vec<usize> = members.iter().map(|&p| stage_gates[p]).collect();
        let mut qset: BTreeSet<u32> = BTreeSet::new();
        for &gi in &gate_indices {
            for p in phys(gi) {
                qset.insert(p);
            }
        }
        let qubits: Vec<u32> = qset.into_iter().collect();
        debug_assert!(qubits.iter().all(|&p| p < l));
        let gates_ref: Vec<(usize, &Gate)> = gate_indices
            .iter()
            .map(|&gi| (gi, &circuit.gates()[gi]))
            .collect();
        let matrix = fuse_gates(&gates_ref, &qubits, mapping);
        ops.push(StageOp::Cluster(Cluster {
            qubits,
            gate_indices,
            matrix,
        }));
    }
    if cfg.sweep_order {
        // Group ops by qubit footprint so the cache-tiled executor folds
        // more of them into each streaming pass. Dependency-safe (only
        // position-disjoint ops commute) and applied here, not at
        // execution time, so every executor sees the same op order.
        ops = crate::sweep::order_ops_for_sweep(ops, crate::sweep::DEFAULT_TILE_QUBITS.min(l));
    }
    ops
}

/// Greedily grow a cluster from `seed`; returns the member positions in
/// execution order. Mutates the tracker (caller snapshots/restores for
/// trials, then re-executes to commit).
fn grow_cluster(
    circuit: &Circuit,
    stage_gates: &[usize],
    tr: &mut StageTracker,
    seed: usize,
    mapping: &[u32],
    cfg: &SchedulerConfig,
) -> Vec<usize> {
    let l = cfg.local_qubits;
    let phys = |pos: usize| -> Vec<u32> {
        circuit.gates()[stage_gates[pos]]
            .qubits()
            .iter()
            .map(|&q| mapping[q as usize])
            .collect()
    };
    let seed_phys = phys(seed);
    // Global-diagonal gates are drained before seeding (build_stage_ops).
    debug_assert!(
        seed_phys.iter().all(|&p| p < l),
        "global-diagonal gate reached cluster seeding"
    );
    let mut qset: BTreeSet<u32> = seed_phys.into_iter().collect();
    // A single gate wider than kmax still has to execute: the cap is
    // max(kmax, seed arity).
    let cap = (cfg.kmax as usize).max(qset.len());
    let mut members = vec![seed];
    tr.execute(seed);
    loop {
        // Phase 1: absorb every ready gate already contained in Q — these
        // are free (no qubit budget) and unblock deeper gates on the same
        // qubits, so run to a fixpoint before spending budget.
        let mut absorbed = true;
        while absorbed {
            absorbed = false;
            for pos in tr.ready_positions() {
                let ps = phys(pos);
                if ps.iter().all(|p| qset.contains(p)) {
                    members.push(pos);
                    tr.execute(pos);
                    absorbed = true;
                }
            }
        }
        // Phase 2: expand Q. Candidates are ready gates that fit in the
        // kmax budget; each is scored by a one-step lookahead (how many
        // contained gates the expansion immediately unlocks), preferring
        // fewer new qubits on ties — the "small local search" of §3.6.1.
        let mut candidates: Vec<(usize, usize, Vec<u32>)> = Vec::new(); // (new, pos, ps)
        for pos in tr.ready_positions() {
            let ps = phys(pos);
            if ps.iter().any(|&p| p >= l) {
                continue; // global-diagonal: separate op
            }
            let new = ps.iter().filter(|p| !qset.contains(p)).count();
            debug_assert!(new > 0, "contained gate survived phase 1");
            if qset.len() + new <= cap {
                candidates.push((new, pos, ps));
            }
        }
        if candidates.is_empty() {
            return members;
        }
        candidates.sort_by_key(|c| (c.0, c.1));
        candidates.truncate(cfg.cluster_trials.max(1));
        let mut best: Option<(usize, usize)> = None; // (score, candidate idx)
        for (ci, (_, pos, ps)) in candidates.iter().enumerate() {
            let snap = tr.snapshot();
            let mut q2 = qset.clone();
            for p in ps {
                q2.insert(*p);
            }
            tr.execute(*pos);
            // Count the contained gates this expansion unlocks.
            let mut score = 1usize;
            let mut absorbed = true;
            while absorbed {
                absorbed = false;
                for p2 in tr.ready_positions() {
                    let ps2 = phys(p2);
                    if ps2.iter().all(|p| q2.contains(p)) {
                        tr.execute(p2);
                        score += 1;
                        absorbed = true;
                    }
                }
            }
            tr.restore(snap);
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, ci));
            }
        }
        let (_, pos, ps) = &candidates[best.unwrap().1];
        for p in ps {
            qset.insert(*p);
        }
        members.push(*pos);
        tr.execute(*pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::StageOp;
    use qsim_circuit::Circuit;

    fn cfg(l: u32, kmax: u32) -> SchedulerConfig {
        SchedulerConfig::distributed(l, kmax)
    }

    fn identity_mapping(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn merges_more_than_k_gates_per_cluster() {
        // A dense run on 3 qubits: 7 gates must fit in one 3-qubit cluster
        // (the Fig. 4 scenario: "7 individual gates" -> one 3-qubit gate).
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cz(0, 1).cz(1, 2).t(0).sqrt_x(1);
        let gates: Vec<usize> = (0..c.len()).collect();
        let ops = build_stage_ops(&c, &gates, &identity_mapping(3), &cfg(3, 3));
        assert_eq!(ops.len(), 1, "expected a single cluster");
        if let StageOp::Cluster(cl) = &ops[0] {
            assert_eq!(cl.gate_indices.len(), 7);
            assert_eq!(cl.qubits, vec![0, 1, 2]);
            assert!(cl.matrix.unitarity_residual() < 1e-10);
        } else {
            panic!("not a cluster");
        }
    }

    #[test]
    fn kmax_limits_cluster_arity() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3).cz(0, 1).cz(2, 3).cz(1, 2);
        let gates: Vec<usize> = (0..c.len()).collect();
        let ops = build_stage_ops(&c, &gates, &identity_mapping(4), &cfg(4, 2));
        for op in &ops {
            if let StageOp::Cluster(cl) = op {
                assert!(cl.qubits.len() <= 2, "cluster too wide: {:?}", cl.qubits);
            }
        }
        // With kmax=2 the CZ(1,2) bridges two clusters: >= 3 clusters.
        let n_clusters = ops
            .iter()
            .filter(|o| matches!(o, StageOp::Cluster(_)))
            .count();
        assert!(n_clusters >= 3);
    }

    #[test]
    fn global_diagonal_becomes_specialized_op() {
        // Two qubits, position 1 global (l = 1): CZ(0,1) must be a
        // DiagonalOp, H(0) a cluster.
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1).t(1);
        let gates: Vec<usize> = (0..c.len()).collect();
        let ops = build_stage_ops(&c, &gates, &identity_mapping(2), &cfg(1, 1));
        let diag_count = ops
            .iter()
            .filter(|o| matches!(o, StageOp::Diagonal(_)))
            .count();
        assert_eq!(diag_count, 2, "CZ and T on global qubit are specialized");
        let cluster_count = ops.len() - diag_count;
        assert_eq!(cluster_count, 1);
    }

    #[test]
    fn ordering_between_diagonal_and_dense_preserved() {
        // CZ(0,1) then H(0): with qubit 1 global, the CZ's diagonal op
        // must be emitted before the H cluster.
        let mut c = Circuit::new(2);
        c.cz(0, 1).h(0);
        let gates: Vec<usize> = (0..c.len()).collect();
        let ops = build_stage_ops(&c, &gates, &identity_mapping(2), &cfg(1, 1));
        assert!(matches!(ops[0], StageOp::Diagonal(_)));
        assert!(matches!(ops[1], StageOp::Cluster(_)));
    }

    #[test]
    fn trials_do_not_lose_gates() {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.h(q);
        }
        c.cz(0, 1).cz(2, 3).cz(3, 4).t(2).sqrt_y(0);
        let gates: Vec<usize> = (0..c.len()).collect();
        for trials in [1usize, 2, 8] {
            let mut cf = cfg(5, 3);
            cf.cluster_trials = trials;
            let ops = build_stage_ops(&c, &gates, &identity_mapping(5), &cf);
            let total: usize = ops.iter().map(|o| o.gate_indices().len()).sum();
            assert_eq!(total, c.len(), "trials={trials}");
        }
    }

    #[test]
    fn empty_stage_produces_no_ops() {
        let c = Circuit::new(2);
        let ops = build_stage_ops(&c, &[], &identity_mapping(2), &cfg(2, 2));
        assert!(ops.is_empty());
    }
}
