//! The execution-plan data model.
//!
//! A [`Schedule`] is a sequence of [`Stage`]s separated by global-to-local
//! [`SwapOp`]s (§3.4/§3.6.1). Within a stage, [`StageOp`]s execute in
//! order on every rank:
//!
//! * [`Cluster`] — a fused dense k-qubit gate on *local* physical bit
//!   positions;
//! * [`DiagonalOp`] — a (possibly multi-qubit) diagonal gate whose
//!   operands may include *global* positions: §3.5 specialization turns it
//!   into a rank-conditional local phase, no communication.
//!
//! Positions are *physical* bit locations (0..l local, l..n global) under
//! the stage's logical→physical mapping, which the schedule records so
//! executors and verifiers can translate back.

use qsim_circuit::{Circuit, DependencyTracker};
use qsim_util::c64;
use qsim_util::matrix::GateMatrix;

/// A fused dense gate on local physical positions.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Sorted physical local positions (all `< local_qubits`), little-
    /// endian operand order of `matrix`.
    pub qubits: Vec<u32>,
    /// Indices into the source circuit of the merged gates, in
    /// application order.
    pub gate_indices: Vec<usize>,
    /// The fused 2^k × 2^k unitary.
    pub matrix: GateMatrix<f64>,
}

/// A diagonal gate executed via §3.5 specialization; operands may be
/// global positions.
#[derive(Clone, Debug)]
pub struct DiagonalOp {
    /// Physical positions, little-endian operand order of `diag`.
    pub positions: Vec<u32>,
    /// 2^k diagonal entries.
    pub diag: Vec<c64>,
    /// Source gate indices merged into this op.
    pub gate_indices: Vec<usize>,
}

/// One stage operation.
#[derive(Clone, Debug)]
pub enum StageOp {
    Cluster(Cluster),
    Diagonal(DiagonalOp),
}

impl StageOp {
    pub fn gate_indices(&self) -> &[usize] {
        match self {
            StageOp::Cluster(c) => &c.gate_indices,
            StageOp::Diagonal(d) => &d.gate_indices,
        }
    }
}

/// A full global-to-local swap boundary (§3.4): ALL `g = n − l` global
/// bits are exchanged with the local bits at `local_slots`.
///
/// Semantics: the logical qubit at global position `l + i` moves to local
/// position `local_slots[i]`, and vice versa. Executors realize this as
/// (local permutation) → all-to-all → (local permutation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwapOp {
    /// Ascending local positions given up to the incoming globals;
    /// `len() == n − l`.
    pub local_slots: Vec<u32>,
}

/// A communication-free run of operations under one fixed mapping.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Logical→physical mapping in effect during this stage:
    /// `mapping[logical] = physical`.
    pub mapping: Vec<u32>,
    pub ops: Vec<StageOp>,
    /// The swap executed *after* this stage; `None` for the final stage.
    pub swap: Option<SwapOp>,
}

/// The complete plan.
#[derive(Clone, Debug)]
pub struct Schedule {
    pub n_qubits: u32,
    pub local_qubits: u32,
    pub kmax: u32,
    pub stages: Vec<Stage>,
}

impl Schedule {
    /// Number of global-to-local swaps — the headline metric of Fig. 5.
    pub fn n_swaps(&self) -> usize {
        self.stages.iter().filter(|s| s.swap.is_some()).count()
    }

    /// Total number of dense clusters (Table 1's metric).
    pub fn n_clusters(&self) -> usize {
        self.stages
            .iter()
            .map(|s| {
                s.ops
                    .iter()
                    .filter(|op| matches!(op, StageOp::Cluster(_)))
                    .count()
            })
            .sum()
    }

    /// Total number of specialized diagonal ops.
    pub fn n_diagonal_ops(&self) -> usize {
        self.stages
            .iter()
            .map(|s| {
                s.ops
                    .iter()
                    .filter(|op| matches!(op, StageOp::Diagonal(_)))
                    .count()
            })
            .sum()
    }

    /// Mean gates per dense cluster (Table 1 shows > kmax on average).
    pub fn gates_per_cluster(&self) -> f64 {
        let mut gates = 0usize;
        let mut clusters = 0usize;
        for s in &self.stages {
            for op in &s.ops {
                if let StageOp::Cluster(c) = op {
                    gates += c.gate_indices.len();
                    clusters += 1;
                }
            }
        }
        if clusters == 0 {
            0.0
        } else {
            gates as f64 / clusters as f64
        }
    }

    /// Mapping in effect after the final stage (needed to interpret the
    /// output state's bit order).
    pub fn final_mapping(&self) -> &[u32] {
        &self.stages.last().expect("empty schedule").mapping
    }

    /// Validate the plan against its source circuit. Checks:
    /// 1. every circuit gate appears in exactly one op, in a position
    ///    consistent with per-qubit program order;
    /// 2. cluster operands are local and within kmax;
    /// 3. diagonal ops only contain diagonal gates;
    /// 4. swaps are well-formed;
    /// 5. cluster matrices are unitary.
    ///
    /// Panics with a description on the first violation (test/debug aid).
    pub fn verify(&self, circuit: &Circuit) {
        let n = self.n_qubits;
        let l = self.local_qubits;
        let g = n - l;
        assert_eq!(circuit.n_qubits(), n, "qubit count mismatch");
        let mut tracker = DependencyTracker::new(circuit);
        let mut mapping: Option<&[u32]> = None;
        for (si, stage) in self.stages.iter().enumerate() {
            assert_eq!(stage.mapping.len(), n as usize, "stage {si} mapping arity");
            // Mapping must be a bijection.
            let mut seen = vec![false; n as usize];
            for &p in &stage.mapping {
                assert!(
                    (p as usize) < n as usize && !seen[p as usize],
                    "stage {si} mapping not bijective"
                );
                seen[p as usize] = true;
            }
            // Mapping continuity: stage 0 free; later stages must equal
            // the previous mapping transformed by the previous swap. A
            // swap-free interior stage (a run segment, see `runs`) is
            // legal iff it leaves the mapping unchanged.
            if let Some(prev) = mapping {
                let stage_prev = &self.stages[si - 1];
                let expected = match &stage_prev.swap {
                    Some(swap) => apply_swap_to_mapping(prev, swap, l, g),
                    None => prev.to_vec(),
                };
                assert_eq!(
                    stage.mapping, expected,
                    "stage {si} mapping inconsistent with swap"
                );
            }
            for (oi, op) in stage.ops.iter().enumerate() {
                match op {
                    StageOp::Cluster(c) => {
                        // Clusters obey kmax except when a single gate is
                        // wider than kmax (it must still run somewhere).
                        let widest = c
                            .gate_indices
                            .iter()
                            .map(|&gi| circuit.gates()[gi].arity())
                            .max()
                            .unwrap_or(0);
                        let cap = (self.kmax as usize).max(widest);
                        assert!(
                            !c.qubits.is_empty() && c.qubits.len() <= cap,
                            "stage {si} op {oi}: cluster size {}",
                            c.qubits.len()
                        );
                        assert!(
                            c.qubits.windows(2).all(|w| w[0] < w[1]),
                            "cluster qubits unsorted"
                        );
                        assert!(
                            c.qubits.iter().all(|&q| q < l),
                            "cluster touches global position"
                        );
                        assert_eq!(c.matrix.k() as usize, c.qubits.len(), "matrix arity");
                        assert!(
                            c.matrix.unitarity_residual() < 1e-9,
                            "cluster matrix not unitary"
                        );
                        for &gi in &c.gate_indices {
                            // Gate qubits must lie inside the cluster under
                            // the stage mapping.
                            for q in circuit.gates()[gi].qubits() {
                                let p = stage.mapping[q as usize];
                                assert!(
                                    c.qubits.contains(&p),
                                    "stage {si} gate {gi}: qubit outside cluster"
                                );
                            }
                            tracker.execute(gi); // panics if out of order
                        }
                    }
                    StageOp::Diagonal(d) => {
                        assert_eq!(d.diag.len(), 1usize << d.positions.len(), "diag size");
                        for &gi in &d.gate_indices {
                            assert!(
                                circuit.gates()[gi].is_diagonal(),
                                "non-diagonal gate {gi} in diagonal op"
                            );
                            tracker.execute(gi);
                        }
                    }
                }
            }
            if let Some(swap) = &stage.swap {
                assert_eq!(swap.local_slots.len(), g as usize, "swap arity");
                assert!(
                    swap.local_slots.windows(2).all(|w| w[0] < w[1]),
                    "swap slots unsorted"
                );
                assert!(
                    swap.local_slots.iter().all(|&s| s < l),
                    "swap slot not local"
                );
            }
            mapping = Some(&stage.mapping);
        }
        assert!(
            tracker.is_done(),
            "{} gates never scheduled",
            tracker.n_remaining()
        );
    }
}

/// Transform a logical→physical mapping through a full swap: qubits at
/// `swap.local_slots[i]` and global position `l + i` exchange places.
pub fn apply_swap_to_mapping(mapping: &[u32], swap: &SwapOp, l: u32, g: u32) -> Vec<u32> {
    assert_eq!(swap.local_slots.len(), g as usize);
    let mut phys_to_logical = vec![0u32; mapping.len()];
    for (logical, &p) in mapping.iter().enumerate() {
        phys_to_logical[p as usize] = logical as u32;
    }
    let mut out = mapping.to_vec();
    for (i, &slot) in swap.local_slots.iter().enumerate() {
        let global_pos = l + i as u32;
        let ql = phys_to_logical[slot as usize];
        let qg = phys_to_logical[global_pos as usize];
        out[ql as usize] = global_pos;
        out[qg as usize] = slot;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_mapping_transform() {
        // n=4, l=2, g=2: logical i at physical i. Swap slots [0,1].
        let mapping = vec![0u32, 1, 2, 3];
        let swap = SwapOp {
            local_slots: vec![0, 1],
        };
        let out = apply_swap_to_mapping(&mapping, &swap, 2, 2);
        // logical 0 (phys 0) <-> logical 2 (phys 2); 1 <-> 3.
        assert_eq!(out, vec![2, 3, 0, 1]);
        // Swapping twice restores.
        let back = apply_swap_to_mapping(&out, &swap, 2, 2);
        assert_eq!(back, mapping);
    }

    #[test]
    fn swap_mapping_partial_slots() {
        // n=5, l=3, g=2, swap slots [0, 2]: global 3 <-> slot 0,
        // global 4 <-> slot 2; position 1 untouched.
        let mapping = vec![0u32, 1, 2, 3, 4];
        let swap = SwapOp {
            local_slots: vec![0, 2],
        };
        let out = apply_swap_to_mapping(&mapping, &swap, 3, 2);
        assert_eq!(out, vec![3, 1, 4, 0, 2]);
    }

    #[test]
    fn schedule_counters() {
        let sched = Schedule {
            n_qubits: 2,
            local_qubits: 2,
            kmax: 2,
            stages: vec![Stage {
                mapping: vec![0, 1],
                ops: vec![
                    StageOp::Cluster(Cluster {
                        qubits: vec![0, 1],
                        gate_indices: vec![0, 1, 2],
                        matrix: GateMatrix::identity(2),
                    }),
                    StageOp::Diagonal(DiagonalOp {
                        positions: vec![1],
                        diag: vec![c64::one(), c64::i()],
                        gate_indices: vec![3],
                    }),
                ],
                swap: None,
            }],
        };
        assert_eq!(sched.n_swaps(), 0);
        assert_eq!(sched.n_clusters(), 1);
        assert_eq!(sched.n_diagonal_ops(), 1);
        assert!((sched.gates_per_cluster() - 3.0).abs() < 1e-12);
        assert_eq!(sched.final_mapping(), &[0, 1]);
    }
}
