//! Communication statistics — the quantities plotted in Fig. 5 and used
//! in the paper's §4.1.2 speedup estimate.
//!
//! * [`global_gate_count`] — how many communication steps the per-gate
//!   scheme of \[5\]/\[19\] needs: one per gate that is dense (or worst-case
//!   dense) and touches a global qubit. This is the *lower-panel* series
//!   of Fig. 5; our scheduler's swap count is the upper panel.
//! * [`CommStats`] — byte volumes: one full global-to-local swap moves
//!   (almost) the whole distributed state through the network, which the
//!   paper notes equals the traffic of ONE global gate executed the
//!   per-gate way. The expected speedup from comm reduction is then
//!   `global_gates / 2 / n_swaps` (§4.1.2: 50x/(2·2) = 12.5x), the factor
//!   2 because an average global gate enjoys 2× better locality than a
//!   full swap.

use crate::config::SchedulerConfig;
use crate::stage::dense_for_scheduling;
use qsim_circuit::{Circuit, Gate};

/// Count the gates that require communication when executed individually
/// under the identity mapping with `l` local qubits.
///
/// `worst_case`: treat randomly-drawn T gates as dense (the dashed series
/// of Fig. 5); otherwise use actual diagonality (the solid "median
/// instance" series). The initial Hadamard layer is excluded — every
/// simulator (including \[5\]) initializes the uniform superposition
/// directly (§3.6).
pub fn global_gate_count(circuit: &Circuit, l: u32, worst_case: bool) -> usize {
    let cfg = SchedulerConfig {
        local_qubits: l,
        kmax: 1,
        specialize_diagonal: true,
        worst_case_dense: worst_case,
        swap_search: false,
        adjust_swaps: false,
        cluster_trials: 1,
        sweep_order: false,
    };
    let dense = dense_for_scheduling(circuit, &cfg);
    let mut skip_h = vec![true; circuit.n_qubits() as usize];
    let mut count = 0usize;
    for (gi, g) in circuit.gates().iter().enumerate() {
        // Skip each qubit's *initial* H (cycle-0 layer).
        if let Gate::H(q) = *g {
            if skip_h[q as usize] {
                skip_h[q as usize] = false;
                continue;
            }
        }
        if dense[gi] && g.qubits().iter().any(|&q| q >= l) {
            count += 1;
        }
    }
    count
}

/// Byte-volume accounting for an (n, l) distributed execution.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CommStats {
    pub n_qubits: u32,
    pub local_qubits: u32,
    /// Bytes moved through the network by ONE full global-to-local swap
    /// (sum over ranks of data sent; excludes each rank's self-chunk).
    pub bytes_per_swap: u64,
    /// Communication steps of the per-gate baseline.
    pub global_gates: usize,
    /// Communication steps of the scheduled plan.
    pub n_swaps: usize,
}

impl CommStats {
    /// `amp_bytes` = 16 for f64, 8 for f32 amplitudes.
    pub fn new(n: u32, l: u32, global_gates: usize, n_swaps: usize, amp_bytes: u64) -> Self {
        let ranks = 1u64 << (n - l);
        let local = 1u64 << l;
        // All-to-all: each rank keeps 1/ranks of its slice, sends the rest.
        let bytes_per_swap = ranks * local * amp_bytes / ranks * (ranks - 1);
        Self {
            n_qubits: n,
            local_qubits: l,
            bytes_per_swap,
            global_gates,
            n_swaps,
        }
    }

    /// Total bytes of the scheduled plan.
    pub fn scheduled_bytes(&self) -> u64 {
        self.bytes_per_swap * self.n_swaps as u64
    }

    /// Total bytes of the per-gate baseline (one swap-equivalent per
    /// global gate).
    pub fn baseline_bytes(&self) -> u64 {
        self.bytes_per_swap * self.global_gates as u64
    }

    /// The paper's §4.1.2 expected comm-reduction factor:
    /// `global_gates / (2 · n_swaps)` — the 2 accounts for the average
    /// global gate being ~2× faster than a full swap thanks to
    /// communication locality on low-order global qubits.
    pub fn expected_reduction(&self) -> f64 {
        if self.n_swaps == 0 {
            f64::INFINITY
        } else {
            self.global_gates as f64 / (2.0 * self.n_swaps as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    #[test]
    fn no_globals_no_comm() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 16,
            seed: 0,
        });
        assert_eq!(global_gate_count(&c, 9, true), 0);
    }

    #[test]
    fn worst_case_counts_at_least_median() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 4,
            cols: 4,
            depth: 25,
            seed: 0,
        });
        for l in [12u32, 14] {
            let worst = global_gate_count(&c, l, true);
            let median = global_gate_count(&c, l, false);
            assert!(worst >= median, "l={l}: {worst} < {median}");
            assert!(worst > 0);
        }
    }

    #[test]
    fn initial_hadamards_excluded_but_later_h_counted() {
        let mut c = qsim_circuit::Circuit::new(2);
        c.h(1); // initial H on global qubit: skipped
        c.h(1); // a later H: counted
        c.t(1); // diagonal: not counted in median mode
        assert_eq!(global_gate_count(&c, 1, false), 1);
    }

    #[test]
    fn fewer_local_qubits_more_global_gates() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 4,
            cols: 5,
            depth: 25,
            seed: 1,
        });
        let g14 = global_gate_count(&c, 14, true);
        let g17 = global_gate_count(&c, 17, true);
        assert!(g14 >= g17, "more globals must mean >= comm: {g14} vs {g17}");
    }

    #[test]
    fn comm_stats_math() {
        // n=4, l=2: 4 ranks of 4 amplitudes; one swap moves
        // 4 ranks * 4 amps * 16B * 3/4 = 192 bytes.
        let s = CommStats::new(4, 2, 10, 2, 16);
        assert_eq!(s.bytes_per_swap, 192);
        assert_eq!(s.scheduled_bytes(), 384);
        assert_eq!(s.baseline_bytes(), 1920);
        assert!((s.expected_reduction() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn paper_example_reduction() {
        // §4.1.2: 50 global gates, 2 swaps -> 12.5x.
        let s = CommStats::new(42, 30, 50, 2, 16);
        assert!((s.expected_reduction() - 12.5).abs() < 1e-12);
    }
}
