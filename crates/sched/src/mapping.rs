//! Qubit mapping — §3.6.2.
//!
//! Kernels applied to high-order bit locations suffer a set-associativity
//! cliff (Fig. 6/9), so the bit-location of each qubit is optimized to
//! maximize the number of clusters acting on low-order locations. The
//! paper's heuristic, implemented verbatim:
//!
//! > Assign the qubit to bit-location 0 such that the number of clusters
//! > accessing bit-location 0 is maximal. From now on, ignore all clusters
//! > which act on this qubit and assign bit-locations 1, 2, and 3 in the
//! > same manner. Bit locations 4, 5, 6, and 7 are assigned the same way,
//! > except that after each step, only clusters acting on two of these
//! > four bit-locations are ignored when assigning the next higher
//! > bit-location.
//!
//! The heuristic consumes the cluster structure of a *preliminary*
//! schedule and produces a relabeling `map[old_qubit] = new_position`;
//! callers re-plan the remapped circuit.

use crate::config::SchedulerConfig;
use crate::schedule::StageOp;
use crate::stage::plan;
use qsim_circuit::Circuit;
use std::collections::HashSet;

/// Compute the §3.6.2 relabeling for a circuit: run a preliminary plan,
/// extract each cluster's logical qubit set, apply the heuristic.
pub fn optimize_qubit_mapping(circuit: &Circuit, cfg: &SchedulerConfig) -> Vec<u32> {
    let prelim = plan(circuit, cfg);
    // Cluster qubit sets in *logical* labels (translate through each
    // stage's mapping).
    let mut clusters: Vec<HashSet<u32>> = Vec::new();
    for stage in &prelim.stages {
        // physical -> logical for this stage.
        let mut p2l = vec![0u32; stage.mapping.len()];
        for (logical, &p) in stage.mapping.iter().enumerate() {
            p2l[p as usize] = logical as u32;
        }
        for op in &stage.ops {
            if let StageOp::Cluster(c) = op {
                clusters.push(c.qubits.iter().map(|&p| p2l[p as usize]).collect());
            }
        }
    }
    mapping_from_clusters(&clusters, circuit.n_qubits())
}

/// The bare heuristic: given cluster qubit sets, produce
/// `map[old] = new`.
pub fn mapping_from_clusters(clusters: &[HashSet<u32>], n: u32) -> Vec<u32> {
    let mut assigned: Vec<Option<u32>> = vec![None; n as usize]; // old -> new
    let mut active: Vec<bool> = vec![true; clusters.len()];
    // Qubits already holding new positions 4..7 (for the second phase's
    // "two of these four" rule).
    let mut high_block: Vec<u32> = Vec::new();

    for new_pos in 0..n {
        // Count active clusters per unassigned qubit.
        let mut count = vec![0usize; n as usize];
        for (ci, cl) in clusters.iter().enumerate() {
            if !active[ci] {
                continue;
            }
            for &q in cl {
                if assigned[q as usize].is_none() {
                    count[q as usize] += 1;
                }
            }
        }
        // Pick the unassigned qubit with maximal count (ties: lowest id).
        let winner = (0..n)
            .filter(|&q| assigned[q as usize].is_none())
            .max_by_key(|&q| (count[q as usize], std::cmp::Reverse(q)))
            .expect("unassigned qubit must exist");
        assigned[winner as usize] = Some(new_pos);

        // Deactivate clusters per the paper's rule.
        match new_pos {
            0..=3 => {
                for (ci, cl) in clusters.iter().enumerate() {
                    if active[ci] && cl.contains(&winner) {
                        active[ci] = false;
                    }
                }
            }
            4..=7 => {
                high_block.push(winner);
                for (ci, cl) in clusters.iter().enumerate() {
                    if active[ci] {
                        let hits = high_block.iter().filter(|q| cl.contains(q)).count();
                        if hits >= 2 {
                            active[ci] = false;
                        }
                    }
                }
            }
            _ => {
                // Positions >= 8: assignment by remaining frequency only.
            }
        }
    }
    assigned.into_iter().map(|a| a.unwrap()).collect()
}

/// Fraction of clusters acting only on positions `< cutoff` under a
/// mapping (fully low-order clusters avoid the associativity cliff
/// entirely).
pub fn low_order_fraction(clusters: &[HashSet<u32>], map: &[u32], cutoff: u32) -> f64 {
    if clusters.is_empty() {
        return 1.0;
    }
    let low = clusters
        .iter()
        .filter(|cl| cl.iter().all(|&q| map[q as usize] < cutoff))
        .count();
    low as f64 / clusters.len() as f64
}

/// Fraction of clusters touching at least one position `< cutoff` — the
/// objective the greedy heuristic directly maximizes ("the number of
/// clusters accessing bit-location 0 is maximal", then 1, 2, 3, …).
pub fn touch_low_fraction(clusters: &[HashSet<u32>], map: &[u32], cutoff: u32) -> f64 {
    if clusters.is_empty() {
        return 1.0;
    }
    let low = clusters
        .iter()
        .filter(|cl| cl.iter().any(|&q| map[q as usize] < cutoff))
        .count();
    low as f64 / clusters.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    fn set(v: &[u32]) -> HashSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn hottest_qubit_gets_position_zero() {
        // Qubit 7 appears in every cluster.
        let clusters = vec![set(&[7, 1]), set(&[7, 2]), set(&[7, 3]), set(&[4, 5])];
        let map = mapping_from_clusters(&clusters, 8);
        assert_eq!(map[7], 0);
        // Bijection check.
        let mut sorted = map.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ignored_clusters_shift_focus() {
        // After qubit 0 takes position 0 (3 clusters), its clusters are
        // ignored; qubit 3 (2 remaining clusters) must beat qubit 1
        // (appears only in ignored clusters).
        let clusters = vec![
            set(&[0, 1]),
            set(&[0, 1]),
            set(&[0, 2]),
            set(&[3, 4]),
            set(&[3, 5]),
        ];
        let map = mapping_from_clusters(&clusters, 6);
        assert_eq!(map[0], 0);
        assert_eq!(map[3], 1);
    }

    #[test]
    fn mapping_improves_low_order_fraction() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 4,
            cols: 4,
            depth: 20,
            seed: 3,
        });
        let cfg = SchedulerConfig::single_node(16, 4);
        let prelim = plan(&c, &cfg);
        let clusters: Vec<HashSet<u32>> = prelim
            .stages
            .iter()
            .flat_map(|s| {
                s.ops.iter().filter_map(|op| match op {
                    StageOp::Cluster(cl) => Some(cl.qubits.iter().copied().collect()),
                    _ => None,
                })
            })
            .collect();
        let identity: Vec<u32> = (0..16).collect();
        let optimized = mapping_from_clusters(&clusters, 16);
        // The greedy objective: clusters reached by the first 4 picks.
        let f_id = touch_low_fraction(&clusters, &identity, 4);
        let f_opt = touch_low_fraction(&clusters, &optimized, 4);
        assert!(
            f_opt >= f_id,
            "heuristic must not hurt its own objective: {f_opt:.3} vs identity {f_id:.3}"
        );
    }

    #[test]
    fn end_to_end_remap_still_verifies() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 16,
            seed: 1,
        });
        let cfg = SchedulerConfig::single_node(12, 4);
        let map = optimize_qubit_mapping(&c, &cfg);
        let remapped = c.remapped(&map);
        let s = plan(&remapped, &cfg);
        s.verify(&remapped);
    }

    #[test]
    fn empty_cluster_list() {
        let map = mapping_from_clusters(&[], 4);
        let mut sorted = map.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(low_order_fraction(&[], &map, 2), 1.0);
    }
}
