//! Stage-sweep planning for the cache-tiled executor.
//!
//! Two passes over a stage's op list feed `qsim-kernels::sweep`:
//!
//! * [`order_ops_for_sweep`] (run inside `build_stage_ops` when
//!   `SchedulerConfig::sweep_order` is set) reorders ops so consecutive
//!   clusters share qubit-footprint bits. Only ops on *disjoint* position
//!   sets are ever commuted — any shared position (dense or diagonal) is
//!   treated as a dependency — so the reordered list executes gates in the
//!   same per-qubit program order and `Schedule::verify` still passes.
//! * [`plan_stage_sweeps`] groups the (already ordered) ops into
//!   *passes*: a run of consecutive ops whose dense footprints fit in one
//!   cache tile becomes a [`SweepPass::Tiled`] (one streaming pass over
//!   the state applies them all); a cluster wider than the tile becomes a
//!   [`SweepPass::Full`] fallback. Diagonal ops never cost tile budget —
//!   operands outside the tile resolve to per-tile constant bits — so
//!   they always join the current pass.
//!
//! Planning never reorders: grouping respects the op list exactly, which
//! is what makes the tiled executor bit-exact against the per-gate
//! oracle (both walk the same op order).

use crate::schedule::StageOp;
use std::collections::BTreeSet;

/// Default tile budget (log2 amplitudes) used by the footprint-ordering
/// pass; execution re-plans with the measured tile size, ordering only
/// needs a representative cache scale (2^14 amplitudes = 256 KiB).
pub const DEFAULT_TILE_QUBITS: u32 = 14;

/// One streaming pass of a stage sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepPass {
    /// Consecutive ops applied tile-by-tile in a single pass. `tile` is
    /// the sorted physical position set spanned by the tile's low bits
    /// (dense footprints padded with the lowest unused local positions).
    Tiled {
        op_indices: Vec<usize>,
        tile: Vec<u32>,
    },
    /// A dense cluster wider than the tile: dedicated full sweep.
    Full { op_index: usize },
}

/// A stage's execution plan for the tiled executor.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    pub passes: Vec<SweepPass>,
    /// Tile budget the plan was built for (min(requested, local_qubits)).
    pub tile_qubits: u32,
    /// Total ops planned (= per-gate baseline pass count).
    pub n_ops: usize,
}

/// Positions an op occupies: cluster qubits or diagonal positions
/// (diagonal positions may be >= local_qubits — rank bits).
fn op_positions(op: &StageOp) -> &[u32] {
    match op {
        StageOp::Cluster(c) => &c.qubits,
        StageOp::Diagonal(d) => &d.positions,
    }
}

/// True when the op folds into a pass as per-tile phases: specialized
/// diagonal ops, and fused clusters whose matrix happens to be diagonal
/// (the same deterministic test the executor uses).
fn is_diagonal_like(op: &StageOp) -> bool {
    match op {
        StageOp::Diagonal(_) => true,
        StageOp::Cluster(c) => c.matrix.as_diagonal().is_some(),
    }
}

/// Group a stage's ops into sweep passes under a `tile_qubits` budget.
pub fn plan_stage_sweeps(ops: &[StageOp], local_qubits: u32, tile_qubits: u32) -> SweepPlan {
    let cap = tile_qubits.min(local_qubits).max(1) as usize;
    let mut passes: Vec<SweepPass> = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    let mut union: BTreeSet<u32> = BTreeSet::new();

    let flush = |group: &mut Vec<usize>, union: &mut BTreeSet<u32>, passes: &mut Vec<SweepPass>| {
        if group.is_empty() {
            return;
        }
        // Pad the dense union with the lowest unused local positions up
        // to the full tile budget: bigger tiles amortize the gather, and
        // a union within {0..cap} yields a contiguous (zero-copy) tile.
        let mut tile: Vec<u32> = union.iter().copied().collect();
        let mut next = 0u32;
        while tile.len() < cap && next < local_qubits {
            if !union.contains(&next) {
                tile.push(next);
            }
            next += 1;
        }
        tile.sort_unstable();
        passes.push(SweepPass::Tiled {
            op_indices: std::mem::take(group),
            tile,
        });
        union.clear();
    };

    for (oi, op) in ops.iter().enumerate() {
        if is_diagonal_like(op) {
            group.push(oi);
            continue;
        }
        let qs = op_positions(op);
        if qs.len() > cap {
            flush(&mut group, &mut union, &mut passes);
            passes.push(SweepPass::Full { op_index: oi });
            continue;
        }
        let grown = qs.iter().filter(|p| !union.contains(p)).count();
        if union.len() + grown > cap {
            flush(&mut group, &mut union, &mut passes);
        }
        union.extend(qs.iter().copied());
        group.push(oi);
    }
    flush(&mut group, &mut union, &mut passes);

    SweepPlan {
        passes,
        tile_qubits: cap as u32,
        n_ops: ops.len(),
    }
}

/// Reorder a stage's ops by qubit footprint (list scheduling).
///
/// An op is *ready* when every earlier op sharing a position with it has
/// been emitted — shared positions are dependencies regardless of
/// commutation, so per-qubit program order (what `Schedule::verify`
/// checks) is preserved exactly. Among ready ops, diagonal-like ops are
/// emitted eagerly (they are free for any pass), then the cluster whose
/// footprint grows the running tile union least; when even the best
/// candidate would overflow the budget the union resets (a new pass will
/// start there anyway).
pub fn order_ops_for_sweep(ops: Vec<StageOp>, tile_qubits: u32) -> Vec<StageOp> {
    let n = ops.len();
    if n <= 1 {
        return ops;
    }
    let budget = tile_qubits.max(1) as usize;
    let conflicts: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            let pj = op_positions(&ops[j]);
            (0..j)
                .filter(|&i| op_positions(&ops[i]).iter().any(|p| pj.contains(p)))
                .collect()
        })
        .collect();
    let diag_like: Vec<bool> = ops.iter().map(is_diagonal_like).collect();

    let mut emitted = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut union: BTreeSet<u32> = BTreeSet::new();
    while order.len() < n {
        let ready: Vec<usize> = (0..n)
            .filter(|&j| !emitted[j] && conflicts[j].iter().all(|&i| emitted[i]))
            .collect();
        debug_assert!(!ready.is_empty(), "footprint ordering stuck");
        // Diagonals first, in index order: free to fold into any pass.
        let mut took_diag = false;
        for &j in &ready {
            if diag_like[j] {
                emitted[j] = true;
                order.push(j);
                took_diag = true;
            }
        }
        if took_diag {
            continue;
        }
        let &best = ready
            .iter()
            .min_by_key(|&&j| {
                let qs = op_positions(&ops[j]);
                let grown = qs.iter().filter(|p| !union.contains(p)).count();
                (grown, j)
            })
            .unwrap();
        let qs = op_positions(&ops[best]);
        let grown = qs.iter().filter(|p| !union.contains(p)).count();
        if union.len() + grown > budget {
            union.clear();
        }
        union.extend(qs.iter().copied());
        emitted[best] = true;
        order.push(best);
    }

    let mut slots: Vec<Option<StageOp>> = ops.into_iter().map(Some).collect();
    order
        .into_iter()
        .map(|j| slots[j].take().expect("op emitted twice"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Cluster, DiagonalOp};
    use qsim_util::c64;
    use qsim_util::matrix::GateMatrix;

    fn dense_cluster(qubits: Vec<u32>) -> StageOp {
        // A Hadamard-like non-diagonal matrix embedded at arity |qubits|.
        let k = qubits.len() as u32;
        let h = GateMatrix::from_rows(
            1,
            vec![
                c64::new(0.5f64.sqrt(), 0.0),
                c64::new(0.5f64.sqrt(), 0.0),
                c64::new(0.5f64.sqrt(), 0.0),
                c64::new(-(0.5f64.sqrt()), 0.0),
            ],
        );
        let mut m = h.clone();
        for _ in 1..k {
            m = m.kron(&h);
        }
        StageOp::Cluster(Cluster {
            qubits,
            gate_indices: vec![],
            matrix: m,
        })
    }

    fn diag_op(positions: Vec<u32>) -> StageOp {
        let d = vec![c64::one(); 1 << positions.len()];
        StageOp::Diagonal(DiagonalOp {
            positions,
            diag: d,
            gate_indices: vec![],
        })
    }

    fn diag_cluster(qubits: Vec<u32>) -> StageOp {
        StageOp::Cluster(Cluster {
            matrix: GateMatrix::identity(qubits.len() as u32),
            qubits,
            gate_indices: vec![],
        })
    }

    #[test]
    fn groups_consecutive_ops_under_budget() {
        let ops = vec![
            dense_cluster(vec![0, 1]),
            dense_cluster(vec![2, 3]),
            dense_cluster(vec![0, 2]),
        ];
        let plan = plan_stage_sweeps(&ops, 10, 4);
        assert_eq!(plan.passes.len(), 1);
        match &plan.passes[0] {
            SweepPass::Tiled { op_indices, tile } => {
                assert_eq!(op_indices, &vec![0, 1, 2]);
                assert_eq!(tile, &vec![0, 1, 2, 3]);
            }
            _ => panic!("expected tiled pass"),
        }
    }

    #[test]
    fn splits_when_budget_exceeded_without_reordering() {
        let ops = vec![
            dense_cluster(vec![0, 1]),
            dense_cluster(vec![4, 5]),
            dense_cluster(vec![0, 1]),
        ];
        let plan = plan_stage_sweeps(&ops, 8, 2);
        // Budget 2: each distinct footprint forces a new pass; op 2 can't
        // join pass 0 because planning never reorders.
        assert_eq!(plan.passes.len(), 3);
        assert_eq!(plan.n_ops, 3);
    }

    #[test]
    fn wide_cluster_falls_back_to_full_pass() {
        let ops = vec![dense_cluster(vec![0, 1, 2]), dense_cluster(vec![0, 1])];
        let plan = plan_stage_sweeps(&ops, 12, 2);
        assert_eq!(
            plan.passes[0],
            SweepPass::Full { op_index: 0 },
            "3-qubit cluster exceeds the 2-qubit tile"
        );
        assert!(matches!(plan.passes[1], SweepPass::Tiled { .. }));
    }

    #[test]
    fn diagonals_and_diagonal_clusters_never_cost_budget() {
        let ops = vec![
            dense_cluster(vec![0, 1]),
            diag_op(vec![7]),
            diag_cluster(vec![5, 6]),
            dense_cluster(vec![0, 1]),
        ];
        let plan = plan_stage_sweeps(&ops, 8, 2);
        assert_eq!(plan.passes.len(), 1, "diagonals fold into the pass");
    }

    #[test]
    fn tile_is_padded_to_budget_with_low_positions() {
        let ops = vec![dense_cluster(vec![5, 7])];
        let plan = plan_stage_sweeps(&ops, 10, 4);
        match &plan.passes[0] {
            SweepPass::Tiled { tile, .. } => assert_eq!(tile, &vec![0, 1, 5, 7]),
            _ => panic!(),
        }
    }

    #[test]
    fn ordering_groups_shared_footprints() {
        // Interleaved footprints {0,1} / {4,5}: ordering should bring the
        // {0,1} clusters together (they are independent of the {4,5} one).
        let ops = vec![
            dense_cluster(vec![0, 1]),
            dense_cluster(vec![4, 5]),
            dense_cluster(vec![0, 1]),
        ];
        let ordered = order_ops_for_sweep(ops, 2);
        let footprints: Vec<Vec<u32>> = ordered.iter().map(|o| op_positions(o).to_vec()).collect();
        assert_eq!(footprints, vec![vec![0, 1], vec![0, 1], vec![4, 5]]);
        // And the plan now needs only 2 passes instead of 3.
        let plan = plan_stage_sweeps(&ordered, 8, 2);
        assert_eq!(plan.passes.len(), 2);
    }

    #[test]
    fn ordering_respects_shared_position_dependencies() {
        // Two ops sharing qubit 1 must keep their relative order even
        // though one is diagonal.
        let ops = vec![
            dense_cluster(vec![0, 1]),
            diag_op(vec![1]),
            dense_cluster(vec![1, 2]),
        ];
        let ordered = order_ops_for_sweep(ops, 8);
        assert!(matches!(&ordered[0], StageOp::Cluster(c) if c.qubits == vec![0, 1]));
        assert!(matches!(&ordered[1], StageOp::Diagonal(_)));
        assert!(matches!(&ordered[2], StageOp::Cluster(c) if c.qubits == vec![1, 2]));
    }

    #[test]
    fn ordering_emits_independent_diagonals_early() {
        let ops = vec![dense_cluster(vec![0, 1]), diag_op(vec![9])];
        let ordered = order_ops_for_sweep(ops, 8);
        // The independent diagonal on qubit 9 moves first (free fold).
        assert!(matches!(&ordered[0], StageOp::Diagonal(_)));
    }

    #[test]
    fn ordering_preserves_multiset() {
        let ops = vec![
            dense_cluster(vec![0, 1]),
            dense_cluster(vec![2, 3]),
            diag_op(vec![0]),
            dense_cluster(vec![0, 2]),
        ];
        let ordered = order_ops_for_sweep(ops.clone(), 4);
        assert_eq!(ordered.len(), ops.len());
    }
}
