//! Floating-point precision abstraction.
//!
//! The paper stores amplitudes in double precision and notes (§5) that a
//! 46-qubit simulation becomes feasible in single precision with the same
//! node count. All state vectors and kernels in this workspace are generic
//! over [`Real`] so both precisions share one implementation.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar usable as the component type of an amplitude.
///
/// Implemented for `f32` and `f64` only. The trait is deliberately minimal:
/// it exposes exactly the operations the kernels and observables need, with
/// `mul_add` front and center because the Eq. (2)–(3) kernel re-association
/// of the paper is built on fused multiply-add.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    const HALF: Self;
    /// Machine epsilon of the representation.
    const EPSILON: Self;
    /// Bytes occupied by one scalar (8 for f64, 4 for f32); a complex
    /// amplitude takes `2 * BYTES`.
    const BYTES: usize;
    /// Canonical precision name (`"f64"` / `"f32"`) — recorded in
    /// checkpoint manifests and telemetry so artifacts from different
    /// tiers are never silently mixed.
    const NAME: &'static str;

    /// Fused multiply-add: `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn ln(self) -> Self;
    fn log2(self) -> Self;
    fn exp(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    /// Raw IEEE-754 bit pattern, zero-extended to 64 bits (an f32
    /// occupies the low 32). Exact — the basis of bit-stable snapshot
    /// digests, which must never round-trip through a wider type.
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Real::to_bits_u64`]; high bits are ignored for f32.
    fn from_bits_u64(bits: u64) -> Self;
    fn from_usize(v: usize) -> Self;
    fn is_finite(self) -> bool;
    fn max_val(self, other: Self) -> Self;
    fn min_val(self, other: Self) -> Self;
    /// Mathematical constant π in this precision.
    fn pi() -> Self;
    /// 1/√2, the Hadamard amplitude.
    fn frac_1_sqrt_2() -> Self;
}

macro_rules! impl_real {
    ($t:ty, $pi:expr, $f1s2:expr, $bytes:expr, $name:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = $bytes;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn log2(self) -> Self {
                <$t>::log2(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn to_bits_u64(self) -> u64 {
                <$t>::to_bits(self) as u64
            }
            #[inline(always)]
            fn from_bits_u64(bits: u64) -> Self {
                <$t>::from_bits(bits as _)
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max_val(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min_val(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn pi() -> Self {
                $pi
            }
            #[inline(always)]
            fn frac_1_sqrt_2() -> Self {
                $f1s2
            }
        }
    };
}

impl_real!(
    f64,
    core::f64::consts::PI,
    core::f64::consts::FRAC_1_SQRT_2,
    8,
    "f64"
);
impl_real!(
    f32,
    core::f32::consts::PI,
    core::f32::consts::FRAC_1_SQRT_2,
    4,
    "f32"
);

#[cfg(test)]
mod tests {
    use super::*;

    fn mul_add_generic<T: Real>(a: T, b: T, c: T) -> T {
        a.mul_add(b, c)
    }

    #[test]
    fn fma_matches_f64() {
        assert_eq!(mul_add_generic(2.0f64, 3.0, 4.0), 10.0);
        assert_eq!(mul_add_generic(2.0f32, 3.0, 4.0), 10.0);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f32::BYTES, 4);
        assert!((f64::frac_1_sqrt_2() * f64::frac_1_sqrt_2() - 0.5).abs() < 1e-15);
        assert!((f32::frac_1_sqrt_2() * f32::frac_1_sqrt_2() - 0.5).abs() < 1e-6);
        assert!((f64::pi() - std::f64::consts::PI).abs() == 0.0);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f64::from_usize(17), 17.0);
        assert_eq!(f32::from_f64(0.25), 0.25f32);
        assert_eq!(0.75f64.to_f64(), 0.75);
        assert_eq!(f64::ONE + f64::ONE, f64::TWO);
        assert_eq!(f64::HALF * f64::TWO, f64::ONE);
    }

    #[test]
    fn min_max_behave() {
        assert_eq!(1.0f64.max_val(2.0), 2.0);
        assert_eq!(1.0f64.min_val(2.0), 1.0);
    }

    #[test]
    fn bit_patterns_round_trip_exactly() {
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
        for v in [0.0f64, -0.0, 1.5, f64::EPSILON, -1e300] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
        for v in [0.0f32, -0.0, 1.5, f32::EPSILON, -1e30] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
            assert!(v.to_bits_u64() <= u32::MAX as u64, "zero-extended");
        }
    }
}
