//! FLOP and memory-traffic accounting for the roofline experiments.
//!
//! The paper (§3.1) counts a general single-qubit gate at
//! `2·(4[mul] + 2[add]) + 2[add] = 14` FLOP per output amplitude and derives
//! an operational intensity below 1/2 FLOP/byte — the basis of Fig. 2.
//! Generalized to a dense k-qubit gate, each output amplitude is a scalar
//! product of dimension 2^k: `6·2^k` FLOP of complex multiplies plus
//! `2·(2^k − 1)` FLOP of complex additions, i.e. `8·2^k − 2` per output.
//!
//! These formulas are used both to report GFLOPS in the benchmark harnesses
//! and to place kernels on the roofline (Fig. 2a/2b).

/// FLOP per *output amplitude* for a dense k-qubit gate.
///
/// `flops_per_amplitude(1) == 14`, matching the paper's §3.1 count.
#[inline]
pub fn flops_per_amplitude(k: u32) -> u64 {
    let dim = 1u64 << k;
    8 * dim - 2
}

/// Total FLOP for applying one dense k-qubit gate to an n-qubit state.
#[inline]
pub fn gate_flops(n: u32, k: u32) -> u64 {
    (1u64 << n) * flops_per_amplitude(k)
}

/// Minimum memory traffic in bytes for an **in-place** k-qubit gate sweep
/// over an n-qubit state: every amplitude is read once and written once.
///
/// `scalar_bytes` is 8 for f64 and 4 for f32 components.
#[inline]
pub fn inplace_traffic_bytes(n: u32, scalar_bytes: u64) -> u64 {
    let amp = 2 * scalar_bytes;
    2 * (1u64 << n) * amp
}

/// Memory traffic for the **two-vector** (input + output) variant used by
/// the naive baseline: reads the input, writes the output, and — on
/// write-allocate caches — additionally reads the output lines for
/// ownership.
#[inline]
pub fn twovec_traffic_bytes(n: u32, scalar_bytes: u64) -> u64 {
    let amp = 2 * scalar_bytes;
    3 * (1u64 << n) * amp
}

/// Operational intensity (FLOP/byte) of an in-place dense k-qubit kernel.
#[inline]
pub fn operational_intensity(k: u32, scalar_bytes: u64) -> f64 {
    flops_per_amplitude(k) as f64 / (4 * scalar_bytes) as f64
}

/// GFLOPS achieved by `flops` of work done in `seconds`.
#[inline]
pub fn gflops(flops: u64, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "non-positive duration");
    flops as f64 / seconds / 1e9
}

/// A point on the roofline: attainable performance is
/// `min(peak_flops, bandwidth × intensity)`.
#[inline]
pub fn roofline_bound(peak_gflops: f64, bw_gbytes: f64, intensity: f64) -> f64 {
    peak_gflops.min(bw_gbytes * intensity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_count_matches_paper() {
        assert_eq!(flops_per_amplitude(1), 14);
    }

    #[test]
    fn k_scaling() {
        // 8·2^k − 2.
        assert_eq!(flops_per_amplitude(2), 30);
        assert_eq!(flops_per_amplitude(4), 126);
        assert_eq!(flops_per_amplitude(5), 254);
    }

    #[test]
    fn single_qubit_intensity_below_half() {
        // The paper's §3.1 observation: OI < 1/2 for f64.
        let oi = operational_intensity(1, 8);
        assert!(oi < 0.5, "oi = {oi}");
        assert!((oi - 14.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn four_qubit_intensity_near_four() {
        // Fig. 2 places the 4-qubit kernel near OI ≈ 4 FLOP/byte.
        let oi = operational_intensity(4, 8);
        assert!((oi - 126.0 / 32.0).abs() < 1e-12);
        assert!(oi > 3.9 && oi < 4.0);
    }

    #[test]
    fn f32_doubles_intensity() {
        assert!((operational_intensity(1, 4) - 2.0 * operational_intensity(1, 8)).abs() < 1e-12);
    }

    #[test]
    fn traffic_and_total_flops() {
        assert_eq!(gate_flops(10, 1), 1024 * 14);
        assert_eq!(inplace_traffic_bytes(10, 8), 1024 * 32);
        assert_eq!(twovec_traffic_bytes(10, 8), 1024 * 48);
    }

    #[test]
    fn gflops_and_roofline() {
        assert!((gflops(2_000_000_000, 1.0) - 2.0).abs() < 1e-12);
        // Memory-bound region.
        assert_eq!(roofline_bound(1000.0, 100.0, 0.5), 50.0);
        // Compute-bound region.
        assert_eq!(roofline_bound(1000.0, 100.0, 100.0), 1000.0);
    }
}
