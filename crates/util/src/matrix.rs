//! Dense k-qubit gate matrices.
//!
//! A [`GateMatrix`] is a row-major 2^k x 2^k complex matrix. Index
//! convention: bit `j` of a row/column index corresponds to the gate's
//! j-th qubit operand, little-endian - the same convention
//! [`crate::bits::IndexExpander`] uses for gather offsets, so a matrix and
//! an expander built from the same operand list always agree.
//!
//! [`GateMatrix::permuted_qubits`] implements the paper's SS3.2
//! pre-permutation: since the same matrix is reused 2^{n-k} times, its
//! entries are permuted once so the kernel can gather amplitudes in
//! ascending qubit order. [`GateMatrix::embed`] and
//! [`GateMatrix::matmul`] are the fusion primitives of the scheduler
//! (SS3.6.1 step 2). The kernel-facing packed layout lives in
//! `qsim-kernels`.

use crate::bits::gather_bits;
use crate::complex::Complex;
use crate::precision::Real;

/// A dense 2^k × 2^k complex gate matrix, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct GateMatrix<T> {
    k: u32,
    data: Vec<Complex<T>>,
}

impl<T: Real> GateMatrix<T> {
    /// Create from row-major entries; `data.len()` must be `4^k`.
    pub fn from_rows(k: u32, data: Vec<Complex<T>>) -> Self {
        let dim = 1usize << k;
        assert_eq!(data.len(), dim * dim, "matrix size mismatch for k={k}");
        Self { k, data }
    }

    /// Identity on k qubits.
    pub fn identity(k: u32) -> Self {
        let dim = 1usize << k;
        let mut data = vec![Complex::zero(); dim * dim];
        for i in 0..dim {
            data[i * dim + i] = Complex::one();
        }
        Self { k, data }
    }

    /// Number of qubit operands k.
    #[inline(always)]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Matrix dimension 2^k.
    #[inline(always)]
    pub fn dim(&self) -> usize {
        1usize << self.k
    }

    #[inline(always)]
    pub fn get(&self, row: usize, col: usize) -> Complex<T> {
        self.data[row * self.dim() + col]
    }

    #[inline(always)]
    pub fn set(&mut self, row: usize, col: usize, v: Complex<T>) {
        let d = self.dim();
        self.data[row * d + col] = v;
    }

    /// Row-major entries.
    #[inline(always)]
    pub fn entries(&self) -> &[Complex<T>] {
        &self.data
    }

    /// Matrix product `self * rhs` (apply `rhs` first).
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.k, rhs.k, "dimension mismatch");
        let d = self.dim();
        let mut out = vec![Complex::zero(); d * d];
        for i in 0..d {
            for l in 0..d {
                let a = self.get(i, l);
                if a == Complex::zero() {
                    continue;
                }
                for j in 0..d {
                    out[i * d + j] += a * rhs.get(l, j);
                }
            }
        }
        Self::from_rows(self.k, out)
    }

    /// Kronecker product: `self ⊗ rhs`, where `rhs`'s qubits become the
    /// low-order operands of the result (little-endian convention).
    pub fn kron(&self, rhs: &Self) -> Self {
        let (da, db) = (self.dim(), rhs.dim());
        let k = self.k + rhs.k;
        let d = da * db;
        let mut out = vec![Complex::zero(); d * d];
        for ia in 0..da {
            for ja in 0..da {
                let a = self.get(ia, ja);
                for ib in 0..db {
                    for jb in 0..db {
                        out[(ia * db + ib) * d + (ja * db + jb)] = a * rhs.get(ib, jb);
                    }
                }
            }
        }
        Self::from_rows(k, out)
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Self {
        let d = self.dim();
        let mut out = vec![Complex::zero(); d * d];
        for i in 0..d {
            for j in 0..d {
                out[j * d + i] = self.get(i, j).conj();
            }
        }
        Self::from_rows(self.k, out)
    }

    /// Largest absolute deviation of `self†·self` from the identity —
    /// a unitarity residual used by tests and debug assertions.
    pub fn unitarity_residual(&self) -> T {
        let prod = self.dagger().matmul(self);
        let d = self.dim();
        let mut worst = T::ZERO;
        for i in 0..d {
            for j in 0..d {
                let expect = if i == j {
                    Complex::one()
                } else {
                    Complex::zero()
                };
                worst = worst.max_val((prod.get(i, j) - expect).abs());
            }
        }
        worst
    }

    /// Reorder the qubit operands: `perm[j]` names which *old* operand
    /// becomes the new operand `j`. Row/column index bits are re-gathered
    /// accordingly.
    ///
    /// This implements the paper's pre-permutation for sorted qubit
    /// indices: given a gate on unsorted positions, the caller sorts the
    /// positions and permutes the matrix once with the sort permutation.
    pub fn permuted_qubits(&self, perm: &[usize]) -> Self {
        let kk = self.k as usize;
        assert_eq!(perm.len(), kk, "permutation arity mismatch");
        let d = self.dim();
        // new index bit j = old index bit perm[j]
        let old_positions: Vec<u32> = perm.iter().map(|&p| p as u32).collect();
        let remap = |new_idx: usize| -> usize {
            // Build old index from new: old bit perm[j] = new bit j.
            let mut old = 0usize;
            for (j, &p) in old_positions.iter().enumerate() {
                old |= ((new_idx >> j) & 1) << p;
            }
            old
        };
        // Verify perm is a permutation (debug-friendly error).
        {
            let mut seen = vec![false; kk];
            for &p in perm {
                assert!(p < kk && !seen[p], "invalid qubit permutation {perm:?}");
                seen[p] = true;
            }
        }
        let mut out = vec![Complex::zero(); d * d];
        for new_r in 0..d {
            let old_r = remap(new_r);
            for new_c in 0..d {
                out[new_r * d + new_c] = self.get(old_r, remap(new_c));
            }
        }
        Self::from_rows(self.k, out)
    }

    /// Expand this gate onto a larger operand set: `target_k` qubits where
    /// this gate's operand `j` sits at position `slots[j]` (all distinct,
    /// `< target_k`) and every other position is identity.
    ///
    /// This is how the scheduler fuses small gates into one k-qubit cluster
    /// matrix (§3.6.1, step 2).
    pub fn embed(&self, target_k: u32, slots: &[u32]) -> Self {
        assert_eq!(slots.len(), self.k as usize, "slot arity mismatch");
        let td = 1usize << target_k;
        let mut out = vec![Complex::zero(); td * td];
        let rest_mask: usize = {
            let mut m = td - 1;
            for &s in slots {
                assert!(s < target_k, "slot {s} out of range for k={target_k}");
                m &= !(1usize << s);
            }
            m
        };
        for row in 0..td {
            let sub_r = gather_bits(row, slots);
            for col in 0..td {
                // Identity on the non-slot bits: they must match.
                if (row & rest_mask) != (col & rest_mask) {
                    continue;
                }
                out[row * td + col] = self.get(sub_r, gather_bits(col, slots));
            }
        }
        Self::from_rows(target_k, out)
    }

    /// If the matrix is diagonal, return its diagonal, else `None`.
    /// Diagonal gates get the communication-free specialized kernel (§3.5).
    pub fn as_diagonal(&self) -> Option<Vec<Complex<T>>> {
        let d = self.dim();
        let mut diag = Vec::with_capacity(d);
        for i in 0..d {
            for j in 0..d {
                let v = self.get(i, j);
                if i != j && v.abs() > T::EPSILON {
                    return None;
                }
            }
            diag.push(self.get(i, i));
        }
        Some(diag)
    }

    /// Multiply every entry by a scalar phase (used to absorb global phases
    /// from specialized T gates into the next matrix, §3.5).
    pub fn scaled(&self, phase: Complex<T>) -> Self {
        Self {
            k: self.k,
            data: self.data.iter().map(|&m| m * phase).collect(),
        }
    }

    /// Convert precision (f64 ↔ f32).
    pub fn convert<U: Real>(&self) -> GateMatrix<U> {
        GateMatrix {
            k: self.k,
            data: self.data.iter().map(|m| m.convert()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn h() -> GateMatrix<f64> {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        GateMatrix::from_rows(
            1,
            vec![
                c64::new(s, 0.0),
                c64::new(s, 0.0),
                c64::new(s, 0.0),
                c64::new(-s, 0.0),
            ],
        )
    }

    fn x() -> GateMatrix<f64> {
        GateMatrix::from_rows(1, vec![c64::zero(), c64::one(), c64::one(), c64::zero()])
    }

    fn cz() -> GateMatrix<f64> {
        let mut m = GateMatrix::identity(2);
        m.set(3, 3, -c64::one());
        m
    }

    #[test]
    fn identity_and_matmul() {
        let i = GateMatrix::<f64>::identity(1);
        assert_eq!(h().matmul(&i), h());
        let hh = h().matmul(&h());
        assert!(hh.unitarity_residual() < 1e-12);
        for r in 0..2 {
            for c in 0..2 {
                let expect = if r == c { c64::one() } else { c64::zero() };
                assert!((hh.get(r, c) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unitarity_residual_detects_nonunitary() {
        let mut bad = GateMatrix::<f64>::identity(1);
        bad.set(0, 0, c64::new(2.0, 0.0));
        assert!(bad.unitarity_residual() > 1.0);
        assert!(h().unitarity_residual() < 1e-12);
        assert!(cz().unitarity_residual() < 1e-12);
    }

    #[test]
    fn kron_little_endian() {
        // X (x) I: X acts on the high operand (bit 1).
        let m = x().kron(&GateMatrix::identity(1));
        assert_eq!(m.get(2, 0), c64::one());
        assert_eq!(m.get(0, 0), c64::zero());
        let m2 = GateMatrix::identity(1).kron(&x());
        assert_eq!(m2.get(1, 0), c64::one());
    }

    #[test]
    fn dagger_of_t_gate() {
        let t = GateMatrix::from_rows(
            1,
            vec![
                c64::one(),
                c64::zero(),
                c64::zero(),
                c64::from_polar(1.0, std::f64::consts::FRAC_PI_4),
            ],
        );
        let td = t.dagger();
        let prod = t.matmul(&td);
        assert!(prod.unitarity_residual() < 1e-12);
        assert!((td.get(1, 1) - c64::from_polar(1.0, -std::f64::consts::FRAC_PI_4)).abs() < 1e-15);
    }

    #[test]
    fn permuted_qubits_swaps_cnot_direction() {
        // CNOT with control = operand 1, target = operand 0.
        let mut cnot = GateMatrix::<f64>::identity(2);
        cnot.set(2, 2, c64::zero());
        cnot.set(3, 3, c64::zero());
        cnot.set(2, 3, c64::one());
        cnot.set(3, 2, c64::one());
        let swapped = cnot.permuted_qubits(&[1, 0]);
        assert_eq!(swapped.get(3, 1), c64::one());
        assert_eq!(swapped.get(1, 1), c64::zero());
        assert_eq!(cz().permuted_qubits(&[1, 0]), cz());
        assert_eq!(swapped.permuted_qubits(&[1, 0]), cnot);
    }

    #[test]
    fn embed_single_qubit_gate() {
        let e = x().embed(2, &[1]);
        let expect = x().kron(&GateMatrix::identity(1));
        assert_eq!(e, expect);
        let e0 = x().embed(2, &[0]);
        assert_eq!(e0, GateMatrix::identity(1).kron(&x()));
    }

    #[test]
    fn embed_then_matmul_matches_composition() {
        let a = x().embed(2, &[1]);
        let b = h().embed(2, &[0]);
        let prod = b.matmul(&a);
        assert!(prod.unitarity_residual() < 1e-12);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((prod.get(2, 0) - c64::new(s, 0.0)).abs() < 1e-12);
        assert!((prod.get(3, 0) - c64::new(s, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn diagonal_detection() {
        assert!(cz().as_diagonal().is_some());
        assert_eq!(
            cz().as_diagonal().unwrap(),
            vec![c64::one(), c64::one(), c64::one(), -c64::one()]
        );
        assert!(x().as_diagonal().is_none());
        assert!(h().as_diagonal().is_none());
    }

    #[test]
    fn scaled_absorbs_phase() {
        let t_phase = c64::from_polar(1.0, 0.3);
        let m = h().scaled(t_phase);
        assert!((m.get(0, 0) - h().get(0, 0) * t_phase).abs() < 1e-15);
        assert!(m.unitarity_residual() < 1e-12, "phase keeps unitarity");
    }

    #[test]
    fn convert_round_trip() {
        let m32: GateMatrix<f32> = h().convert();
        let back: GateMatrix<f64> = m32.convert();
        assert!(crate::complex::max_dist(back.entries(), h().entries()) < 1e-7);
    }
}
