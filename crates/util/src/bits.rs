//! Bit-manipulation primitives behind k-qubit gate indexing.
//!
//! Applying a k-qubit gate walks the state vector in 2^{n−k} blocks: the
//! indices of the 2^k amplitudes touched per block are bit-strings of the
//! form `c_{n−k−1} x_{i_{k−1}} … c_j … x_{i_1} … c_0` (paper §3.2) — the
//! gate-qubit bits `x` interleaved with the block counter bits `c`. The
//! functions here expand a block counter into a base index
//! ([`IndexExpander`]), gather/scatter the gate-qubit bits, and apply
//! arbitrary bit-position permutations (used for the local qubit swaps that
//! bracket the multi-node all-to-all, §3.4).

/// Insert a zero bit at position `pos`, shifting higher bits left.
///
/// `insert_zero_bit(0b1011, 2) == 0b10011`.
#[inline(always)]
pub fn insert_zero_bit(idx: usize, pos: u32) -> usize {
    let low_mask = (1usize << pos) - 1;
    ((idx & !low_mask) << 1) | (idx & low_mask)
}

/// Extract the bit at `pos` (0 or 1).
#[inline(always)]
pub fn get_bit(idx: usize, pos: u32) -> usize {
    (idx >> pos) & 1
}

/// Set/clear the bit at `pos`.
#[inline(always)]
pub fn with_bit(idx: usize, pos: u32, val: usize) -> usize {
    (idx & !(1usize << pos)) | ((val & 1) << pos)
}

/// `log2` of a power of two; panics otherwise. Used to recover qubit counts
/// from vector lengths.
#[inline]
pub fn log2_exact(v: usize) -> u32 {
    assert!(v.is_power_of_two(), "{v} is not a power of two");
    v.trailing_zeros()
}

/// Gather the bits of `idx` at `positions` (ascending) into a compact
/// little-endian value: bit `j` of the result is `idx[positions[j]]`.
#[inline]
pub fn gather_bits(idx: usize, positions: &[u32]) -> usize {
    let mut out = 0usize;
    for (j, &p) in positions.iter().enumerate() {
        out |= get_bit(idx, p) << j;
    }
    out
}

/// Inverse of [`gather_bits`]: scatter the low `positions.len()` bits of
/// `compact` into `positions` of a zero base.
#[inline]
pub fn scatter_bits(compact: usize, positions: &[u32]) -> usize {
    let mut out = 0usize;
    for (j, &p) in positions.iter().enumerate() {
        out |= ((compact >> j) & 1) << p;
    }
    out
}

/// Pre-computed expansion of a block counter `c ∈ [0, 2^{n−k})` into a base
/// state-vector index with zeros at the k gate-qubit positions.
///
/// The expansion is a cascade of shift-and-mask steps, one per gate qubit in
/// ascending position order — O(k) per block with no data-dependent
/// branches, which keeps the surrounding kernel loop tight.
#[derive(Clone, Debug)]
pub struct IndexExpander {
    /// `(low_mask, position)` per gate qubit, ascending.
    steps: Vec<(usize, u32)>,
    /// Bit set at each gate-qubit position, in the order given at
    /// construction (i.e. matching the gate's qubit operand order).
    strides: Vec<usize>,
}

impl IndexExpander {
    /// Build an expander for gate qubits at `positions` (any order,
    /// duplicates forbidden). `strides()` preserves the given order while
    /// the expansion cascade internally sorts.
    pub fn new(positions: &[u32]) -> Self {
        let mut sorted: Vec<u32> = positions.to_vec();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert_ne!(w[0], w[1], "duplicate qubit position {}", w[0]);
        }
        let steps = sorted.iter().map(|&p| (((1usize << p) - 1), p)).collect();
        let strides = positions.iter().map(|&p| 1usize << p).collect();
        Self { steps, strides }
    }

    /// Number of gate qubits k.
    #[inline(always)]
    pub fn k(&self) -> usize {
        self.steps.len()
    }

    /// Expand block counter `c` into the base index (all gate-qubit bits 0).
    #[inline(always)]
    pub fn expand(&self, c: usize) -> usize {
        let mut idx = c;
        for &(low_mask, _) in &self.steps {
            idx = ((idx & !low_mask) << 1) | (idx & low_mask);
        }
        idx
    }

    /// Stride (2^position) per gate qubit, in construction order.
    #[inline(always)]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Offset of local gate index `x ∈ [0, 2^k)` from the base index, where
    /// bit j of `x` selects the j-th qubit of the construction order.
    #[inline(always)]
    pub fn offset(&self, x: usize) -> usize {
        let mut off = 0usize;
        for (j, &s) in self.strides.iter().enumerate() {
            if (x >> j) & 1 == 1 {
                off += s;
            }
        }
        off
    }
}

/// A permutation of the n bit positions of a state-vector index.
///
/// `map[i] = j` means: the bit at position `i` of the old index moves to
/// position `j` of the new index. Used to reorder local qubits before and
/// after global-to-local swaps, and by the qubit-mapping heuristic (§3.6.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitPermutation {
    map: Vec<u32>,
}

impl BitPermutation {
    /// Identity permutation on `n` bits.
    pub fn identity(n: usize) -> Self {
        Self {
            map: (0..n as u32).collect(),
        }
    }

    /// Build from an explicit map; must be a permutation of `0..n`.
    pub fn new(map: Vec<u32>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &j in &map {
            assert!((j as usize) < n, "target {j} out of range for {n} bits");
            assert!(!seen[j as usize], "duplicate target {j}");
            seen[j as usize] = true;
        }
        Self { map }
    }

    /// Transposition of bit positions `a` and `b` on `n` bits.
    pub fn transposition(n: usize, a: u32, b: u32) -> Self {
        let mut p = Self::identity(n);
        p.map.swap(a as usize, b as usize);
        Self::new(p.map) // re-validate range
    }

    #[inline(always)]
    pub fn n_bits(&self) -> usize {
        self.map.len()
    }

    /// Where does old position `i` go?
    #[inline(always)]
    pub fn target(&self, i: u32) -> u32 {
        self.map[i as usize]
    }

    /// True if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &j)| i as u32 == j)
    }

    /// Apply to an index: bit `i` of `idx` becomes bit `map[i]` of the
    /// result.
    #[inline]
    pub fn apply(&self, idx: usize) -> usize {
        let mut out = 0usize;
        for (i, &j) in self.map.iter().enumerate() {
            out |= ((idx >> i) & 1) << j;
        }
        out
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j as usize] = i as u32;
        }
        Self { map: inv }
    }

    /// Composition: apply `self` first, then `after`.
    pub fn then(&self, after: &Self) -> Self {
        assert_eq!(self.n_bits(), after.n_bits());
        Self {
            map: self.map.iter().map(|&j| after.map[j as usize]).collect(),
        }
    }

    /// Permute a full vector of 2^n elements out-of-place:
    /// `dst[apply(i)] = src[i]`.
    ///
    /// This is the data movement for a local qubit reorder; the distributed
    /// simulator calls it on each rank's slice around an all-to-all.
    pub fn permute_slice<T: Copy>(&self, src: &[T], dst: &mut [T]) {
        let n = self.n_bits();
        assert_eq!(src.len(), 1usize << n);
        assert_eq!(dst.len(), src.len());
        if self.is_identity() {
            dst.copy_from_slice(src);
            return;
        }
        for (i, &v) in src.iter().enumerate() {
            dst[self.apply(i)] = v;
        }
    }

    /// Decompose into a minimal set of transpositions `(a, b)` with `a < b`
    /// whose left-to-right application equals this permutation. Local qubit
    /// swaps are executed as a sequence of in-place pairwise swaps by the
    /// kernels; this provides that sequence.
    pub fn transpositions(&self) -> Vec<(u32, u32)> {
        let mut cur: Vec<u32> = self.map.clone();
        let mut out = Vec::new();
        // Selection-style: put the correct source into each target slot.
        for target in 0..cur.len() as u32 {
            // Find which position currently maps to `target`.
            let src = cur.iter().position(|&j| j == target).unwrap() as u32;
            if src != target {
                // Swap positions src and target.
                cur.swap(src as usize, target as usize);
                out.push((target.min(src), target.max(src)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_zero_bit_basic() {
        assert_eq!(insert_zero_bit(0b1011, 2), 0b10011);
        assert_eq!(insert_zero_bit(0b1011, 0), 0b10110);
        assert_eq!(insert_zero_bit(0, 5), 0);
        assert_eq!(insert_zero_bit(0b1, 1), 0b1);
        assert_eq!(insert_zero_bit(0b1, 0), 0b10);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let positions = [1u32, 4, 6];
        for compact in 0..8usize {
            let scattered = scatter_bits(compact, &positions);
            assert_eq!(gather_bits(scattered, &positions), compact);
        }
        assert_eq!(gather_bits(0b100_0010, &positions), 0b101);
    }

    #[test]
    fn expander_enumerates_disjoint_blocks() {
        // 5-bit index space, gate on qubits {1, 3}: the 8 block bases plus
        // 4 offsets each must cover 0..32 exactly once.
        let e = IndexExpander::new(&[3, 1]);
        assert_eq!(e.k(), 2);
        let mut seen = [false; 32];
        for c in 0..8 {
            let base = e.expand(c);
            // Base has zeros at gate positions.
            assert_eq!(base & 0b01010, 0);
            for x in 0..4 {
                let idx = base + e.offset(x);
                assert!(!seen[idx], "index {idx} visited twice");
                seen[idx] = true;
                // Offset bit j targets construction-order qubit j: x bit 0
                // -> qubit 3, x bit 1 -> qubit 1.
                assert_eq!(get_bit(idx, 3), x & 1);
                assert_eq!(get_bit(idx, 1), (x >> 1) & 1);
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn expander_strides_follow_operand_order() {
        let e = IndexExpander::new(&[4, 0, 2]);
        assert_eq!(e.strides(), &[16, 1, 4]);
        assert_eq!(e.offset(0b001), 16);
        assert_eq!(e.offset(0b110), 5);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn expander_rejects_duplicates() {
        let _ = IndexExpander::new(&[2, 2]);
    }

    #[test]
    fn permutation_apply_and_inverse() {
        // 3 bits: 0->2, 1->0, 2->1.
        let p = BitPermutation::new(vec![2, 0, 1]);
        assert_eq!(p.apply(0b001), 0b100);
        assert_eq!(p.apply(0b010), 0b001);
        assert_eq!(p.apply(0b100), 0b010);
        let inv = p.inverse();
        for i in 0..8 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
        assert!(p.then(&inv).is_identity());
    }

    #[test]
    fn permutation_permute_slice() {
        let p = BitPermutation::transposition(2, 0, 1);
        let src = [10, 20, 30, 40]; // index bits: 00 01 10 11
        let mut dst = [0; 4];
        p.permute_slice(&src, &mut dst);
        // 01 -> 10, 10 -> 01.
        assert_eq!(dst, [10, 30, 20, 40]);
    }

    #[test]
    fn transposition_decomposition_reconstructs() {
        let p = BitPermutation::new(vec![3, 1, 0, 2]);
        // Applying the transpositions left to right to the identity must
        // reproduce p's action on every index.
        let n = p.n_bits();
        let mut q = BitPermutation::identity(n);
        for (a, b) in p.transpositions() {
            q = q.then(&BitPermutation::transposition(n, a, b));
        }
        for i in 0..(1 << n) {
            assert_eq!(q.apply(i), p.apply(i));
        }
    }

    #[test]
    fn identity_decomposes_to_nothing() {
        assert!(BitPermutation::identity(6).transpositions().is_empty());
    }

    #[test]
    fn log2_exact_works() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(1 << 20), 20);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_exact_rejects_non_powers() {
        let _ = log2_exact(12);
    }
}
