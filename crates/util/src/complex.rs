//! Complex arithmetic for state-vector amplitudes.
//!
//! Amplitudes are stored interleaved (`re`, `im`) — the layout the paper's
//! kernels assume. The type is `#[repr(C)]` so a `&[Complex<T>]` can be
//! reinterpreted as `&[T]` of twice the length when a kernel wants to
//! address the real/imaginary streams directly (see `qsim-kernels`).
//!
//! Beyond the usual operators, [`Complex::mul_add_eq23`] implements the
//! paper's Eq. (2)–(3) update: the accumulation
//! `(ṽ_R, ṽ_I) += (v_R·m_R, v_I·m_R)` followed by
//! `(ṽ_R, ṽ_I) += (v_I·(−m_I), v_R·m_I)`,
//! expressed as two fused multiply-adds per component.

use crate::precision::Real;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with interleaved `(re, im)` layout.
#[derive(Copy, Clone, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

/// Double-precision amplitude (the paper's default representation).
#[allow(non_camel_case_types)]
pub type c64 = Complex<f64>;
/// Single-precision amplitude (the paper's §5 option for 46 qubits).
#[allow(non_camel_case_types)]
pub type c32 = Complex<f32>;

impl<T: Real> Complex<T> {
    pub const fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    #[inline(always)]
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    #[inline(always)]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    #[inline(always)]
    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// `e^{iθ}` — unit phase, used for T/rotation gate matrices.
    #[inline]
    pub fn from_polar(r: T, theta: T) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `|z|²` without the square root; probabilities are built from this.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re.mul_add(self.re, self.im * self.im)
    }

    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Fused-multiply-add accumulation in the paper's Eq. (2)–(3) form.
    ///
    /// Computes `self += v * m` using the re-association
    /// ```text
    /// (ṽ_R, ṽ_I) += (v_R·m_R, v_I·m_R)        // Eq. (2)
    /// (ṽ_R, ṽ_I) += (v_I·(−m_I), v_R·m_I)     // Eq. (3)
    /// ```
    /// so each component is exactly two FMAs. The vectorized kernels mirror
    /// this with packed `(m_R, m_R)` / `(−m_I, m_I)` pairs.
    #[inline(always)]
    pub fn mul_add_eq23(&mut self, v: Self, m: Self) {
        // Eq. (2): multiply both components of v by m_R.
        self.re = v.re.mul_add(m.re, self.re);
        self.im = v.im.mul_add(m.re, self.im);
        // Eq. (3): multiply the swapped components by (−m_I, m_I).
        self.re = v.im.mul_add(-m.im, self.re);
        self.im = v.re.mul_add(m.im, self.im);
    }

    /// Multiplicative inverse. Panics in debug mode on zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > T::ZERO, "division by zero complex number");
        Self::new(self.re / d, -self.im / d)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Convert the precision of this amplitude (f64 ↔ f32).
    #[inline]
    pub fn convert<U: Real>(self) -> Complex<U> {
        Complex::new(U::from_f64(self.re.to_f64()), U::from_f64(self.im.to_f64()))
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re.mul_add(rhs.re, -(self.im * rhs.im)),
            self.re.mul_add(rhs.im, self.im * rhs.re),
        )
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline]
    // z / w computed as z * w⁻¹ — intentional, not a typo'd operator.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

impl<T: Real> From<T> for Complex<T> {
    fn from(re: T) -> Self {
        Self::new(re, T::ZERO)
    }
}

/// Reinterpret a slice of complex amplitudes as a flat slice of scalars
/// (`[re0, im0, re1, im1, ...]`). Sound because `Complex<T>` is `#[repr(C)]`
/// with exactly two `T` fields and no padding.
#[inline]
pub fn as_scalars<T: Real>(v: &[Complex<T>]) -> &[T] {
    // SAFETY: Complex<T> is repr(C) { re: T, im: T }: size 2*T, align of T.
    unsafe { core::slice::from_raw_parts(v.as_ptr().cast::<T>(), v.len() * 2) }
}

/// Mutable variant of [`as_scalars`].
#[inline]
pub fn as_scalars_mut<T: Real>(v: &mut [Complex<T>]) -> &mut [T] {
    // SAFETY: see as_scalars.
    unsafe { core::slice::from_raw_parts_mut(v.as_mut_ptr().cast::<T>(), v.len() * 2) }
}

/// Max norm distance between two complex vectors; the workhorse assertion
/// of the test suites ("agrees with the dense reference to 1e-12").
pub fn max_dist<T: Real>(a: &[Complex<T>], b: &[Complex<T>]) -> T {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut m = T::ZERO;
    for (&x, &y) in a.iter().zip(b.iter()) {
        m = m.max_val((x - y).abs());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: c64, b: c64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(3.0, -4.0);
        assert_eq!(a + b, c64::new(4.0, -2.0));
        assert_eq!(a - b, c64::new(-2.0, 6.0));
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert!(close(a * b, c64::new(11.0, 2.0)));
        assert!(close((a * b) / b, a));
        assert_eq!(-a, c64::new(-1.0, -2.0));
    }

    #[test]
    fn norm_and_conj() {
        let a = c64::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.conj(), c64::new(3.0, -4.0));
        assert!(close(a * a.conj(), c64::new(25.0, 0.0)));
    }

    #[test]
    fn polar_unit_phase() {
        // e^{iπ/4} = (1+i)/√2 — the T-gate phase.
        let t = c64::from_polar(1.0, std::f64::consts::FRAC_PI_4);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(close(t, c64::new(s, s)));
        // Eighth power of the T phase is the identity phase.
        let mut p = c64::one();
        for _ in 0..8 {
            p *= t;
        }
        assert!(close(p, c64::one()));
    }

    #[test]
    fn eq23_update_matches_naive_multiply() {
        // The re-associated FMA form must compute exactly v*m (up to one
        // rounding difference which is below 1e-15 for these operands).
        let cases = [
            (c64::new(0.3, -0.7), c64::new(-0.2, 0.9)),
            (c64::new(1.0, 0.0), c64::new(0.0, 1.0)),
            (c64::new(-0.5, 0.5), c64::new(0.25, -0.125)),
        ];
        for (v, m) in cases {
            let mut acc = c64::new(0.1, 0.2);
            acc.mul_add_eq23(v, m);
            let expect = c64::new(0.1, 0.2) + v * m;
            assert!((acc - expect).abs() < 1e-15, "{acc:?} vs {expect:?}");
        }
    }

    #[test]
    fn scalar_reinterpret_round_trips() {
        let mut v = vec![c64::new(1.0, 2.0), c64::new(3.0, 4.0)];
        assert_eq!(as_scalars(&v), &[1.0, 2.0, 3.0, 4.0]);
        as_scalars_mut(&mut v)[3] = 9.0;
        assert_eq!(v[1], c64::new(3.0, 9.0));
    }

    #[test]
    fn precision_conversion() {
        let a = c64::new(0.5, -0.25);
        let b: c32 = a.convert();
        assert_eq!(b, c32::new(0.5, -0.25));
        let c: c64 = b.convert();
        assert_eq!(c, a);
    }

    #[test]
    fn max_dist_finds_largest_deviation() {
        let a = vec![c64::one(), c64::zero(), c64::i()];
        let mut b = a.clone();
        b[2] = c64::new(0.0, 1.5);
        assert!((max_dist(&a, &b) - 0.5).abs() < 1e-15);
        assert_eq!(max_dist(&a, &a), 0.0);
    }

    #[test]
    fn sum_of_amplitudes() {
        let v = vec![c64::new(1.0, 1.0); 4];
        let s: c64 = v.into_iter().sum();
        assert_eq!(s, c64::new(4.0, 4.0));
    }
}
