//! Deterministic pseudo-random number generation.
//!
//! Supremacy circuit instances must be bit-reproducible: Table 1 and Fig. 5
//! of the paper are reported for specific instances, and the test suite
//! pins exact cluster/swap counts for given seeds. The `rand` crate does
//! not guarantee stream stability across major versions, so the generators
//! here are vendored: SplitMix64 (seeding) and xoshiro256** (streams), both
//! public-domain algorithms by Blackman & Vigna.

/// SplitMix64: a tiny, high-quality 64-bit generator, used to expand one
/// `u64` seed into the xoshiro state (the construction its authors
/// recommend).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose deterministic PRNG.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion; any `u64` (including 0) is valid.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift rejection method
    /// (unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Choose one element of a non-empty slice uniformly.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 (computed from the reference
        // algorithm; pinned to detect accidental edits).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "different seeds should produce different streams");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.next_below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 64 elements should move something");
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
