//! # qsim-util
//!
//! Foundation crate of the `qsim45` workspace: complex arithmetic laid out
//! for FMA-friendly kernels, cache-line-aligned amplitude storage, the bit
//! manipulation primitives behind k-qubit gate indexing, a deterministic
//! PRNG for reproducible circuit instances, and the FLOP/byte accounting
//! model used by the roofline experiments (Fig. 2 of the paper).
//!
//! Everything in this crate is dependency-free so the hot kernels above it
//! have full control over data layout and instruction selection.

pub mod align;
pub mod bits;
pub mod complex;
pub mod flops;
pub mod matrix;
pub mod precision;
pub mod rng;
pub mod stats;

pub use align::AlignedVec;
pub use complex::{c32, c64, Complex};
pub use matrix::GateMatrix;
pub use precision::Real;
pub use rng::{SplitMix64, Xoshiro256};
