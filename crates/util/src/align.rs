//! Cache-line / vector-register aligned amplitude storage.
//!
//! State vectors are the only large allocation in the simulator (2^n
//! amplitudes), and the SIMD kernels want 64-byte alignment so that packed
//! loads of `(re, im)` pairs never split a cache line. `Vec<T>` only
//! guarantees the alignment of `T`, so [`AlignedVec`] allocates with an
//! explicit 64-byte-aligned layout.
//!
//! The paper additionally initializes the state NUMA-aware via OpenMP first
//! touch; [`AlignedVec::new_zeroed_par_touch`] reproduces that by touching
//! pages from the rayon pool used for the kernels (a no-op on single-socket
//! hosts but kept for fidelity and documented behaviour).

use core::ops::{Deref, DerefMut};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};

/// Alignment in bytes: one cache line, also sufficient for AVX-512.
pub const ALIGN: usize = 64;

/// A fixed-capacity, 64-byte-aligned vector.
///
/// Unlike `Vec`, the length is fixed at construction: state vectors never
/// grow. Dereferences to a slice for all element access.
pub struct AlignedVec<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; T: Send/Sync bounds
// are propagated exactly like Vec<T>.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T: Copy + Default> AlignedVec<T> {
    /// Allocate `len` zero-initialized elements (all-zero bit pattern).
    ///
    /// `T` must be valid for the all-zeros bit pattern; this is true for all
    /// amplitude types in this workspace (`Complex<f32/f64>`, scalars).
    pub fn new_zeroed(len: usize) -> Self {
        assert!(len > 0, "AlignedVec must be non-empty");
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, size_of::<T>() > 0
        // asserted in layout()).
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Self { ptr, len }
    }

    /// Zero-allocate and touch pages in parallel chunks via the supplied
    /// executor, mirroring the paper's NUMA-aware first-touch init.
    ///
    /// `par_for` receives the number of chunks and a closure to run for
    /// each chunk index; `qsim-kernels` passes a rayon-backed executor so
    /// that first touch happens on the worker threads.
    pub fn new_zeroed_par_touch<F>(len: usize, chunks: usize, par_for: F) -> Self
    where
        F: FnOnce(usize, &(dyn Fn(usize) + Sync)),
        T: Sync,
    {
        let v = Self::new_zeroed(len);
        let chunks = chunks.max(1).min(len);
        let chunk_len = len.div_ceil(chunks);
        let base = v.ptr as usize;
        let touch = move |c: usize| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            let mut i = start;
            // Touch one element per 4 KiB page; elements are Copy and the
            // ranges are disjoint across chunk indices.
            let step = (4096 / core::mem::size_of::<T>()).max(1);
            while i < end {
                // SAFETY: i < len, allocation is len elements, chunk ranges
                // are disjoint so no two closure invocations alias.
                unsafe {
                    core::ptr::write_volatile((base as *mut T).add(i), T::default());
                }
                i += step;
            }
        };
        par_for(chunks, &touch);
        v
    }

    /// Build from an existing slice (copies).
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = Self::new_zeroed(src.len());
        v.copy_from_slice(src);
        v
    }

    fn layout(len: usize) -> Layout {
        let size = core::mem::size_of::<T>();
        assert!(size > 0, "zero-sized T unsupported");
        Layout::from_size_align(size.checked_mul(len).expect("allocation overflow"), ALIGN)
            .expect("invalid layout")
    }
}

impl<T> AlignedVec<T> {
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }

    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: exclusive access through &mut self.
        unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    #[inline(always)]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    #[inline(always)]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        let size = core::mem::size_of::<T>() * self.len;
        if size > 0 {
            let layout = Layout::from_size_align(size, ALIGN).unwrap();
            // SAFETY: allocated with the identical layout in new_zeroed.
            unsafe { dealloc(self.ptr as *mut u8, layout) };
        }
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline(always)]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> DerefMut for AlignedVec<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn allocation_is_aligned_and_zeroed() {
        let v: AlignedVec<c64> = AlignedVec::new_zeroed(1 << 10);
        assert_eq!(v.as_ptr() as usize % ALIGN, 0);
        assert!(v.iter().all(|&a| a == c64::zero()));
        assert_eq!(v.len(), 1024);
        assert!(!v.is_empty());
    }

    #[test]
    fn mutation_through_deref() {
        let mut v: AlignedVec<f64> = AlignedVec::new_zeroed(8);
        v[3] = 2.5;
        assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0, 2.5, 0.0, 0.0, 0.0, 0.0]);
        v.iter_mut().for_each(|x| *x += 1.0);
        assert_eq!(v[3], 3.5);
        assert_eq!(v[0], 1.0);
    }

    #[test]
    fn from_slice_and_clone() {
        let v = AlignedVec::from_slice(&[1u64, 2, 3]);
        let w = v.clone();
        assert_eq!(v.as_slice(), w.as_slice());
        assert_ne!(v.as_ptr(), w.as_ptr());
    }

    #[test]
    fn par_touch_produces_zeroed_memory() {
        // Sequential executor standing in for the rayon pool.
        let v: AlignedVec<f64> = AlignedVec::new_zeroed_par_touch(1 << 14, 4, |n, f| {
            for c in 0..n {
                f(c);
            }
        });
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_length_rejected() {
        let _ = AlignedVec::<f64>::new_zeroed(0);
    }
}
