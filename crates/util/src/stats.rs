//! Small timing/statistics helpers shared by the benchmark harnesses.
//!
//! The figure/table binaries in `qsim-bench` report medians over repeated
//! runs (as the paper reports "median hard instances" in Fig. 5); this
//! module provides the summary statistics and a best-of-N measurement loop.

use std::time::Instant;

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub median: f64,
    pub min: f64,
    pub max: f64,
    pub stddev: f64,
}

/// Compute summary statistics. Panics on an empty sample.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "empty sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    Summary {
        n,
        mean,
        median,
        min: sorted[0],
        max: sorted[n - 1],
        stddev: var.sqrt(),
    }
}

/// Time one invocation of `f` in seconds.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// Run `f` `reps` times (after `warmup` unmeasured runs) and return the
/// per-run durations in seconds. The closure's result is returned through a
/// black-box style sink to keep the optimizer honest.
pub fn time_reps(warmup: usize, reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    let mut out = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        out.push(t0.elapsed().as_secs_f64());
    }
    out
}

/// Prevent the optimizer from discarding a value (stable `black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert!(s.stddev > 0.0);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        let s = summarize(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn timing_produces_positive_durations() {
        let (dt, v) = time_once(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(dt >= 0.0);
        let reps = time_reps(1, 3, || {
            black_box((0..100).product::<u128>());
        });
        assert_eq!(reps.len(), 3);
        assert!(reps.iter().all(|&d| d >= 0.0));
    }
}
