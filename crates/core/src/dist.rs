//! The distributed simulator (§3.4–3.6).
//!
//! Executes a [`Schedule`] across `2^g` fabric ranks. Each rank owns a
//! 2^l-amplitude slice of the physical state: bit positions `0..l` index
//! within the slice, positions `l..n` are the rank id. Per stage:
//!
//! * **clusters** run the fused k-qubit kernels on the local slice — all
//!   ranks execute identical operations (SPMD);
//! * **diagonal ops** with global operands become rank-conditional local
//!   phases (§3.5): the global bits are read from the rank id and the
//!   diagonal is reduced to the local operands (or to a pure scalar);
//! * **swaps** realize §3.4's permutation → all-to-all → inverse
//!   permutation as a single *fused, in-place, pipelined* data path: the
//!   permutation is folded into the pack/unpack index mapping, so each
//!   swap packs amplitudes straight from the state into pooled wire
//!   buffers (one copy), exchanges them sub-chunk by sub-chunk, and
//!   unpacks straight back into the state (one copy) — no staging vectors,
//!   no separate permutation passes, and zero heap allocations in steady
//!   state. The self segment is an exact identity and is never touched.
//!   [`perform_swap_reference`] keeps the textbook three-pass path as the
//!   equivalence oracle.

use crate::checkpoint::{
    read_amps_snapshot, schedule_fingerprint, snapshot_path, write_amps_snapshot, Manifest,
    ResumePoint, MANIFEST_VERSION,
};
use crate::exec::{compile_stages, execute_compiled_stage, resolve_tile_qubits, CompiledStage};
use crate::state::StateVector;
use qsim_circuit::Circuit;
use qsim_kernels::apply::ApplyDispatch;
use qsim_kernels::apply::{KernelConfig, OptLevel};
use qsim_kernels::parallel::{par_gather, par_reduce_amplitudes, par_scatter};
use qsim_kernels::specialized;
use qsim_kernels::{SweepDispatch, SweepStats};
use qsim_net::collective::{
    all_reduce_sum, all_to_all, all_to_all_inplace, all_to_all_with, Communicator,
};
use qsim_net::fabric::{try_run_cluster_hooked, FabricStats, RankCtx};
use qsim_net::{FaultPlan, PoisonHook, SimError};
use qsim_sched::{plan_runs, DiagonalOp, Schedule, StageOp, StageRun, SwapOp};
use qsim_telemetry::{Phase, RunState, Telemetry, TrackHandle};
use qsim_util::bits::BitPermutation;
use qsim_util::complex::Complex;
use qsim_util::Real;
use std::path::PathBuf;
use std::time::Instant;

/// Distributed run configuration.
#[derive(Clone)]
pub struct DistConfig {
    /// Rank count; must equal `2^(n − schedule.local_qubits)`.
    pub n_ranks: usize,
    pub kernel: KernelConfig,
    /// Gather the full state to rank 0 and return it in logical basis
    /// order (small n only; used by tests and examples).
    pub gather_state: bool,
    /// Pipeline depth of the fused swap engine (sub-chunks per peer
    /// segment). `None` picks a size-based default per swap; measured
    /// tuning is available via
    /// `qsim_kernels::autotune::tune_swap_sub_chunks`.
    pub sub_chunks: Option<usize>,
    /// Tile budget (log2 amplitudes) of the cache-tiled stage executor;
    /// `None` uses the measured `tune_tile_qubits` size.
    pub tile_qubits: Option<u32>,
    /// Span/metrics sink: each rank records stage/swap/reduce spans on
    /// its own `rank {r}` track (feeding the `stage_apply_ns` and
    /// `swap_ns` histograms), and the driver publishes `FabricStats` and
    /// `SweepStats` under the `dist.*` metric prefix. The default
    /// disabled handle makes all of it a no-op.
    pub telemetry: Telemetry,
    /// When set, every rank snapshots its slice at each stage-run
    /// boundary and rank 0 publishes an atomic manifest there, so a
    /// killed run can restart from the last completed run instead of
    /// from scratch.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the manifest in `checkpoint_dir` when one exists
    /// (validated against the schedule fingerprint; a fresh start when
    /// the directory has no manifest yet).
    pub resume: bool,
    /// Fault injection: every rank returns [`SimError::InjectedStop`]
    /// after this many stage runs have completed — after the unit's
    /// checkpoint barrier when `checkpoint_dir` is set, so the manifest
    /// for the unit is durable and the run is resumable. The uniform
    /// kill switch of the backend conformance suite (the single-node
    /// engine's counterpart is [`crate::SingleCheckpoint::stop_after`]).
    pub stop_after: Option<usize>,
    /// Scripted rank failures for fault-injection testing (see
    /// [`qsim_net::FaultPlan`]); checked before every swap.
    pub fault_plan: Option<FaultPlan>,
    /// Fired once, with the root-cause rank, when the fabric is first
    /// poisoned (rank error, panic, or scripted kill) — the flight
    /// recorder's tap. Runs on the dying rank's thread before any peer
    /// is woken, so a crash dump written here captures that rank's final
    /// spans and counters.
    pub poison_hook: Option<PoisonHook>,
}

impl std::fmt::Debug for DistConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistConfig")
            .field("n_ranks", &self.n_ranks)
            .field("kernel", &self.kernel)
            .field("gather_state", &self.gather_state)
            .field("sub_chunks", &self.sub_chunks)
            .field("tile_qubits", &self.tile_qubits)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("resume", &self.resume)
            .field("stop_after", &self.stop_after)
            .field("fault_plan", &self.fault_plan)
            .field("poison_hook", &self.poison_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            n_ranks: 1,
            kernel: KernelConfig::default(),
            gather_state: false,
            sub_chunks: None,
            tile_qubits: None,
            telemetry: Telemetry::disabled(),
            checkpoint_dir: None,
            resume: false,
            stop_after: None,
            fault_plan: None,
            poison_hook: None,
        }
    }
}

/// Results of a distributed run. Reductions (norm, entropy) are always
/// accumulated and reported in f64, whatever the state precision `R`.
#[derive(Clone, Debug)]
pub struct DistOutcome<R: SweepDispatch = f64> {
    /// Σ|α|², reduced across ranks.
    pub norm: f64,
    /// Shannon entropy (bits) of the outcome distribution (§4.2.2).
    pub entropy: f64,
    /// Wall-clock of the rank bodies (max over ranks), seconds.
    pub sim_seconds: f64,
    /// Seconds spent in the entropy reduction alone (the paper reports
    /// 8.1 s of 99 s for this step).
    pub entropy_seconds: f64,
    pub fabric: FabricStats,
    /// Amplitude bytes copied by the swap engine on one rank (pack +
    /// unpack; the fused path's ≤ 2 full-slice copies per swap, where the
    /// reference path takes ~6).
    pub swap_bytes_copied: u64,
    /// Streaming-pass counters of the tiled stage executor on ONE rank
    /// (all ranks run identical passes; zeroed on the per-gate fallback).
    pub sweep: SweepStats,
    /// Full state in logical order (only when `gather_state`).
    pub state: Option<Vec<Complex<R>>>,
}

/// The distributed engine.
pub struct DistSimulator {
    pub config: DistConfig,
}

impl DistSimulator {
    pub fn new(config: DistConfig) -> Self {
        Self { config }
    }

    /// Execute `schedule` (planned from `circuit`). The circuit is only
    /// used for sanity checks; all operations come from the schedule.
    /// Starts from the uniform superposition when `init_uniform` (the
    /// §3.6 supremacy-circuit start), else |0…0⟩.
    ///
    /// Infallible wrapper over [`DistSimulator::try_run`] for callers
    /// without fault plans or checkpointing; any rank failure panics
    /// with its root cause.
    pub fn run(&self, circuit: &Circuit, schedule: &Schedule, init_uniform: bool) -> DistOutcome {
        self.try_run(circuit, schedule, init_uniform)
            .unwrap_or_else(|e| crate::backend::abort_run("distributed run failed", &e))
    }

    /// Fallible form of [`DistSimulator::run`]: injected faults, lost
    /// ranks and checkpoint IO surface as a typed [`SimError`] after all
    /// rank threads have been joined — never a panic or a hang.
    pub fn try_run(
        &self,
        circuit: &Circuit,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> Result<DistOutcome, SimError> {
        self.try_run_t::<f64>(circuit, schedule, init_uniform)
    }

    /// [`DistSimulator::try_run`] at an explicit precision tier: every
    /// rank slice, compiled stage and swap wire buffer holds `Complex<R>`
    /// amplitudes, so f32 runs move half the bytes end to end. The f64
    /// instantiation is the exact code path `try_run` always took.
    pub fn try_run_t<R: SweepDispatch>(
        &self,
        circuit: &Circuit,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> Result<DistOutcome<R>, SimError> {
        let n = schedule.n_qubits;
        let l = schedule.local_qubits;
        let g = n - l;
        assert_eq!(circuit.n_qubits(), n);
        assert_eq!(
            self.config.n_ranks,
            1usize << g,
            "rank count must be 2^(n-l)"
        );
        assert!(
            l >= g,
            "all-to-all needs at least as many local as global qubits"
        );
        let cfg = &self.config.kernel;
        let gather = self.config.gather_state;
        let sub_chunks = self.config.sub_chunks;
        let tele = &self.config.telemetry;
        let runs = plan_runs(schedule);

        // Resolve checkpoint/resume state on the driver before any rank
        // spawns, so a mismatched manifest fails fast and loudly.
        let checkpoint = match &self.config.checkpoint_dir {
            None => None,
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| SimError::Checkpoint(format!("{}: {e}", dir.display())))?;
                let driver = tele.track("dist driver");
                let resume = if self.config.resume {
                    let _s = driver.span("resume.validate");
                    match Manifest::load(dir).map_err(|e| SimError::Checkpoint(e.to_string()))? {
                        Some(m) => {
                            let point = m
                                .validate(
                                    "dist",
                                    schedule,
                                    R::NAME,
                                    "none",
                                    init_uniform,
                                    runs.len(),
                                    self.config.n_ranks,
                                )
                                .map_err(|e| SimError::Checkpoint(e.to_string()))?;
                            Some((point, m.digests))
                        }
                        None => None, // nothing published yet: fresh start
                    }
                } else {
                    None
                };
                Some(DistCheckpoint {
                    dir: dir.clone(),
                    resume,
                })
            }
        };

        // Compile each stage ONCE on the driver: the SPMD ranks run
        // identical ops, so they share the packed matrices and tile
        // plans instead of re-deriving them 2^g times. Only the blocked
        // ladder has packed range kernels; ablation configs fall back to
        // the per-gate path.
        let compiled: Option<Vec<CompiledStage<R>>> = (cfg.opt == OptLevel::Blocked).then(|| {
            let tile = resolve_tile_qubits(self.config.tile_qubits, l, cfg.threads);
            compile_stages(&schedule.stages, l, cfg, tile)
        });

        // Seed the live-progress denominators with the units this run
        // will actually execute (a resume pre-credits nothing: skipped
        // runs are simply not planned). Only rank 0 reports completions,
        // so planned counts are schedule-level, not ×2^g.
        let start_run = checkpoint
            .as_ref()
            .and_then(|c| c.resume.as_ref())
            .map_or(0, |(point, _)| point.next_unit);
        if let Some(p) = tele.progress() {
            let stage_units: u64 = runs[start_run..]
                .iter()
                .map(|r| r.stages.len() as u64)
                .sum();
            let swap_units = runs[start_run..]
                .iter()
                .filter(|r| r.swap.is_some())
                .count();
            p.set_planned_units(Phase::Stage, stage_units);
            p.set_planned_units(Phase::Swap, swap_units as u64);
            crate::planner::seed_progress(
                tele,
                schedule,
                2 * R::BYTES as u64,
                // Default tile, not `resolve_tile_qubits`: seeding an
                // ETA must not trigger the autotune probe.
                self.config
                    .tile_qubits
                    .unwrap_or(qsim_sched::sweep::DEFAULT_TILE_QUBITS),
                crate::planner::ProgressBackend::Dist,
            );
            p.set_state(RunState::Running);
        }

        let shared = RankShared {
            schedule,
            runs: &runs,
            init_uniform,
            cfg,
            gather,
            sub_chunks,
            compiled: compiled.as_deref(),
            tele,
            checkpoint: checkpoint.as_ref(),
            stop_after: self.config.stop_after,
        };
        let cluster = try_run_cluster_hooked(
            self.config.n_ranks,
            self.config.fault_plan.clone(),
            self.config.poison_hook.clone(),
            |ctx| run_rank(ctx, &shared),
        );
        let (rank_results, fabric) = match cluster {
            Ok(out) => out,
            Err(e) => {
                if let Some(p) = tele.progress() {
                    p.set_state(RunState::Failed);
                }
                tele.publish_progress_gauges();
                return Err(e);
            }
        };
        if let Some(p) = tele.progress() {
            p.set_state(RunState::Done);
        }
        tele.publish_progress_gauges();

        let mut outcome = DistOutcome {
            norm: rank_results[0].norm,
            entropy: rank_results[0].entropy,
            sim_seconds: rank_results.iter().map(|r| r.seconds).fold(0.0, f64::max),
            entropy_seconds: rank_results
                .iter()
                .map(|r| r.entropy_seconds)
                .fold(0.0, f64::max),
            fabric,
            swap_bytes_copied: rank_results[0].swap_bytes_copied,
            sweep: rank_results[0].sweep,
            state: None,
        };
        if let Some(m) = tele.metrics() {
            outcome.fabric.publish_into(m, "dist.fabric");
            outcome.sweep.publish_into(m, "dist.sweep");
            m.gauge_set("dist.sim_seconds", outcome.sim_seconds);
            m.gauge_set("dist.entropy_seconds", outcome.entropy_seconds);
            m.gauge_set(
                "dist.bytes_per_amp",
                std::mem::size_of::<Complex<R>>() as f64,
            );
            m.gauge_set("dist.precision_bits", (R::BYTES * 8) as f64);
            m.counter_add("dist.swap_bytes_copied", outcome.swap_bytes_copied);
        }
        if gather {
            // Assemble physical slices, then reorder into logical basis.
            let mut physical = vec![Complex::<R>::zero(); 1usize << n];
            for (r, res) in rank_results.iter().enumerate() {
                let slice = res.slice.as_ref().expect("gather requested");
                physical[r << l..(r + 1) << l].copy_from_slice(slice);
            }
            outcome.state = Some(physical_to_logical(&physical, schedule.final_mapping()));
        }
        Ok(outcome)
    }
}

struct RankResult<R: SweepDispatch> {
    norm: f64,
    entropy: f64,
    seconds: f64,
    entropy_seconds: f64,
    swap_bytes_copied: u64,
    sweep: SweepStats,
    slice: Option<Vec<Complex<R>>>,
}

/// Checkpoint configuration resolved once by the driver: where snapshots
/// and the manifest live, plus the validated resume point (and the
/// per-rank snapshot digests it promises) when restarting.
struct DistCheckpoint {
    dir: PathBuf,
    resume: Option<(ResumePoint, Vec<u64>)>,
}

/// Read-only inputs shared by every rank body (the SPMD program).
struct RankShared<'a, R: SweepDispatch> {
    schedule: &'a Schedule,
    runs: &'a [StageRun],
    init_uniform: bool,
    cfg: &'a KernelConfig,
    gather: bool,
    sub_chunks: Option<usize>,
    compiled: Option<&'a [CompiledStage<R>]>,
    tele: &'a Telemetry,
    checkpoint: Option<&'a DistCheckpoint>,
    stop_after: Option<usize>,
}

fn run_rank<R: SweepDispatch>(
    ctx: &mut RankCtx,
    sh: &RankShared<'_, R>,
) -> Result<RankResult<R>, SimError> {
    let schedule = sh.schedule;
    let n = schedule.n_qubits;
    let l = schedule.local_qubits;
    let rank = ctx.rank();
    let track = sh.tele.track(&format!("rank {rank}"));
    let _rank_span = track.span_id("rank", rank as u64);
    let t0 = Instant::now();

    // Resume loads the slice snapshot of the last completed stage run
    // and verifies it against the digest the manifest recorded for this
    // rank — a torn or stale snapshot is a typed error, never silently
    // wrong amplitudes. Otherwise start from the §3.6 initial state.
    let (mut state, start_run) = match sh.checkpoint.and_then(|c| c.resume.as_ref()) {
        Some((point, digests)) if point.next_unit > 0 => {
            let dir = &sh.checkpoint.unwrap().dir;
            let path = snapshot_path(dir, rank, point.next_unit);
            let (amps, digest) = read_amps_snapshot::<R>(&path, 1usize << l).map_err(|e| {
                SimError::Checkpoint(format!("rank {rank}: snapshot {}: {e}", path.display()))
            })?;
            if digest != digests[rank] {
                return Err(SimError::Checkpoint(format!(
                    "rank {rank}: snapshot {} does not match the manifest digest",
                    path.display()
                )));
            }
            (StateVector::from_amplitudes(amps), point.next_unit)
        }
        _ => {
            let state = if sh.init_uniform {
                StateVector::<R>::uniform_slice(l, n)
            } else if rank == 0 {
                StateVector::<R>::zero(l)
            } else {
                StateVector::<R>::null(l)
            };
            (state, 0)
        }
    };

    // One scratch for the whole run: every swap reuses it (and the
    // fabric's wire pools), so only the first swap pays any allocation.
    let mut swap_bufs = SwapBuffers::new(sh.sub_chunks);
    let mut sweep = SweepStats::default();
    // Swap indices are absolute over the schedule (fault points and the
    // paper's swap count are schedule-level), so count the ones the
    // resume skipped.
    let mut swap_index = sh.runs[..start_run]
        .iter()
        .filter(|r| r.swap.is_some())
        .count();

    for (ri, run) in sh.runs.iter().enumerate().skip(start_run) {
        if rank == 0 {
            if let Some(p) = sh.tele.progress() {
                p.set_stage(ri as u64, sh.runs.len() as u64);
            }
        }
        for si in run.stages.clone() {
            let stage = &schedule.stages[si];
            let t_stage = Instant::now();
            let _s = track.span_timed("stage", si as u64, "stage_apply_ns");
            if let Some(cs) = sh.compiled.map(|c| &c[si]) {
                // Tiled stage executor: the shared compiled stage streams
                // the slice once per op group; rank bits resolve global
                // diagonal operands.
                execute_compiled_stage(
                    state.amplitudes_mut(),
                    cs,
                    rank,
                    sh.cfg.threads,
                    &mut sweep,
                );
            } else {
                for op in &stage.ops {
                    match op {
                        // Diagonal fused clusters take the specialized
                        // phase-multiply kernel here too (§3.5).
                        StageOp::Cluster(c) => match c.matrix.as_diagonal() {
                            Some(diag) => {
                                let diag: Vec<Complex<R>> =
                                    diag.iter().map(|a| a.convert()).collect();
                                state.apply_diagonal(&c.qubits, &diag)
                            }
                            None => state.apply(&c.qubits, &c.matrix.convert::<R>(), sh.cfg),
                        },
                        StageOp::Diagonal(d) => apply_rank_diagonal(&mut state, d, rank, l),
                    }
                }
            }
            // Rank 0 speaks for the SPMD cluster: all ranks run the same
            // stage, so one completion report per stage is the truth.
            if rank == 0 {
                sh.tele
                    .progress_unit(Phase::Stage, t_stage.elapsed().as_nanos() as u64);
            }
        }
        if let Some(swap) = &run.swap {
            ctx.fault_point(swap_index)?;
            let si = run.stages.end - 1;
            let t_swap = Instant::now();
            let _s = track.span_timed("swap", si as u64, "swap_ns");
            perform_swap(ctx, &mut state, swap, l, &mut swap_bufs);
            swap_index += 1;
            if rank == 0 {
                sh.tele
                    .progress_unit(Phase::Swap, t_swap.elapsed().as_nanos() as u64);
            }
        }
        if let Some(cp) = sh.checkpoint {
            checkpoint_unit(ctx, cp, sh, &track, &state, ri + 1)?;
        }
        // Injected stop: every rank returns the same typed error at the
        // same run boundary (post-barrier when checkpointing, so the
        // manifest for the unit is already durable everywhere).
        if sh.stop_after == Some(ri + 1) {
            return Err(SimError::InjectedStop { unit: ri + 1 });
        }
        // Per-rank straggler gauges, refreshed at every stage-run
        // boundary so /status shows live comm/blocked skew across ranks
        // mid-run. Keys are distinct per rank, so concurrent sets from
        // the 2^g rank threads never collide.
        if let Some(m) = sh.tele.metrics() {
            m.gauge_set(&format!("live.rank{rank}.comm_seconds"), ctx.comm_seconds());
            m.gauge_set(
                &format!("live.rank{rank}.blocked_seconds"),
                ctx.blocked_seconds(),
            );
            m.gauge_set(
                &format!("live.rank{rank}.bytes_sent"),
                ctx.bytes_sent() as f64,
            );
        }
    }

    // Reductions (§4.2.2: the entropy needs a final all-reduce). The
    // cross-rank reduce and the entropy accumulate in f64 regardless of
    // R, so the reported quantities are comparable across precision
    // tiers (and bit-identical at R = f64).
    let local_norm = state.norm_sqr().to_f64();
    let local_entropy = par_reduce_amplitudes(
        state.amplitudes(),
        || 0.0f64,
        |acc, _, a| {
            let p = a.norm_sqr().to_f64();
            if p > 0.0 {
                acc - p * p.log2()
            } else {
                acc
            }
        },
        |x, y| x + y,
    );
    let seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (norm, entropy) = {
        let _s = track.span("reduce");
        let norm = all_reduce_sum(ctx, local_norm);
        let entropy = all_reduce_sum(ctx, local_entropy);
        (norm, entropy)
    };
    let entropy_seconds = t1.elapsed().as_secs_f64();
    Ok(RankResult {
        norm,
        entropy,
        seconds,
        entropy_seconds,
        swap_bytes_copied: swap_bufs.bytes_copied,
        sweep,
        slice: sh.gather.then(|| state.amplitudes().to_vec()),
    })
}

/// Publish one completed stage run (`unit` = runs finished so far).
///
/// Ordering is the crux: every rank makes its own snapshot durable
/// (`write_amps_snapshot` fsyncs) and ships its digest to rank 0, rank 0
/// writes the manifest atomically, and only after a barrier — i.e. only
/// once the manifest naming the new generation is on disk — does anyone
/// delete the previous generation. A crash at any point leaves either the
/// old manifest with the old snapshots intact, or the new manifest with
/// the new snapshots intact.
fn checkpoint_unit<R: SweepDispatch>(
    ctx: &mut RankCtx,
    cp: &DistCheckpoint,
    sh: &RankShared<'_, R>,
    track: &TrackHandle,
    state: &StateVector<R>,
    unit: usize,
) -> Result<(), SimError> {
    let _s = track.span_timed("checkpoint.write", unit as u64, "checkpoint_ns");
    let rank = ctx.rank();
    let n_ranks = ctx.n_ranks();
    let path = snapshot_path(&cp.dir, rank, unit);
    let digest = write_amps_snapshot(&path, state.amplitudes()).map_err(|e| {
        SimError::Checkpoint(format!("rank {rank}: snapshot {}: {e}", path.display()))
    })?;
    if rank == 0 {
        let mut digests = vec![digest; 1];
        digests.resize(n_ranks, 0);
        for (r, d) in digests.iter_mut().enumerate().skip(1) {
            let bytes = ctx.recv_bytes(r);
            let arr: [u8; 8] = bytes
                .as_slice()
                .try_into()
                .map_err(|_| SimError::Checkpoint(format!("rank {r}: malformed digest message")))?;
            *d = u64::from_le_bytes(arr);
        }
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            engine: "dist".to_string(),
            schedule_hash: schedule_fingerprint(sh.schedule),
            n_qubits: sh.schedule.n_qubits,
            local_qubits: sh.schedule.local_qubits,
            precision: R::NAME.to_string(),
            codec: "none".to_string(),
            init_uniform: sh.init_uniform,
            rng_seed: 0,
            next_unit: unit,
            total_units: sh.runs.len(),
            digests,
        };
        manifest
            .write_atomic(&cp.dir)
            .map_err(|e| SimError::Checkpoint(e.to_string()))?;
    } else {
        ctx.send_bytes(0, digest.to_le_bytes().to_vec());
    }
    // Barrier: the manifest for `unit` is durable everywhere beyond this
    // point, so the previous generation's snapshots are dead weight.
    ctx.barrier();
    if unit > 1 {
        let _ = std::fs::remove_file(snapshot_path(&cp.dir, rank, unit - 1));
    }
    Ok(())
}

/// Reduce a (possibly global-operand) diagonal op to this rank's local
/// action and apply it (§3.5).
pub fn apply_rank_diagonal<R: Real + ApplyDispatch>(
    state: &mut StateVector<R>,
    d: &DiagonalOp,
    rank: usize,
    l: u32,
) {
    apply_rank_diagonal_amps(state.amplitudes_mut(), d, rank, l);
}

/// Slice-based form of [`apply_rank_diagonal`] for engines that hold
/// amplitudes outside a [`StateVector`] (the out-of-core chunk loop,
/// where `rank` is the chunk index). Branch-identical to the wrapper, so
/// results are bitwise equal across engines. Diagonal entries (always
/// carried at f64 by the schedule) are rounded to `R` here, once per op
/// application — identical to the compiled path's compile-time rounding
/// because each entry is converted exactly once from the same f64 value.
pub fn apply_rank_diagonal_amps<R: Real>(
    amps: &mut [Complex<R>],
    d: &DiagonalOp,
    rank: usize,
    l: u32,
) {
    // Split operands into local and global; global bits come from the
    // rank id.
    let mut local_ops: Vec<(usize, u32)> = Vec::new(); // (operand j, position)
    let mut fixed_bits = 0usize; // operand-indexed bits from the rank
    for (j, &p) in d.positions.iter().enumerate() {
        if p < l {
            local_ops.push((j, p));
        } else {
            let bit = (rank >> (p - l)) & 1;
            fixed_bits |= bit << j;
        }
    }
    if local_ops.is_empty() {
        // Pure rank-conditional global phase.
        specialized::apply_global_phase(amps, d.diag[fixed_bits].convert());
        return;
    }
    // Reduced diagonal over the local operands (preserving their order).
    let k = local_ops.len();
    let mut reduced = vec![Complex::<R>::zero(); 1usize << k];
    for (x, r) in reduced.iter_mut().enumerate() {
        let mut idx = fixed_bits;
        for (b, &(j, _)) in local_ops.iter().enumerate() {
            idx |= ((x >> b) & 1) << j;
        }
        *r = d.diag[idx].convert();
    }
    let positions: Vec<u32> = local_ops.iter().map(|&(_, p)| p).collect();
    specialized::apply_diagonal(amps, &positions, &reduced);
}

/// Per-rank scratch and tuning state of the fused swap engine. Allocated
/// once (by `run_rank` or the caller) and reused across every swap of a
/// run: together with the fabric's recycled wire buffers this makes
/// steady-state swaps allocation-free.
#[derive(Clone, Debug, Default)]
pub struct SwapBuffers {
    /// Pipeline depth override; `None` picks a size-based default.
    sub_chunks: Option<usize>,
    /// Permutation tables of the most recent swap shape, so repeated
    /// swaps over the same slots rebuild (and heap-allocate) nothing.
    cache: Option<PermCache>,
    /// Swaps executed through this scratch.
    pub swaps: u64,
    /// Amplitude bytes moved by pack + unpack — the fused path's 2
    /// full-slice copies per swap (the reference path takes ~6).
    pub bytes_copied: u64,
}

#[derive(Clone, Debug)]
struct PermCache {
    slots: Vec<u32>,
    l: u32,
    perm: BitPermutation,
    inv: BitPermutation,
}

impl SwapBuffers {
    pub fn new(sub_chunks: Option<usize>) -> Self {
        Self {
            sub_chunks,
            ..Self::default()
        }
    }

    /// Pipeline depth for a peer segment of `seg_len` amplitudes of
    /// `amp_bytes` each (16 for f64 pairs, 8 for f32).
    pub fn depth_for(&self, seg_len: usize, amp_bytes: usize) -> usize {
        match self.sub_chunks {
            Some(s) => s.max(1),
            None => default_sub_chunks_sized(seg_len, amp_bytes),
        }
    }

    fn account(&mut self, group_size: usize, seg_len: usize, amp_bytes: usize) {
        self.swaps += 1;
        self.bytes_copied += 2 * (group_size as u64 - 1) * seg_len as u64 * amp_bytes as u64;
    }

    /// Permutation tables for a swap over `slots`, cached: a hit (the
    /// common steady-state case of a schedule reusing one swap shape, and
    /// the zero-alloc invariant's precondition) is allocation-free.
    fn perm_for(&mut self, slots: &[u32], l: u32) -> &PermCache {
        let hit = self
            .cache
            .as_ref()
            .is_some_and(|c| c.l == l && c.slots == slots);
        if !hit {
            let perm = slots_to_top_permutation(slots, l);
            let inv = perm.inverse();
            self.cache = Some(PermCache {
                slots: slots.to_vec(),
                l,
                perm,
                inv,
            });
        }
        self.cache.as_ref().unwrap()
    }
}

/// Size-based default pipeline depth: roughly one sub-chunk per MiB of
/// peer segment, clamped to `[1, 8]` — deep enough to overlap packing
/// with the peers' progress on large slices, and 1 (no split) on small
/// ones where per-message overhead would dominate. Measured tuning:
/// `qsim_kernels::autotune::tune_swap_sub_chunks`.
pub fn default_sub_chunks(seg_len: usize) -> usize {
    default_sub_chunks_sized(seg_len, 16)
}

/// [`default_sub_chunks`] for an explicit per-amplitude byte size: the
/// pipeline depth tracks wire *bytes*, so an f32 segment of the same
/// amplitude count splits into half as many sub-chunks.
pub fn default_sub_chunks_sized(seg_len: usize, amp_bytes: usize) -> usize {
    const PIPELINE_TARGET_BYTES: usize = 1 << 20;
    ((seg_len * amp_bytes) / PIPELINE_TARGET_BYTES).clamp(1, 8)
}

/// §3.4 global-to-local swap, fused: instead of permuting the slice,
/// exchanging, and permuting back, the permutation is folded into the
/// pack/unpack index mapping. Writing `p` for the slots→top permutation
/// and `q = p⁻¹`, the classic path computes
/// `final[x] = recv[p(x)]` with `recv[i·seg + t] = state_i[q(me·seg + t)]`,
/// so rank `r` packs `wire_to_d[t] = state_r[q(d·seg + t)]` for each
/// destination `d` and unpacks `state_r[q(i·seg + t)] = wire_from_i[t]` —
/// two copies total, in place, with the self segment (`d = r`) an exact
/// identity that is skipped. Sub-chunks of the same segment are disjoint
/// under `q`, and within a round all packs precede all unpacks, so the
/// in-place exchange is race-free at any pipeline depth.
pub fn perform_swap<R: SweepDispatch>(
    ctx: &mut RankCtx,
    state: &mut StateVector<R>,
    swap: &SwapOp,
    l: u32,
    bufs: &mut SwapBuffers,
) {
    let g = swap.local_slots.len() as u32;
    debug_assert!(1usize << g == ctx.n_ranks());
    let p = ctx.n_ranks();
    if p == 1 {
        return;
    }
    let amp_bytes = std::mem::size_of::<Complex<R>>();
    let comm = Communicator::world(ctx);
    let seg = state.len() / p;
    let depth = bufs.depth_for(seg, amp_bytes);
    {
        let cache = bufs.perm_for(&swap.local_slots, l);
        if cache.perm.is_identity() {
            // The outgoing qubits already sit at the top local positions:
            // the index mapping is trivial and pack/unpack degenerate to
            // memcpy.
            all_to_all_inplace(ctx, comm, state.amplitudes_mut(), depth);
        } else {
            let inv = &cache.inv;
            all_to_all_with::<Complex<R>, [Complex<R>]>(
                ctx,
                comm,
                seg,
                depth,
                state.amplitudes_mut(),
                |amps, d, r, wire| par_gather(amps, wire, |t| inv.apply(d * seg + r.start + t)),
                |amps, i, r, wire| par_scatter(wire, amps, |t| inv.apply(i * seg + r.start + t)),
            );
        }
    }
    bufs.account(p, seg, amp_bytes);
}

/// The textbook §3.4 swap data path (local permutation → allocating
/// all-to-all → copy back → inverse permutation). Kept as the equivalence
/// oracle for [`perform_swap`] and for before/after copy accounting — it
/// traverses the full slice ~6 times where the fused engine does 2.
pub fn perform_swap_reference<R: SweepDispatch>(
    ctx: &mut RankCtx,
    state: &mut StateVector<R>,
    swap: &SwapOp,
    l: u32,
) {
    let g = swap.local_slots.len() as u32;
    debug_assert!(1usize << g == ctx.n_ranks());
    let perm = slots_to_top_permutation(&swap.local_slots, l);
    if !perm.is_identity() {
        state.permute_qubits(&perm);
    }
    let recv = all_to_all(ctx, Communicator::world(ctx), state.amplitudes());
    state.amplitudes_mut().copy_from_slice(&recv);
    if !perm.is_identity() {
        state.permute_qubits(&perm.inverse());
    }
}

/// §3.4 *partial* global-to-local swap (Fig. 3): exchange the LOW `q`
/// global bits with the TOP `q` local bits using one group-local
/// all-to-all per group of `2^q` ranks (ranks sharing their high `g − q`
/// bits). `q = g` degenerates to the full swap on `MPI_COMM_WORLD`.
///
/// The production scheduler emits full swaps (the paper's counting unit);
/// this entry point exposes the generalized machinery for ablations and
/// for workloads where only a few global qubits are ever needed locally.
pub fn perform_partial_swap<R: SweepDispatch>(
    ctx: &mut RankCtx,
    state: &mut StateVector<R>,
    q: u32,
    l: u32,
) {
    let mut bufs = SwapBuffers::default();
    perform_partial_swap_with(ctx, state, q, l, &mut bufs);
}

/// [`perform_partial_swap`] with caller-owned scratch — the zero-alloc
/// path. No local permutation is involved, so the exchange runs through
/// the in-place pipelined collective directly.
pub fn perform_partial_swap_with<R: SweepDispatch>(
    ctx: &mut RankCtx,
    state: &mut StateVector<R>,
    q: u32,
    l: u32,
    bufs: &mut SwapBuffers,
) {
    let g = qsim_util::bits::log2_exact(ctx.n_ranks());
    assert!(
        q >= 1 && q <= g,
        "partial swap width {q} out of range (g={g})"
    );
    assert!(l >= q, "need at least q local qubits");
    let amp_bytes = std::mem::size_of::<Complex<R>>();
    let comm = Communicator::group_of(ctx.rank(), 1usize << q);
    let seg = state.len() / comm.size;
    all_to_all_inplace(
        ctx,
        comm,
        state.amplitudes_mut(),
        bufs.depth_for(seg, amp_bytes),
    );
    bufs.account(comm.size, seg, amp_bytes);
}

/// Build the local bit permutation taking `slots[i]` to position
/// `l − g + i` (the highest-order local bits), keeping all other
/// positions in ascending order.
pub fn slots_to_top_permutation(slots: &[u32], l: u32) -> BitPermutation {
    let g = slots.len() as u32;
    let mut map = vec![u32::MAX; l as usize];
    for (i, &s) in slots.iter().enumerate() {
        map[s as usize] = l - g + i as u32;
    }
    let mut next = 0u32;
    for m in map.iter_mut() {
        if *m == u32::MAX {
            *m = next;
            next += 1;
        }
    }
    BitPermutation::new(map)
}

/// Reorder a full physical state into logical basis order:
/// `out[b] = physical[p]` with `p`'s bit `mapping[q]` equal to `b`'s bit
/// `q`.
pub fn physical_to_logical<R: Real>(physical: &[Complex<R>], mapping: &[u32]) -> Vec<Complex<R>> {
    let n = mapping.len();
    assert_eq!(physical.len(), 1usize << n);
    let perm = BitPermutation::new(mapping.to_vec());
    let mut out = vec![Complex::<R>::zero(); physical.len()];
    for b in 0..physical.len() {
        out[b] = physical[perm.apply(b)];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{strip_initial_hadamards, SingleNodeSimulator};
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_sched::{plan, SchedulerConfig};
    use qsim_util::c64;
    use qsim_util::complex::max_dist;

    fn dist_run(
        rows: u32,
        cols: u32,
        depth: u32,
        seed: u64,
        l: u32,
        kmax: u32,
    ) -> (Vec<c64>, DistOutcome) {
        let c = supremacy_circuit(&SupremacySpec {
            rows,
            cols,
            depth,
            seed,
        });
        let n = c.n_qubits();
        let (exec, uniform) = strip_initial_hadamards(&c);
        assert!(uniform);
        let schedule = plan(&exec, &SchedulerConfig::distributed(l, kmax));
        schedule.verify(&exec);
        let sim = DistSimulator::new(DistConfig {
            n_ranks: 1usize << (n - l),
            kernel: KernelConfig::sequential(),
            gather_state: true,
            // Exercise the pipelined exchange (odd depth, non-divisible
            // sub-ranges) in every equivalence test.
            sub_chunks: Some(3),
            ..Default::default()
        });
        let out = sim.run(&exec, &schedule, true);
        // Reference: single-node run of the same circuit.
        let single = SingleNodeSimulator::default().run(&c);
        (single.state.amplitudes().to_vec(), out)
    }

    #[test]
    fn distributed_matches_single_node_2_ranks() {
        let (expect, out) = dist_run(3, 3, 14, 0, 8, 4);
        let got = out.state.clone().unwrap();
        assert!(max_dist(&got, &expect) < 1e-10);
        assert!((out.norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distributed_matches_single_node_4_and_8_ranks() {
        for l in [8u32, 7] {
            let (expect, out) = dist_run(2, 5, 16, 3, l, 3);
            let got = out.state.clone().unwrap();
            assert!(
                max_dist(&got, &expect) < 1e-10,
                "l={l}: {}",
                max_dist(&got, &expect)
            );
            assert!(out.fabric.total_bytes_sent > 0, "must actually communicate");
        }
    }

    #[test]
    fn entropy_reduction_matches_gathered_state() {
        let (_, out) = dist_run(3, 3, 12, 9, 7, 3);
        let state = out.state.clone().unwrap();
        let mut h = 0.0;
        for a in &state {
            let p = a.norm_sqr();
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        assert!((h - out.entropy).abs() < 1e-9);
        assert!(out.entropy_seconds >= 0.0);
    }

    #[test]
    fn slots_to_top_permutation_shapes() {
        // l=4, slots=[0,2] -> 0->2, 2->3; others ascending: 1->0, 3->1.
        let p = slots_to_top_permutation(&[0, 2], 4);
        assert_eq!(p.target(0), 2);
        assert_eq!(p.target(2), 3);
        assert_eq!(p.target(1), 0);
        assert_eq!(p.target(3), 1);
        // Top slots already: identity.
        let p2 = slots_to_top_permutation(&[2, 3], 4);
        assert!(p2.is_identity());
    }

    #[test]
    fn rank_diagonal_reduction() {
        // CZ on (local 0, global l+1) with l = 2: phase -1 only on ranks
        // with global bit 1 set, and only on local amplitudes with bit 0.
        let d = DiagonalOp {
            positions: vec![0, 3],
            diag: vec![c64::one(), c64::one(), c64::one(), -c64::one()],
            gate_indices: vec![],
        };
        // rank 0b10 -> global bit (3-2)=1 set.
        let mut s = StateVector::<f64>::uniform(2);
        apply_rank_diagonal(&mut s, &d, 0b10, 2);
        assert!(
            (s.amplitudes()[1].re + 0.5).abs() < 1e-12,
            "bit0 set flipped"
        );
        assert!((s.amplitudes()[0].re - 0.5).abs() < 1e-12);
        // rank 0b01 -> global bit clear: no action.
        let mut s2 = StateVector::<f64>::uniform(2);
        apply_rank_diagonal(&mut s2, &d, 0b01, 2);
        assert!((s2.amplitudes()[1].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pure_global_diagonal_is_phase() {
        // T on a global qubit: ranks with the bit set get the phase.
        let d = DiagonalOp {
            positions: vec![2],
            diag: vec![c64::one(), c64::from_polar(1.0, 0.25)],
            gate_indices: vec![],
        };
        let mut s = StateVector::<f64>::uniform(2);
        apply_rank_diagonal(&mut s, &d, 0b1, 2);
        let expect = c64::new(0.5, 0.0) * c64::from_polar(1.0, 0.25);
        assert!((s.amplitudes()[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn physical_to_logical_reorders() {
        // 2 qubits, mapping logical0->phys1, logical1->phys0.
        let phys = vec![
            c64::new(0.0, 0.0),
            c64::new(1.0, 0.0),
            c64::new(2.0, 0.0),
            c64::new(3.0, 0.0),
        ];
        let out = physical_to_logical(&phys, &[1, 0]);
        // logical b=01 (q0=1) -> physical bit1 set -> index 2.
        assert_eq!(out[1].re, 2.0);
        assert_eq!(out[2].re, 1.0);
        assert_eq!(out[0].re, 0.0);
        assert_eq!(out[3].re, 3.0);
    }

    #[test]
    fn partial_swap_equals_bit_transpositions() {
        // A q-bit partial swap must equal swapping physical positions
        // (l−q+i) <-> (l+i) on the full index space.
        use qsim_net::fabric::run_cluster;
        use qsim_util::Xoshiro256;
        let n = 8u32;
        for (g, q) in [(2u32, 1u32), (2, 2), (3, 2)] {
            let l = n - g;
            let full_len = 1usize << n;
            let mut rng = Xoshiro256::seed_from_u64(100 + (g * 10 + q) as u64);
            let full: Vec<c64> = (0..full_len)
                .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                .collect();
            let full_ref = full.clone();
            let (slices, _) = run_cluster(1usize << g, |ctx| {
                let r = ctx.rank();
                let mut state =
                    StateVector::from_amplitudes(full_ref[r << l..(r + 1) << l].to_vec());
                perform_partial_swap(ctx, &mut state, q, l);
                state.amplitudes().to_vec()
            });
            let mut got = vec![c64::zero(); full_len];
            for (r, s) in slices.iter().enumerate() {
                got[r << l..(r + 1) << l].copy_from_slice(s);
            }
            // Expected: transpose bits (l-q+i) and (l+i).
            let mut perm = BitPermutation::identity(n as usize);
            for i in 0..q {
                perm = perm.then(&BitPermutation::transposition(n as usize, l - q + i, l + i));
            }
            let mut expect = vec![c64::zero(); full_len];
            perm.permute_slice(&full, &mut expect);
            assert!(
                max_dist(&got, &expect) < 1e-15,
                "g={g} q={q}: {}",
                max_dist(&got, &expect)
            );
        }
    }

    #[test]
    fn partial_swap_moves_fewer_bytes_than_full() {
        use qsim_net::fabric::run_cluster;
        let n = 8u32;
        let g = 3u32;
        let l = n - g;
        let run = |q: u32| {
            let (_, stats) = run_cluster(1usize << g, |ctx| {
                let mut state = StateVector::<f64>::uniform_slice(l, n);
                perform_partial_swap(ctx, &mut state, q, l);
            });
            stats.total_bytes_sent
        };
        let b1 = run(1);
        let b3 = run(3);
        assert!(b1 < b3, "1-bit swap {b1} must be cheaper than full {b3}");
        // q=1: each rank ships half its slice to its pair partner.
        assert_eq!(b1, (1u64 << g) * (1u64 << (l - 1)) * 16);
    }

    #[test]
    fn zero_state_init_distributed() {
        // Identity circuit from |0..0>: amplitude must stay on rank 0.
        let mut c = qsim_circuit::Circuit::new(4);
        c.t(0); // phase on |..1>, no-op on |0..0>
        let schedule = plan(&c, &SchedulerConfig::distributed(3, 2));
        let sim = DistSimulator::new(DistConfig {
            n_ranks: 2,
            kernel: KernelConfig::sequential(),
            gather_state: true,
            ..Default::default()
        });
        let out = sim.run(&c, &schedule, false);
        let state = out.state.unwrap();
        assert!((state[0] - c64::one()).abs() < 1e-12);
        assert!((out.norm - 1.0).abs() < 1e-12);
    }
}
