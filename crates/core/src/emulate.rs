//! Emulation shortcuts — the paper's §1 contrast case (ref \[7\]):
//!
//! > "quantum Fourier transform … can be emulated by applying a fast
//! > Fourier transform to the state vector. However, such emulation
//! > techniques are not applicable to quantum supremacy circuits."
//!
//! [`emulate_qft`] applies the QFT to a state as one radix-2 FFT sweep
//! (O(N log N) instead of O(N·n²) gate kernels); the example
//! `qft_emulation` measures the gap. The FFT is implemented here —
//! iterative Cooley–Tukey with bit-reversal — to keep the workspace
//! dependency-free.

use crate::state::StateVector;
use qsim_util::c64;

/// In-place iterative radix-2 Cooley–Tukey FFT with sign `s ∈ {−1, +1}`
/// in the exponent `e^{s·2πi·jk/N}` and NO normalization.
pub fn fft_inplace(data: &mut [c64], sign: f64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = c64::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = c64::one();
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Apply the n-qubit QFT to the whole state as one FFT:
/// `b_k = 2^{−n/2} Σ_x a_x e^{2πi·xk/2^n}`.
pub fn emulate_qft(state: &mut StateVector<f64>) {
    let n = state.len();
    fft_inplace(state.amplitudes_mut(), 1.0);
    let scale = 1.0 / (n as f64).sqrt();
    for a in state.amplitudes_mut() {
        *a = a.scale(scale);
    }
}

/// Inverse QFT via the conjugate FFT.
pub fn emulate_iqft(state: &mut StateVector<f64>) {
    let n = state.len();
    fft_inplace(state.amplitudes_mut(), -1.0);
    let scale = 1.0 / (n as f64).sqrt();
    for a in state.amplitudes_mut() {
        *a = a.scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::SingleNodeSimulator;
    use qsim_circuit::algorithms::qft;
    use qsim_util::complex::max_dist;
    use qsim_util::Xoshiro256;

    #[test]
    fn fft_matches_direct_dft() {
        let n = 64usize;
        let mut rng = Xoshiro256::seed_from_u64(2);
        let input: Vec<c64> = (0..n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let mut fast = input.clone();
        fft_inplace(&mut fast, 1.0);
        for (k, f) in fast.iter().enumerate() {
            let mut direct = c64::zero();
            for (x, a) in input.iter().enumerate() {
                let theta = 2.0 * std::f64::consts::PI * (x * k % n) as f64 / n as f64;
                direct += *a * c64::from_polar(1.0, theta);
            }
            assert!((*f - direct).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn fft_round_trip() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let input: Vec<c64> = (0..256)
            .map(|_| c64::new(rng.next_f64(), rng.next_f64()))
            .collect();
        let mut data = input.clone();
        fft_inplace(&mut data, 1.0);
        fft_inplace(&mut data, -1.0);
        let inv = 1.0 / 256.0;
        data.iter_mut().for_each(|a| *a = a.scale(inv));
        assert!(max_dist(&data, &input) < 1e-10);
    }

    #[test]
    fn emulated_qft_matches_gate_level_qft() {
        // The [7] check: FFT emulation == gate-by-gate QFT circuit.
        for n in [3u32, 5, 8] {
            let circuit = qft(n);
            // Random input state, via a quick scrambling circuit.
            let scramble = qsim_circuit::algorithms::brickwork_1d(n, 4, 77);
            let input = SingleNodeSimulator::default().run(&scramble).state;

            // Gate-level: apply the QFT gates to the input.
            let mut gate_level = crate::StateVector::from_amplitudes(input.amplitudes().to_vec());
            let cfg = qsim_kernels::apply::KernelConfig::sequential();
            for g in circuit.gates() {
                let m: qsim_util::matrix::GateMatrix<f64> = g.matrix();
                if let Some(d) = m.as_diagonal() {
                    gate_level.apply_diagonal(&g.qubits(), &d);
                } else {
                    gate_level.apply(&g.qubits(), &m, &cfg);
                }
            }

            // Emulated.
            let mut emulated = crate::StateVector::from_amplitudes(input.amplitudes().to_vec());
            emulate_qft(&mut emulated);
            assert!(
                max_dist(gate_level.amplitudes(), emulated.amplitudes()) < 1e-9,
                "n={n}: {}",
                max_dist(gate_level.amplitudes(), emulated.amplitudes())
            );
        }
    }

    #[test]
    fn qft_then_iqft_is_identity() {
        let scramble = qsim_circuit::algorithms::brickwork_1d(7, 5, 3);
        let input = SingleNodeSimulator::default().run(&scramble).state;
        let mut s = crate::StateVector::from_amplitudes(input.amplitudes().to_vec());
        emulate_qft(&mut s);
        emulate_iqft(&mut s);
        assert!(max_dist(s.amplitudes(), input.amplitudes()) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_odd_lengths() {
        let mut data = vec![c64::zero(); 12];
        fft_inplace(&mut data, 1.0);
    }
}
