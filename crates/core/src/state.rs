//! The state-vector container.
//!
//! Wraps a 64-byte-aligned amplitude buffer with the operations every
//! engine needs: initialization (|0…0⟩ or the uniform superposition the
//! paper starts supremacy runs from, §3.6), gate application through the
//! kernel dispatch, diagonal/specialized operations, norms and
//! probabilities. Generic over precision (f64 default; f32 per §5).

use qsim_kernels::apply::{apply_gate, ApplyDispatch, KernelConfig};
use qsim_kernels::specialized;
use qsim_util::bits::{log2_exact, BitPermutation};
use qsim_util::complex::Complex;
use qsim_util::matrix::GateMatrix;
use qsim_util::{AlignedVec, Real};

/// An n-qubit (or rank-local l-qubit) state vector.
pub struct StateVector<T = f64> {
    amps: AlignedVec<Complex<T>>,
    n_qubits: u32,
}

impl<T: Real + ApplyDispatch> StateVector<T> {
    /// |0…0⟩.
    pub fn zero(n_qubits: u32) -> Self {
        let mut amps = AlignedVec::new_zeroed(1usize << n_qubits);
        amps[0] = Complex::one();
        Self { amps, n_qubits }
    }

    /// All-zero amplitudes (for rank slices whose |0…0⟩ lives elsewhere).
    pub fn null(n_qubits: u32) -> Self {
        Self {
            amps: AlignedVec::new_zeroed(1usize << n_qubits),
            n_qubits,
        }
    }

    /// The uniform superposition 2^{−n/2}(1,…,1)ᵀ — the state after the
    /// initial Hadamard layer, which the simulator writes directly
    /// instead of executing the H gates (§3.6).
    pub fn uniform(n_qubits: u32) -> Self {
        let len = 1usize << n_qubits;
        let amp = Complex::new(T::ONE / T::from_usize(len).sqrt(), T::ZERO);
        let mut amps = AlignedVec::new_zeroed(len);
        amps.iter_mut().for_each(|a| *a = amp);
        Self { amps, n_qubits }
    }

    /// Uniform amplitude value for a SLICE of a larger uniform state:
    /// every amplitude is 2^{−total/2}.
    pub fn uniform_slice(local_qubits: u32, total_qubits: u32) -> Self {
        let len = 1usize << local_qubits;
        let amp = Complex::new(
            T::ONE / T::from_usize(1usize << total_qubits).sqrt(),
            T::ZERO,
        );
        let mut amps = AlignedVec::new_zeroed(len);
        amps.iter_mut().for_each(|a| *a = amp);
        Self {
            amps,
            n_qubits: local_qubits,
        }
    }

    /// Adopt an existing amplitude vector.
    pub fn from_amplitudes(amps: Vec<Complex<T>>) -> Self {
        let n_qubits = log2_exact(amps.len());
        Self {
            amps: AlignedVec::from_slice(&amps),
            n_qubits,
        }
    }

    #[inline]
    pub fn n_qubits(&self) -> u32 {
        self.n_qubits
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    pub fn amplitudes(&self) -> &[Complex<T>] {
        &self.amps
    }

    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex<T>] {
        &mut self.amps
    }

    /// Apply a dense k-qubit gate at `qubits` using the configured kernel.
    pub fn apply(&mut self, qubits: &[u32], m: &GateMatrix<T>, cfg: &KernelConfig) {
        apply_gate(&mut self.amps, qubits, m, cfg);
    }

    /// Apply a diagonal gate (specialized kernel, §3.5).
    pub fn apply_diagonal(&mut self, qubits: &[u32], diag: &[Complex<T>]) {
        specialized::apply_diagonal(&mut self.amps, qubits, diag);
    }

    /// Multiply the whole vector by a phase.
    pub fn apply_global_phase(&mut self, phase: Complex<T>) {
        specialized::apply_global_phase(&mut self.amps, phase);
    }

    /// In-place bit-position permutation (local qubit reordering, §3.4).
    pub fn permute_qubits(&mut self, perm: &BitPermutation) {
        specialized::permute_qubits_inplace(&mut self.amps, perm);
    }

    /// Σ|α|² — must stay 1 under unitary circuits.
    pub fn norm_sqr(&self) -> T {
        let mut s = T::ZERO;
        for a in self.amps.iter() {
            s += a.norm_sqr();
        }
        s
    }

    /// Probability that qubit (bit position) `q` reads 1.
    pub fn prob_one(&self, q: u32) -> T {
        specialized::prob_one(&self.amps, q)
    }

    /// All 2^n outcome probabilities (small n only).
    pub fn probabilities(&self) -> Vec<T> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Shannon entropy (bits) of the outcome distribution.
    pub fn entropy(&self) -> T {
        let mut h = T::ZERO;
        for a in self.amps.iter() {
            let p = a.norm_sqr();
            if p > T::ZERO {
                h -= p * p.log2();
            }
        }
        h
    }

    /// Convert precision (f64 ↔ f32), e.g. for the §5 single-precision
    /// mode.
    pub fn convert<U: Real + ApplyDispatch>(&self) -> StateVector<U> {
        StateVector::from_amplitudes(self.amps.iter().map(|a| a.convert()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::Gate;
    use qsim_util::c64;

    #[test]
    fn initial_states() {
        let z = StateVector::<f64>::zero(4);
        assert_eq!(z.len(), 16);
        assert_eq!(z.amplitudes()[0], c64::one());
        assert!((z.norm_sqr() - 1.0).abs() < 1e-15);

        let u = StateVector::<f64>::uniform(4);
        assert!((u.norm_sqr() - 1.0).abs() < 1e-12);
        assert!(
            (u.entropy() - 4.0).abs() < 1e-12,
            "uniform entropy = n bits"
        );

        // A 2-qubit slice of a 4-qubit uniform state: norm = 4/16.
        let s = StateVector::<f64>::uniform_slice(2, 4);
        assert!((s.norm_sqr() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn apply_h_gives_uniform() {
        let mut s = StateVector::<f64>::zero(3);
        let cfg = KernelConfig::sequential();
        let h: GateMatrix<f64> = Gate::H(0).matrix();
        for q in 0..3 {
            s.apply(&[q], &h, &cfg);
        }
        let u = StateVector::<f64>::uniform(3);
        assert!(qsim_util::complex::max_dist(s.amplitudes(), u.amplitudes()) < 1e-12);
    }

    #[test]
    fn diagonal_and_phase() {
        let mut s = StateVector::<f64>::uniform(2);
        s.apply_diagonal(&[0], &[c64::one(), -c64::one()]); // Z on qubit 0
        assert!((s.amplitudes()[1].re + 0.5).abs() < 1e-12);
        assert!((s.amplitudes()[0].re - 0.5).abs() < 1e-12);
        s.apply_global_phase(c64::i());
        assert!((s.amplitudes()[0].im - 0.5).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_moves_marginals() {
        let mut s = StateVector::<f64>::zero(3);
        let cfg = KernelConfig::sequential();
        let x: GateMatrix<f64> = Gate::X(0).matrix();
        s.apply(&[0], &x, &cfg); // |001>
        assert!((s.prob_one(0) - 1.0).abs() < 1e-12);
        s.permute_qubits(&BitPermutation::transposition(3, 0, 2));
        assert!((s.prob_one(2) - 1.0).abs() < 1e-12);
        assert!(s.prob_one(0).abs() < 1e-12);
    }

    #[test]
    fn precision_conversion_round_trip() {
        let mut s = StateVector::<f64>::uniform(3);
        s.apply_diagonal(&[1], &[c64::one(), c64::from_polar(1.0, 0.5)]);
        let s32: StateVector<f32> = s.convert();
        let back: StateVector<f64> = s32.convert();
        assert!(qsim_util::complex::max_dist(s.amplitudes(), back.amplitudes()) < 1e-6);
    }

    #[test]
    fn from_amplitudes_infers_size() {
        let v = vec![c64::zero(); 8];
        let s = StateVector::from_amplitudes(v);
        assert_eq!(s.n_qubits(), 3);
    }
}
