//! Observables: sampling, entropy, and cross-entropy diagnostics.
//!
//! The paper's measured quantity for the 36-qubit Edison run is the
//! entropy of the output distribution (§4.2.2); supremacy verification in
//! \[5\] additionally uses cross-entropy statistics against the
//! Porter–Thomas distribution that deep random circuits approach. Both
//! are provided here, plus bitstring sampling (the operational task a
//! supremacy experiment performs).

use crate::state::StateVector;
use qsim_util::Xoshiro256;

/// Sample `shots` bitstrings from the outcome distribution.
///
/// Inverse-CDF walk per shot over the amplitude array — O(2^n) per shot
/// in the worst case but cache-friendly; fine for the 2^20-amplitude
/// states the examples use.
pub fn sample_bitstrings(
    state: &StateVector<f64>,
    rng: &mut Xoshiro256,
    shots: usize,
) -> Vec<usize> {
    let amps = state.amplitudes();
    let mut out = Vec::with_capacity(shots);
    for _ in 0..shots {
        let mut target = rng.next_f64();
        let mut idx = amps.len() - 1;
        for (i, a) in amps.iter().enumerate() {
            let p = a.norm_sqr();
            if target < p {
                idx = i;
                break;
            }
            target -= p;
        }
        out.push(idx);
    }
    out
}

/// Shannon entropy (bits) of an explicit probability vector.
pub fn entropy_of(probs: &[f64]) -> f64 {
    let mut h = 0.0;
    for &p in probs {
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// The linear cross-entropy benchmarking fidelity (XEB) of a set of
/// sampled bitstrings against the simulated distribution:
/// `F = 2^n · ⟨p(x_i)⟩ − 1`. Sampling from the circuit's own output
/// distribution gives F ≈ 1 for Porter–Thomas-shaped distributions;
/// uniform sampling gives F ≈ 0.
pub fn linear_xeb(state: &StateVector<f64>, samples: &[usize]) -> f64 {
    assert!(!samples.is_empty());
    let n = state.n_qubits();
    let amps = state.amplitudes();
    let mean_p: f64 =
        samples.iter().map(|&i| amps[i].norm_sqr()).sum::<f64>() / samples.len() as f64;
    (1usize << n) as f64 * mean_p - 1.0
}

/// Porter–Thomas shape statistic: for a deep random circuit the scaled
/// probabilities `x = N·p` follow `P(x) = e^{−x}`, so the expected
/// entropy is `log2(N) − (1 − γ)/ln 2 ≈ n − 0.6099`. Returns the
/// deviation `entropy − (n − 0.6099)` in bits; near 0 for supremacy
/// circuits of sufficient depth, strongly positive for shallow/product
/// states.
pub fn porter_thomas_entropy_gap(state: &StateVector<f64>) -> f64 {
    let n = state.n_qubits() as f64;
    let expected = n - (1.0 - 0.577_215_664_901_532_9) / std::f64::consts::LN_2;
    state.entropy() - expected
}

/// Marginal single-qubit probabilities `P(q = 1)` for all qubits.
pub fn marginals(state: &StateVector<f64>) -> Vec<f64> {
    (0..state.n_qubits()).map(|q| state.prob_one(q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::SingleNodeSimulator;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_circuit::Circuit;

    fn deep_state(n_rows: u32, n_cols: u32, depth: u32) -> StateVector<f64> {
        let c = supremacy_circuit(&SupremacySpec {
            rows: n_rows,
            cols: n_cols,
            depth,
            seed: 123,
        });
        SingleNodeSimulator::default().run(&c).state
    }

    #[test]
    fn sampling_respects_distribution() {
        // GHZ-like: only |00> and |11> appear.
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let state = SingleNodeSimulator::default().run(&c).state;
        let mut rng = Xoshiro256::seed_from_u64(5);
        let samples = sample_bitstrings(&state, &mut rng, 2000);
        let zeros = samples.iter().filter(|&&s| s == 0).count();
        let threes = samples.iter().filter(|&&s| s == 3).count();
        assert_eq!(zeros + threes, 2000, "only GHZ outcomes may appear");
        let frac = zeros as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "zeros fraction {frac}");
    }

    #[test]
    fn xeb_close_to_one_for_own_distribution() {
        let state = deep_state(3, 4, 28);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let samples = sample_bitstrings(&state, &mut rng, 4000);
        let f = linear_xeb(&state, &samples);
        // Finite-size instances fluctuate around the Porter–Thomas value
        // of 1; the signal is that own-distribution sampling sits near 1
        // while uniform sampling (next test) sits near 0.
        assert!(
            (0.5..2.0).contains(&f),
            "XEB for own-distribution sampling should be ~1, got {f}"
        );
    }

    #[test]
    fn xeb_near_zero_for_uniform_sampling() {
        let state = deep_state(3, 3, 20);
        let mut rng = Xoshiro256::seed_from_u64(10);
        let samples: Vec<usize> = (0..4000)
            .map(|_| rng.next_below(state.len() as u64) as usize)
            .collect();
        let f = linear_xeb(&state, &samples);
        assert!(f.abs() < 0.2, "uniform sampling XEB should be ~0, got {f}");
    }

    #[test]
    fn porter_thomas_gap_small_for_deep_circuits() {
        let state = deep_state(3, 4, 28);
        let gap = porter_thomas_entropy_gap(&state);
        assert!(gap.abs() < 0.35, "deep circuit PT gap {gap}");
        // Uniform superposition is far from Porter–Thomas (entropy = n).
        let uniform = StateVector::<f64>::uniform(9);
        assert!(porter_thomas_entropy_gap(&uniform) > 0.5);
    }

    #[test]
    fn entropy_of_matches_statevector_entropy() {
        let state = deep_state(2, 3, 12);
        let h1 = entropy_of(&state.probabilities());
        assert!((h1 - state.entropy()).abs() < 1e-12);
    }

    #[test]
    fn marginals_of_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let state = SingleNodeSimulator::default().run(&c).state;
        for m in marginals(&state) {
            assert!((m - 0.5).abs() < 1e-12);
        }
    }
}
