//! The prior-art baseline simulator — the comparator behind Table 2's
//! speedup column.
//!
//! Re-implements the execution strategy of \[5\]/\[19\]: gates run one by
//! one in circuit order (no reordering, no fusion); diagonal gates are
//! specialized (as \[5\] does — its ~50 communication steps per depth-25
//! 42-qubit circuit are the dense single-qubit gates on global qubits);
//! a dense gate on a global qubit triggers the pairwise scheme of \[19\]:
//! **two exchanges of half the state vector** with the partner rank that
//! differs in that global bit. No global-to-local swaps, no clustering,
//! no mapping optimization — exactly the gap the paper's optimizations
//! close.

use crate::dist::{apply_rank_diagonal, physical_to_logical};
use crate::single::strip_initial_hadamards;
use crate::state::StateVector;
use qsim_circuit::Circuit;
use qsim_kernels::apply::KernelConfig;
use qsim_net::collective::all_reduce_sum;
use qsim_net::fabric::{run_cluster, FabricStats, RankCtx};
use qsim_sched::DiagonalOp;
use qsim_util::c64;
use qsim_util::matrix::GateMatrix;
use std::time::Instant;

/// Baseline run results.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    pub norm: f64,
    pub entropy: f64,
    pub sim_seconds: f64,
    pub fabric: FabricStats,
    /// Count of communication events (global dense gates).
    pub comm_steps: usize,
    pub state: Option<Vec<c64>>,
}

/// Per-gate baseline engine.
pub struct BaselineSimulator {
    pub n_ranks: usize,
    pub kernel: KernelConfig,
    pub gather_state: bool,
}

impl BaselineSimulator {
    pub fn new(n_ranks: usize, kernel: KernelConfig) -> Self {
        Self {
            n_ranks,
            kernel,
            gather_state: false,
        }
    }

    /// Run a circuit per-gate. The initial Hadamard layer (if present) is
    /// replaced by a uniform initialization, as \[5\] also does.
    pub fn run(&self, circuit: &Circuit) -> BaselineOutcome {
        let n = circuit.n_qubits();
        assert!(self.n_ranks.is_power_of_two());
        let g = self.n_ranks.trailing_zeros();
        let l = n - g;
        assert!(l >= 1, "too many ranks for {n} qubits");
        let (exec, init_uniform) = strip_initial_hadamards(circuit);
        let cfg = &self.kernel;
        let gather = self.gather_state;

        let (rank_results, fabric) = run_cluster(self.n_ranks, |ctx| {
            run_rank_baseline(ctx, &exec, l, init_uniform, cfg, gather)
        });
        let comm_steps = rank_results[0].1;
        let mut outcome = BaselineOutcome {
            norm: rank_results[0].2,
            entropy: rank_results[0].3,
            sim_seconds: rank_results.iter().map(|r| r.0).fold(0.0, f64::max),
            fabric,
            comm_steps,
            state: None,
        };
        if gather {
            let mut physical = vec![c64::zero(); 1usize << n];
            for (r, res) in rank_results.iter().enumerate() {
                physical[r << l..(r + 1) << l]
                    .copy_from_slice(res.4.as_ref().expect("gather requested"));
            }
            // Baseline never remaps qubits: physical order IS logical.
            let identity: Vec<u32> = (0..n).collect();
            outcome.state = Some(physical_to_logical(&physical, &identity));
        }
        outcome
    }
}

type RankOut = (f64, usize, f64, f64, Option<Vec<c64>>);

fn run_rank_baseline(
    ctx: &mut RankCtx,
    circuit: &Circuit,
    l: u32,
    init_uniform: bool,
    cfg: &KernelConfig,
    gather: bool,
) -> RankOut {
    let n = circuit.n_qubits();
    let rank = ctx.rank();
    let t0 = Instant::now();
    let mut state = if init_uniform {
        StateVector::<f64>::uniform_slice(l, n)
    } else if rank == 0 {
        StateVector::<f64>::zero(l)
    } else {
        StateVector::<f64>::null(l)
    };
    let mut comm_steps = 0usize;

    for gate in circuit.gates() {
        let qubits = gate.qubits();
        let global: Vec<u32> = qubits.iter().copied().filter(|&q| q >= l).collect();
        if gate.is_diagonal() {
            let m: GateMatrix<f64> = gate.matrix();
            let d = DiagonalOp {
                positions: qubits.clone(),
                diag: m.as_diagonal().expect("diagonal gate"),
                gate_indices: vec![],
            };
            apply_rank_diagonal(&mut state, &d, rank, l);
        } else if global.is_empty() {
            let m: GateMatrix<f64> = gate.matrix();
            state.apply(&qubits, &m, cfg);
        } else {
            // Dense global gate: the [19] pairwise scheme.
            assert_eq!(
                qubits.len(),
                1,
                "baseline supports dense global gates of one qubit (gate {})",
                gate.name()
            );
            let m: GateMatrix<f64> = gate.matrix();
            apply_global_1q_pairwise(ctx, &mut state, global[0] - l, &m);
            comm_steps += 1;
        }
    }

    let local_norm = state.norm_sqr();
    let mut local_entropy = 0.0f64;
    for a in state.amplitudes() {
        let p = a.norm_sqr();
        if p > 0.0 {
            local_entropy -= p * p.log2();
        }
    }
    let norm = all_reduce_sum(ctx, local_norm);
    let entropy = all_reduce_sum(ctx, local_entropy);
    (
        t0.elapsed().as_secs_f64(),
        comm_steps,
        norm,
        entropy,
        gather.then(|| state.amplitudes().to_vec()),
    )
}

/// Apply a dense single-qubit gate on global bit `b` using two pairwise
/// exchanges of half the local slice (\[19\]; Fig. 3a's scheme executed
/// per-gate).
///
/// The amplitude pair for local index `i` is `(A_i, B_i)` with `A` on the
/// bit-0 rank and `B` on the bit-1 rank. The lower rank computes the
/// first half of the index range, the upper rank the second half:
/// exchange 1 ships each rank's "other half" to its partner; each rank
/// applies the 2×2 gate to its half; exchange 2 ships the updated
/// other-side amplitudes back.
pub fn apply_global_1q_pairwise(
    ctx: &mut RankCtx,
    state: &mut StateVector<f64>,
    b: u32,
    m: &GateMatrix<f64>,
) {
    let partner = ctx.rank() ^ (1usize << b);
    let lower = ctx.rank() < partner; // my global bit is 0
    let len = state.len();
    let half = len / 2;
    let (mine_r, theirs_r) = if lower {
        (0..half, half..len)
    } else {
        (half..len, 0..half)
    };
    // Exchange 1: send the half I will NOT compute.
    let received = ctx.exchange(partner, &state.amplitudes()[theirs_r.clone()]);
    debug_assert_eq!(received.len(), half);
    // Compute my half; collect the partner-side updates.
    let (m00, m01, m10, m11) = (m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1));
    let mut partner_updates = vec![c64::zero(); half];
    {
        let amps = state.amplitudes_mut();
        for (j, i) in mine_r.clone().enumerate() {
            let (a, bb) = if lower {
                (amps[i], received[j])
            } else {
                (received[j], amps[i])
            };
            let new_a = m00 * a + m01 * bb;
            let new_b = m10 * a + m11 * bb;
            if lower {
                amps[i] = new_a;
                partner_updates[j] = new_b;
            } else {
                amps[i] = new_b;
                partner_updates[j] = new_a;
            }
        }
    }
    // Exchange 2: results travel back.
    let back = ctx.exchange(partner, &partner_updates);
    state.amplitudes_mut()[theirs_r].copy_from_slice(&back);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_util::complex::max_dist;

    fn baseline_state(c: &Circuit, ranks: usize) -> (Vec<c64>, BaselineOutcome) {
        let mut sim = BaselineSimulator::new(ranks, KernelConfig::sequential());
        sim.gather_state = true;
        let out = sim.run(c);
        (out.state.clone().unwrap(), out)
    }

    #[test]
    fn baseline_matches_dense_reference_single_rank() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 12,
            seed: 4,
        });
        let expect = qsim_circuit::dense::simulate_dense::<f64>(&c);
        let (got, out) = baseline_state(&c, 1);
        assert!(max_dist(&got, &expect) < 1e-10);
        assert_eq!(out.comm_steps, 0);
        assert_eq!(out.fabric.total_bytes_sent, 0);
    }

    #[test]
    fn baseline_matches_across_rank_counts() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 16,
            seed: 8,
        });
        let (expect, _) = baseline_state(&c, 1);
        for ranks in [2usize, 4, 8] {
            let (got, out) = baseline_state(&c, ranks);
            assert!(
                max_dist(&got, &expect) < 1e-10,
                "ranks={ranks}: {}",
                max_dist(&got, &expect)
            );
            assert!(out.comm_steps > 0, "ranks={ranks} must communicate");
            assert!((out.norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn comm_steps_equal_global_dense_gate_count() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 4,
            cols: 3,
            depth: 20,
            seed: 2,
        });
        let ranks = 4usize;
        let l = 12 - 2;
        let (_, out) = baseline_state(&c, ranks);
        let expect = qsim_sched::global_gate_count(&c, l, false);
        assert_eq!(out.comm_steps, expect);
    }

    #[test]
    fn pairwise_exchange_bytes_match_two_half_slices() {
        // One dense global gate across 2 ranks: each rank sends
        // half-slice twice => total = 2 ranks * 2 * half * 16 B.
        let mut c = Circuit::new(3);
        c.sqrt_x(2); // qubit 2 global with 2 ranks
        let (got, out) = baseline_state(&c, 2);
        let half = (1usize << 2) / 2;
        // Gate traffic (2 ranks x 2 half-slice exchanges) plus the 32
        // bytes of final norm/entropy all-reduces.
        assert_eq!(out.fabric.total_bytes_sent as usize, 2 * 2 * half * 16 + 32);
        // Against dense reference.
        let expect = qsim_circuit::dense::simulate_dense::<f64>(&c);
        assert!(max_dist(&got, &expect) < 1e-12);
    }

    #[test]
    fn global_diagonal_gates_are_free() {
        let mut c = Circuit::new(3);
        c.cz(0, 2).t(2).z(2);
        let (got, out) = baseline_state(&c, 2);
        assert_eq!(out.comm_steps, 0);
        // Only the final norm/entropy all-reduces touch the wire:
        // 2 ranks x 2 reductions x 8 bytes each way.
        assert_eq!(out.fabric.total_bytes_sent, 32);
        let expect = qsim_circuit::dense::simulate_dense::<f64>(&c);
        assert!(max_dist(&got, &expect) < 1e-12);
    }

    #[test]
    fn global_x_gate_via_pairwise() {
        // X is a permutation but the baseline treats it as dense 1q.
        let mut c = Circuit::new(2);
        c.h(0); // avoid the strip (single H is not a full layer... it is
                // a layer only if every qubit gets one; q1 doesn't).
        c.x(1);
        let (got, _) = baseline_state(&c, 2);
        let expect = qsim_circuit::dense::simulate_dense::<f64>(&c);
        assert!(max_dist(&got, &expect) < 1e-12);
    }
}
