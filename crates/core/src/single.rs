//! Single-node simulator (§3.1–3.3 stack).
//!
//! Plans the circuit with the scheduler (pure clustering — with every
//! qubit local there are no swaps), then sweeps fused k-qubit kernels
//! over the state with rayon parallelism. The qubit-mapping heuristic
//! (§3.6.2) can be applied first; the measured 2× claim is exercised by
//! the bench harness.

use crate::checkpoint::{
    read_amps_snapshot, schedule_fingerprint, snapshot_path, write_amps_snapshot, Manifest,
    MANIFEST_VERSION,
};
use crate::exec::{
    compile_stages, execute_compiled_stage, execute_schedule_sweep_with, resolve_tile_qubits,
};
use crate::planner::{plan_schedule, PlanOptions, ScheduleMode};
use crate::state::StateVector;
use qsim_circuit::Circuit;
use qsim_kernels::apply::{KernelConfig, OptLevel};
use qsim_kernels::{SweepDispatch, SweepStats};
use qsim_net::SimError;
use qsim_sched::{Schedule, SchedulerConfig, StageOp};
use qsim_telemetry::Telemetry;
use qsim_util::c64;
use std::path::PathBuf;
use std::time::Instant;

/// Execution report of a single-node run.
pub struct SingleOutcome<R: SweepDispatch = f64> {
    pub state: StateVector<R>,
    pub schedule: Schedule,
    /// Seconds spent executing kernels (excludes planning).
    pub sim_seconds: f64,
    /// Seconds spent planning (the paper's "1–3 seconds on a laptop").
    pub plan_seconds: f64,
    /// Streaming-pass counters of the tiled stage executor (zeroed when
    /// the per-gate fallback ran).
    pub sweep: SweepStats,
}

/// A planned single-node execution: output of
/// [`SingleNodeSimulator::plan_t`], input of
/// [`SingleNodeSimulator::run_planned_t`].
#[derive(Clone, Debug)]
pub struct SinglePlan {
    pub schedule: Schedule,
    /// Start from the uniform superposition (stripped Hadamard layer).
    pub init_uniform: bool,
    pub plan_seconds: f64,
    /// Tile budget: the caller's pin, else the plan cache's measured
    /// size, else `None` (resolve at execution time).
    pub tile_qubits: Option<u32>,
    /// The schedule came from the plan cache.
    pub cache_hit: bool,
    /// Cost-guided search beat the greedy baseline and was adopted.
    pub adopted: bool,
    pub n_qubits: u32,
}

/// Checkpoint/restart options of the single-node engine. The checkpoint
/// unit is a *stage* (single-node schedules have no swaps), so a run
/// killed between stages resumes from the last completed stage.
#[derive(Clone, Debug)]
pub struct SingleCheckpoint {
    /// Directory holding the state snapshot and `MANIFEST.json`.
    pub dir: PathBuf,
    /// Resume from the manifest when one exists (a fresh start when the
    /// directory has no manifest yet).
    pub resume: bool,
    /// Fault injection: return [`SimError::InjectedStop`] after this
    /// many stages have completed (and checkpointed).
    pub stop_after: Option<usize>,
}

impl SingleCheckpoint {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            resume: false,
            stop_after: None,
        }
    }
}

/// Single-node engine.
pub struct SingleNodeSimulator {
    pub kernel: KernelConfig,
    pub kmax: u32,
    /// Apply the §3.6.2 qubit-mapping heuristic before planning.
    pub optimize_mapping: bool,
    /// Tile budget (log2 amplitudes) of the cache-tiled stage executor;
    /// `None` uses the measured `tune_tile_qubits` size.
    pub tile_qubits: Option<u32>,
    /// Span/metrics sink: the run records plan/init/stage spans on the
    /// `single` track and publishes `SweepStats` under `single.sweep`.
    /// The default disabled handle makes all of it a no-op.
    pub telemetry: Telemetry,
    /// Stage-granular checkpoint/restart; `None` (the default) runs the
    /// original non-checkpointed executor.
    pub checkpoint: Option<SingleCheckpoint>,
    /// Schedule policy: greedy (the default, bit-identical to the
    /// pre-search engine) or cost-guided search.
    pub schedule_mode: ScheduleMode,
    /// Schedule-artifact cache directory (search mode only).
    pub schedule_cache: Option<PathBuf>,
    /// Search budget in `plan()` evaluations (search mode only).
    pub search_budget: usize,
}

impl Default for SingleNodeSimulator {
    fn default() -> Self {
        Self {
            kernel: KernelConfig::default(),
            kmax: 4,
            optimize_mapping: false,
            tile_qubits: None,
            telemetry: Telemetry::disabled(),
            checkpoint: None,
            schedule_mode: ScheduleMode::Greedy,
            schedule_cache: None,
            search_budget: qsim_sched::SearchConfig::default().budget,
        }
    }
}

impl SingleNodeSimulator {
    pub fn new(kernel: KernelConfig, kmax: u32) -> Self {
        Self {
            kernel,
            kmax,
            ..Self::default()
        }
    }

    /// Build a simulator from the §3.2 autotuning feedback loop: measure
    /// the kernel ladder on this host and adopt the resulting kmax and
    /// block size. `n_test` trades tuning time for fidelity (12–22).
    /// Tuning results are memoized per (n_test, threads), so constructing
    /// many autotuned simulators measures only once.
    pub fn autotuned(n_test: u32) -> Self {
        let threads = rayon::current_num_threads();
        let tuned = qsim_kernels::autotune_cached(n_test, threads);
        Self {
            kernel: KernelConfig {
                block: tuned.block,
                threads,
                ..KernelConfig::default()
            },
            kmax: tuned.kmax,
            ..Self::default()
        }
    }

    /// Run `circuit` from the uniform superposition when its first cycle
    /// is the supremacy Hadamard layer (detected and skipped, §3.6), else
    /// from |0…0⟩. Infallible wrapper over
    /// [`SingleNodeSimulator::try_run`]; a failure flushes the armed
    /// flight recorder (if any) before panicking, so a checkpoint IO
    /// error can never abort the process without a FLIGHT.json.
    pub fn run(&self, circuit: &Circuit) -> SingleOutcome {
        self.try_run(circuit)
            .unwrap_or_else(|e| crate::backend::abort_run("single-node run failed", &e))
    }

    /// Fallible form of [`SingleNodeSimulator::run`]: checkpoint IO and
    /// injected stop points surface as typed errors.
    pub fn try_run(&self, circuit: &Circuit) -> Result<SingleOutcome, SimError> {
        self.try_run_t::<f64>(circuit)
    }

    /// Precision-generic run (§5 tiering): the schedule is planned in
    /// f64 as always, then compiled and executed at `R`. `try_run` is
    /// this at `R = f64` and is bit-identical to the pre-tiering engine.
    pub fn try_run_t<R: SweepDispatch>(
        &self,
        circuit: &Circuit,
    ) -> Result<SingleOutcome<R>, SimError> {
        let track = self.telemetry.track("single");
        let _run_span = track.span("run");
        let plan = self.plan_t::<R>(circuit);
        self.run_planned_t(plan)
    }

    /// Planning half of [`SingleNodeSimulator::try_run_t`]: Hadamard-layer
    /// strip, optional §3.6.2 qubit remapping, schedule planning.
    /// Executing the returned plan with
    /// [`SingleNodeSimulator::run_planned_t`] is byte-identical to
    /// `try_run_t` end to end — the split exists so the unified
    /// [`crate::backend::Backend`] surface can report the plan before
    /// committing state memory.
    pub fn plan_t<R: SweepDispatch>(&self, circuit: &Circuit) -> SinglePlan {
        let n = circuit.n_qubits();
        let track = self.telemetry.track("single");
        let (exec_circuit, init_uniform) = strip_initial_hadamards(circuit);
        let mapped;
        let exec_ref = if self.optimize_mapping {
            let map = qsim_sched::mapping::optimize_qubit_mapping(&exec_circuit, &self.plan_cfg(n));
            mapped = exec_circuit.remapped(&map);
            &mapped
        } else {
            &exec_circuit
        };
        let planned = {
            let _s = track.span("plan");
            plan_schedule(
                exec_ref,
                &self.plan_cfg(n),
                &PlanOptions {
                    mode: self.schedule_mode,
                    cache_dir: self.schedule_cache.clone(),
                    search_budget: self.search_budget,
                    amp_bytes: 2 * R::BYTES as u64,
                    telemetry: self.telemetry.clone(),
                },
            )
        };
        SinglePlan {
            schedule: planned.schedule,
            init_uniform,
            plan_seconds: planned.plan_seconds,
            // A cache hit carries the producing machine's measured tile
            // budget: adopt it when the caller didn't pin one, skipping
            // the autotune probe.
            tile_qubits: self.tile_qubits.or(planned.tile_qubits),
            cache_hit: planned.cache_hit,
            adopted: planned.adopted,
            n_qubits: n,
        }
    }

    /// Execution half of [`SingleNodeSimulator::try_run_t`]: runs a plan
    /// produced by [`SingleNodeSimulator::plan_t`] on this simulator's
    /// kernels and checkpoint settings.
    pub fn run_planned_t<R: SweepDispatch>(
        &self,
        plan: SinglePlan,
    ) -> Result<SingleOutcome<R>, SimError> {
        let SinglePlan {
            schedule,
            init_uniform,
            plan_seconds,
            tile_qubits,
            n_qubits: n,
            ..
        } = plan;
        let track = self.telemetry.track("single");
        if let Some(p) = self.telemetry.progress() {
            // Default tile rather than `resolve_tile_qubits`: the ETA
            // prior must not pay for an autotune probe the run itself
            // may never need.
            crate::planner::seed_progress(
                &self.telemetry,
                &schedule,
                2 * R::BYTES as u64,
                tile_qubits.unwrap_or(qsim_sched::sweep::DEFAULT_TILE_QUBITS),
                crate::planner::ProgressBackend::Single,
            );
            p.set_state(qsim_telemetry::RunState::Running);
        }

        if let Some(cp) = &self.checkpoint {
            let out =
                self.run_checkpointed(cp, schedule, init_uniform, plan_seconds, n, tile_qubits);
            if let Some(p) = self.telemetry.progress() {
                p.set_state(if out.is_ok() {
                    qsim_telemetry::RunState::Done
                } else {
                    qsim_telemetry::RunState::Failed
                });
            }
            self.telemetry.publish_progress_gauges();
            return out;
        }

        let mut state = {
            let _s = track.span("init");
            if init_uniform {
                StateVector::<R>::uniform(n)
            } else {
                StateVector::<R>::zero(n)
            }
        };
        let t1 = Instant::now();
        let mut sweep = SweepStats::default();
        if self.kernel.opt == OptLevel::Blocked {
            // Tiled stage executor: one streaming pass per op group.
            sweep = execute_schedule_sweep_with(
                &mut state,
                &schedule,
                &self.kernel,
                tile_qubits,
                &self.telemetry,
            );
        } else {
            // The lower ladder rungs have no packed range kernels; keep
            // the per-gate path for ablation runs.
            let _s = track.span("apply per-gate");
            execute_schedule_local_t(&mut state, &schedule, &self.kernel);
        }
        let sim_seconds = t1.elapsed().as_secs_f64();
        if let Some(m) = self.telemetry.metrics() {
            sweep.publish_into(m, "single.sweep");
            m.gauge_set("single.plan_seconds", plan_seconds);
            m.gauge_set("single.sim_seconds", sim_seconds);
            m.gauge_set(
                "single.bytes_per_amp",
                std::mem::size_of::<qsim_util::Complex<R>>() as f64,
            );
            m.gauge_set("single.precision_bits", (R::BYTES * 8) as f64);
        }
        if let Some(p) = self.telemetry.progress() {
            p.set_state(qsim_telemetry::RunState::Done);
        }
        self.telemetry.publish_progress_gauges();
        Ok(SingleOutcome {
            state,
            schedule,
            sim_seconds,
            plan_seconds,
            sweep,
        })
    }

    /// The checkpointed executor: applies the schedule stage by stage,
    /// snapshotting the state and publishing an atomic manifest after
    /// each one. The snapshot for stage `u` is made durable *before* the
    /// manifest naming it, and the previous snapshot is deleted only
    /// after the new manifest is on disk, so a crash at any instant
    /// leaves a consistent (snapshot, manifest) pair to resume from.
    fn run_checkpointed<R: SweepDispatch>(
        &self,
        cp: &SingleCheckpoint,
        schedule: Schedule,
        init_uniform: bool,
        plan_seconds: f64,
        n: u32,
        tile_qubits: Option<u32>,
    ) -> Result<SingleOutcome<R>, SimError> {
        let track = self.telemetry.track("single");
        let total_units = schedule.stages.len();
        let ck = |e: crate::checkpoint::CheckpointError| SimError::Checkpoint(e.to_string());
        std::fs::create_dir_all(&cp.dir)
            .map_err(|e| SimError::Checkpoint(format!("{}: {e}", cp.dir.display())))?;

        let resume_point = if cp.resume {
            let _s = track.span("resume.validate");
            match Manifest::load(&cp.dir).map_err(ck)? {
                Some(m) => {
                    let point = m
                        .validate(
                            "single",
                            &schedule,
                            R::NAME,
                            "none",
                            init_uniform,
                            total_units,
                            1,
                        )
                        .map_err(ck)?;
                    Some((point, m.digests[0]))
                }
                None => None, // nothing published yet: fresh start
            }
        } else {
            None
        };

        let t1 = Instant::now();
        let (mut state, start_stage) = match resume_point {
            Some((point, want)) if point.next_unit > 0 => {
                let path = snapshot_path(&cp.dir, 0, point.next_unit);
                let (amps, digest) = read_amps_snapshot::<R>(&path, 1usize << n)
                    .map_err(|e| SimError::Checkpoint(format!("{}: {e}", path.display())))?;
                if digest != want {
                    return Err(SimError::Checkpoint(format!(
                        "snapshot {} does not match the manifest digest",
                        path.display()
                    )));
                }
                (StateVector::from_amplitudes(amps), point.next_unit)
            }
            _ => {
                let _s = track.span("init");
                let state = if init_uniform {
                    StateVector::<R>::uniform(n)
                } else {
                    StateVector::<R>::zero(n)
                };
                (state, 0)
            }
        };

        let mut sweep = SweepStats::default();
        let compiled = (self.kernel.opt == OptLevel::Blocked).then(|| {
            let tile = resolve_tile_qubits(tile_qubits, n, self.kernel.threads);
            compile_stages(&schedule.stages, n, &self.kernel, tile)
        });
        // Seed the live-progress denominator with the stages this run
        // will actually execute — a resume pre-credits nothing.
        if let Some(p) = self.telemetry.progress() {
            p.set_planned_units(
                qsim_telemetry::Phase::Stage,
                (total_units - start_stage) as u64,
            );
        }
        for si in start_stage..total_units {
            if let Some(p) = self.telemetry.progress() {
                p.set_stage(si as u64, total_units as u64);
            }
            let t_stage = Instant::now();
            {
                let _s = track.span_timed("stage", si as u64, "stage_apply_ns");
                if let Some(cs) = compiled.as_ref().map(|c| &c[si]) {
                    execute_compiled_stage(
                        state.amplitudes_mut(),
                        cs,
                        0,
                        self.kernel.threads,
                        &mut sweep,
                    );
                } else {
                    for op in &schedule.stages[si].ops {
                        match op {
                            StageOp::Cluster(c) => match c.matrix.as_diagonal() {
                                Some(diag) => {
                                    let diag: Vec<qsim_util::Complex<R>> =
                                        diag.iter().map(|x| x.convert()).collect();
                                    state.apply_diagonal(&c.qubits, &diag);
                                }
                                None => {
                                    state.apply(&c.qubits, &c.matrix.convert::<R>(), &self.kernel)
                                }
                            },
                            StageOp::Diagonal(d) => {
                                let diag: Vec<qsim_util::Complex<R>> =
                                    d.diag.iter().map(|x| x.convert()).collect();
                                state.apply_diagonal(&d.positions, &diag);
                            }
                        }
                    }
                }
            }
            self.telemetry.progress_unit(
                qsim_telemetry::Phase::Stage,
                t_stage.elapsed().as_nanos() as u64,
            );
            let unit = si + 1;
            {
                let _s = track.span_timed("checkpoint.write", unit as u64, "checkpoint_ns");
                let path = snapshot_path(&cp.dir, 0, unit);
                let digest = write_amps_snapshot(&path, state.amplitudes())
                    .map_err(|e| SimError::Checkpoint(format!("{}: {e}", path.display())))?;
                let manifest = Manifest {
                    version: MANIFEST_VERSION,
                    engine: "single".to_string(),
                    schedule_hash: schedule_fingerprint(&schedule),
                    n_qubits: n,
                    local_qubits: schedule.local_qubits,
                    precision: R::NAME.to_string(),
                    codec: "none".to_string(),
                    init_uniform,
                    rng_seed: 0,
                    next_unit: unit,
                    total_units,
                    digests: vec![digest],
                };
                manifest
                    .write_atomic(&cp.dir)
                    .map_err(|e| SimError::Checkpoint(format!("manifest: {e}")))?;
                if unit > 1 {
                    let _ = std::fs::remove_file(snapshot_path(&cp.dir, 0, unit - 1));
                }
            }
            if cp.stop_after == Some(unit) {
                return Err(SimError::InjectedStop { unit });
            }
        }
        let sim_seconds = t1.elapsed().as_secs_f64();
        if let Some(m) = self.telemetry.metrics() {
            sweep.publish_into(m, "single.sweep");
            m.gauge_set("single.plan_seconds", plan_seconds);
            m.gauge_set("single.sim_seconds", sim_seconds);
            m.gauge_set(
                "single.bytes_per_amp",
                std::mem::size_of::<qsim_util::Complex<R>>() as f64,
            );
            m.gauge_set("single.precision_bits", (R::BYTES * 8) as f64);
        }
        Ok(SingleOutcome {
            state,
            schedule,
            sim_seconds,
            plan_seconds,
            sweep,
        })
    }

    fn plan_cfg(&self, n: u32) -> SchedulerConfig {
        SchedulerConfig::single_node(n, self.kmax)
    }
}

/// Execute all stages of a single-node schedule on a full state.
/// A single-node schedule has one stage and no swaps; asserts that.
///
/// Fused clusters whose matrix happens to be diagonal are routed through
/// the specialized phase-multiply kernel (§3.5) instead of the dense
/// ladder — the same test the tiled executor applies, so the two paths
/// stay bit-identical.
pub fn execute_schedule_local(
    state: &mut StateVector<f64>,
    schedule: &Schedule,
    cfg: &KernelConfig,
) {
    assert_eq!(schedule.n_swaps(), 0, "local execution cannot swap");
    for stage in &schedule.stages {
        for op in &stage.ops {
            match op {
                StageOp::Cluster(c) => match c.matrix.as_diagonal() {
                    Some(diag) => state.apply_diagonal(&c.qubits, &diag),
                    None => state.apply(&c.qubits, &c.matrix, cfg),
                },
                StageOp::Diagonal(d) => state.apply_diagonal(&d.positions, &d.diag),
            }
        }
    }
}

/// Precision-generic variant of [`execute_schedule_local`]: cluster
/// matrices and diagonals are converted to the state's precision on the
/// fly (the §5 single-precision mode — 46 qubits in the footprint of 45).
pub fn execute_schedule_local_t<T>(
    state: &mut StateVector<T>,
    schedule: &Schedule,
    cfg: &KernelConfig,
) where
    T: qsim_util::Real + qsim_kernels::apply::ApplyDispatch,
{
    assert_eq!(schedule.n_swaps(), 0, "local execution cannot swap");
    for stage in &schedule.stages {
        for op in &stage.ops {
            match op {
                StageOp::Cluster(c) => match c.matrix.as_diagonal() {
                    Some(diag) => {
                        let diag: Vec<qsim_util::Complex<T>> =
                            diag.iter().map(|x| x.convert()).collect();
                        state.apply_diagonal(&c.qubits, &diag);
                    }
                    None => {
                        let m = c.matrix.convert::<T>();
                        state.apply(&c.qubits, &m, cfg);
                    }
                },
                StageOp::Diagonal(d) => {
                    let diag: Vec<qsim_util::Complex<T>> =
                        d.diag.iter().map(|x| x.convert()).collect();
                    state.apply_diagonal(&d.positions, &diag);
                }
            }
        }
    }
}

/// Run a circuit entirely in single precision (§5): same planning, f32
/// kernels, half the memory. Returns the f32 state.
///
/// Routes through the same generic compiled-stage executor as
/// `try_run_t::<f32>` — one streaming pass per op group, AVX2 f32
/// kernels — not the legacy per-gate path.
pub fn run_single_precision(circuit: &Circuit, kmax: u32, cfg: &KernelConfig) -> StateVector<f32> {
    let sim = SingleNodeSimulator::new(*cfg, kmax);
    sim.try_run_t::<f32>(circuit)
        .unwrap_or_else(|e| crate::backend::abort_run("single-precision run failed", &e))
        .state
}

/// If the circuit starts with a full layer of Hadamards (the supremacy
/// cycle 0), return (circuit without them, true): the caller initializes
/// the uniform superposition directly. Otherwise (original, false).
pub fn strip_initial_hadamards(circuit: &Circuit) -> (Circuit, bool) {
    let n = circuit.n_qubits();
    let mut seen = vec![false; n as usize];
    let mut cut = 0usize;
    for (i, g) in circuit.gates().iter().enumerate() {
        if let qsim_circuit::Gate::H(q) = g {
            if !seen[*q as usize] {
                seen[*q as usize] = true;
                cut = i + 1;
                if seen.iter().all(|&s| s) {
                    break;
                }
                continue;
            }
        }
        // A non-H gate (or repeated H) before the layer completes: no
        // strippable layer.
        return (circuit.clone(), false);
    }
    if !seen.iter().all(|&s| s) {
        return (circuit.clone(), false);
    }
    let mut out = Circuit::new(n);
    for g in &circuit.gates()[cut..] {
        out.push(g.clone());
    }
    (out, true)
}

/// Convenience: final state probabilities of a small circuit, for tests.
pub fn final_state(circuit: &Circuit) -> Vec<c64> {
    let sim = SingleNodeSimulator::default();
    let out = sim.run(circuit);
    out.state.amplitudes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::dense::simulate_dense;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_util::complex::max_dist;

    #[test]
    fn matches_dense_reference_on_supremacy_circuits() {
        for seed in [0u64, 1, 2] {
            let c = supremacy_circuit(&SupremacySpec {
                rows: 3,
                cols: 3,
                depth: 14,
                seed,
            });
            let expect = simulate_dense::<f64>(&c);
            let got = final_state(&c);
            assert!(
                max_dist(&got, &expect) < 1e-10,
                "seed {seed}: {}",
                max_dist(&got, &expect)
            );
        }
    }

    #[test]
    fn matches_dense_on_structured_circuit() {
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 1).t(1).cz(1, 2).sqrt_y(3).cnot(2, 3).z(0);
        let expect = simulate_dense::<f64>(&c);
        let got = final_state(&c);
        assert!(max_dist(&got, &expect) < 1e-12);
    }

    #[test]
    fn kmax_variants_agree() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 16,
            seed: 7,
        });
        let mut reference: Option<Vec<qsim_util::c64>> = None;
        for kmax in [2u32, 3, 4, 5] {
            let sim = SingleNodeSimulator::new(KernelConfig::default(), kmax);
            let out = sim.run(&c);
            out.schedule.verify(&strip_initial_hadamards(&c).0);
            let amps = out.state.amplitudes().to_vec();
            if let Some(r) = &reference {
                assert!(max_dist(r, &amps) < 1e-10, "kmax={kmax} diverges");
            } else {
                reference = Some(amps);
            }
        }
    }

    #[test]
    fn mapping_optimization_preserves_probabilities() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 12,
            seed: 5,
        });
        let plain = SingleNodeSimulator::default().run(&c);
        let opt_sim = SingleNodeSimulator {
            optimize_mapping: true,
            ..Default::default()
        };
        let opt = opt_sim.run(&c);
        // Amplitudes are permuted by the relabeling, but the probability
        // MULTISET and entropy are invariant.
        let mut p1: Vec<f64> = plain.state.probabilities();
        let mut p2: Vec<f64> = opt.state.probabilities();
        p1.sort_by(|a, b| a.partial_cmp(b).unwrap());
        p2.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!((plain.state.entropy() - opt.state.entropy()).abs() < 1e-8);
    }

    #[test]
    fn strip_detects_h_layer() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 2,
            cols: 3,
            depth: 10,
            seed: 0,
        });
        let (stripped, uniform) = strip_initial_hadamards(&c);
        assert!(uniform);
        assert_eq!(stripped.len(), c.len() - 6);

        let mut c2 = Circuit::new(2);
        c2.h(0).t(0).h(1);
        let (same, uniform2) = strip_initial_hadamards(&c2);
        assert!(!uniform2);
        assert_eq!(same.len(), 3);
    }

    #[test]
    fn norm_preserved_on_deeper_circuit() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 4,
            cols: 4,
            depth: 20,
            seed: 11,
        });
        let out = SingleNodeSimulator::default().run(&c);
        assert!((out.state.norm_sqr() - 1.0).abs() < 1e-9);
        assert!(out.sim_seconds >= 0.0 && out.plan_seconds >= 0.0);
        // Entropy of a deep 16-qubit random circuit approaches n−0.61.
        let h = out.state.entropy();
        assert!(h > 13.0 && h <= 16.0, "entropy {h}");
    }

    #[test]
    fn autotuned_simulator_is_correct() {
        let sim = SingleNodeSimulator::autotuned(10);
        assert!((1..=5).contains(&sim.kmax), "kmax {}", sim.kmax);
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 12,
            seed: 1,
        });
        let expect = simulate_dense::<f64>(&c);
        let out = sim.run(&c);
        assert!(max_dist(out.state.amplitudes(), &expect) < 1e-10);
    }

    #[test]
    fn single_precision_run_tracks_f64() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 20,
            seed: 6,
        });
        let f64_state = SingleNodeSimulator::default().run(&c).state;
        let f32_state = run_single_precision(&c, 4, &KernelConfig::default());
        // Per-amplitude agreement at f32 precision after ~500 gates.
        let mut worst = 0.0f64;
        for (a, b) in f64_state.amplitudes().iter().zip(f32_state.amplitudes()) {
            worst = worst.max((a.re - b.re as f64).abs().max((a.im - b.im as f64).abs()));
        }
        assert!(worst < 5e-4, "f32 drift {worst}");
        assert!((f32_state.norm_sqr() as f64 - 1.0).abs() < 1e-4);
        // Entropy agreement (the paper's observable).
        assert!((f64_state.entropy() - f32_state.entropy() as f64).abs() < 1e-2);
    }

    #[test]
    fn gate_by_gate_vs_scheduled_t_gate_phases() {
        // Regression guard for diagonal fusion sign errors: T^8 = I.
        let mut c = Circuit::new(2);
        for _ in 0..8 {
            c.t(0);
        }
        c.h(1); // force at least one dense cluster
        let got = final_state(&c);
        let expect = simulate_dense::<f64>(&c);
        assert!(max_dist(&got, &expect) < 1e-12);
    }
}
