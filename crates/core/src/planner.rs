//! The engines' planning entry point: greedy or cost-guided search,
//! with a fingerprint-keyed artifact cache in front.
//!
//! All three engines (and the CLI) plan through [`plan_schedule`] so the
//! schedule policy is decided in exactly one place:
//!
//! 1. **Greedy** — the paper's one-shot heuristics
//!    ([`qsim_sched::plan`]); cheap, deterministic, always the floor.
//! 2. **Search** — [`qsim_sched::search_plan`] scored by a
//!    [`CostModel`] calibrated once per process from a short memory
//!    probe. The greedy plan's
//!    [`schedule_fingerprint`](crate::checkpoint::schedule_fingerprint)
//!    keys a [`schedcache`](crate::schedcache) lookup first: a warm hit
//!    returns the stored plan (and the producing machine's measured
//!    `tile_qubits`, skipping the autotune probe) without spending any
//!    search budget.
//!
//! Planning is also the one phase PR 4 left untimed — [`plan_schedule`]
//! records a `sched.plan_ns` histogram plus `sched.search_candidates` /
//! `sched.cache_hit` counters into the run's metrics registry.

use crate::checkpoint::schedule_fingerprint;
use crate::schedcache::{load_artifact, store_artifact, ScheduleArtifact, SearchMeta};
use qsim_circuit::Circuit;
use qsim_sched::{plan, search_plan, CostModel, Schedule, SchedulerConfig, SearchConfig};
use qsim_telemetry::{Phase, RunState, Telemetry};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

/// How the schedule is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// The paper's greedy heuristics only.
    #[default]
    Greedy,
    /// Cost-model-guided search on top of greedy (greedy stays the
    /// floor: search never adopts a modeled-costlier plan).
    Search,
}

impl ScheduleMode {
    /// Parse a CLI value (`"greedy"` / `"search"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "greedy" => Some(ScheduleMode::Greedy),
            "search" => Some(ScheduleMode::Search),
            _ => None,
        }
    }
}

/// Policy knobs for [`plan_schedule`].
#[derive(Clone, Debug)]
pub struct PlanOptions {
    pub mode: ScheduleMode,
    /// Schedule-artifact cache directory; consulted (and populated) in
    /// [`ScheduleMode::Search`] only — a greedy run always replans.
    pub cache_dir: Option<PathBuf>,
    /// Search budget in `plan()` evaluations.
    pub search_budget: usize,
    /// Bytes per amplitude of the target precision (16 f64, 8 f32).
    pub amp_bytes: u64,
    pub telemetry: Telemetry,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            mode: ScheduleMode::Greedy,
            cache_dir: None,
            search_budget: SearchConfig::default().budget,
            amp_bytes: 16,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// What planning produced, with enough provenance for reports and tests.
#[derive(Clone, Debug)]
pub struct PlannedSchedule {
    pub schedule: Schedule,
    /// Served from the schedule cache (no search ran this process).
    pub cache_hit: bool,
    /// A searched plan beat greedy (false for greedy mode and for
    /// searches that failed to improve).
    pub adopted: bool,
    /// `plan()` evaluations spent (1 for pure greedy, 0 extra on a warm
    /// cache hit beyond the keying greedy plan).
    pub candidates: usize,
    /// Modeled seconds of the greedy baseline / returned plan.
    pub greedy_cost: f64,
    pub best_cost: f64,
    /// Wall-clock seconds spent planning (search included).
    pub plan_seconds: f64,
    /// Measured tile budget recovered from a cache hit — pass it to the
    /// engine config to skip the autotune probe.
    pub tile_qubits: Option<u32>,
}

/// The per-process cost model: streaming weight calibrated once from a
/// short memory probe, per-k flop weights refined from the measured
/// autotune kernel ladder (the same probe the engines use to pick
/// `kmax`, so a search-mode run pays for it at most once). Reused by
/// every subsequent search.
pub fn process_cost_model() -> &'static CostModel {
    static MODEL: OnceLock<CostModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let ladder = qsim_kernels::autotune_cached(12, threads).gflops_by_k;
        CostModel::calibrated(0).with_kernel_gflops(&ladder)
    })
}

/// Which engine a progress seed prices for — the live phases differ:
/// single-node runs are pure stage work, distributed runs split into
/// stage + swap phases, and the out-of-core engine streams everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressBackend {
    Single,
    Dist,
    Ooc,
}

/// Price `schedule` with the [`process_cost_model`] and seed the
/// telemetry progress engine's predicted-seconds denominators (the
/// cost-model prior the live ETA starts from, before measured unit
/// times take over). The split follows the model's own terms: the Stage
/// phase gets the streaming + per-pass + kernel-flop seconds, the Swap
/// phase the swap-byte seconds, and the OOC Stream phase the full
/// modeled seconds. Planned *unit counts* are seeded by the engines
/// themselves, which know their unit structure; this only prices them.
/// A disabled telemetry handle makes it a no-op.
pub fn seed_progress(
    telemetry: &Telemetry,
    schedule: &Schedule,
    amp_bytes: u64,
    tile_qubits: u32,
    backend: ProgressBackend,
) {
    let Some(p) = telemetry.progress() else {
        return;
    };
    let r = qsim_sched::plan_resources(schedule, amp_bytes, tile_qubits);
    let model = process_cost_model();
    let flop_seconds: f64 = r
        .flops_by_k
        .iter()
        .zip(model.flop_seconds_by_k.iter())
        .map(|(&f, &w)| f as f64 * w)
        .sum();
    let stage_seconds = r.streamed_bytes as f64 * model.stream_byte_seconds
        + r.stage_passes as f64 * model.pass_seconds
        + flop_seconds;
    let swap_seconds = r.swap_bytes as f64 * model.swap_byte_seconds;
    match backend {
        ProgressBackend::Single => p.set_predicted_seconds(Phase::Stage, stage_seconds),
        ProgressBackend::Dist => {
            p.set_predicted_seconds(Phase::Stage, stage_seconds);
            p.set_predicted_seconds(Phase::Swap, swap_seconds);
        }
        ProgressBackend::Ooc => p.set_predicted_seconds(Phase::Stream, model.seconds(&r)),
    }
    telemetry.publish_progress_gauges();
}

/// Total gates a schedule applies (cache-hit sanity check: a fingerprint
/// collision across circuits would execute the wrong gate stream).
fn scheduled_gates(schedule: &Schedule) -> usize {
    schedule
        .stages
        .iter()
        .flat_map(|s| s.ops.iter())
        .map(|op| op.gate_indices().len())
        .sum()
}

/// Plan `circuit` under `base` according to `opts`. See the module docs
/// for the policy; the returned schedule always `verify`s against
/// `circuit` (greedy by construction, searched plans are verified before
/// adoption, cached plans are structurally cross-checked and re-verified).
pub fn plan_schedule(
    circuit: &Circuit,
    base: &SchedulerConfig,
    opts: &PlanOptions,
) -> PlannedSchedule {
    let t0 = Instant::now();
    if let Some(p) = opts.telemetry.progress() {
        p.set_state(RunState::Planning);
    }
    let track = opts.telemetry.track("sched");
    let planned = {
        let _span = track.span("plan");
        plan_inner(circuit, base, opts, t0)
    };
    if let Some(m) = opts.telemetry.metrics() {
        m.record_hist("sched.plan_ns", (planned.plan_seconds * 1e9) as u64);
        m.gauge_set("sched.plan_seconds", planned.plan_seconds);
        m.counter_add("sched.search_candidates", planned.candidates as u64);
        if planned.cache_hit {
            m.counter_add("sched.cache_hit", 1);
        }
    }
    planned
}

fn plan_inner(
    circuit: &Circuit,
    base: &SchedulerConfig,
    opts: &PlanOptions,
    t0: Instant,
) -> PlannedSchedule {
    let greedy = plan(circuit, base);

    if opts.mode == ScheduleMode::Greedy {
        return PlannedSchedule {
            schedule: greedy,
            cache_hit: false,
            adopted: false,
            candidates: 1,
            greedy_cost: 0.0,
            best_cost: 0.0,
            plan_seconds: t0.elapsed().as_secs_f64(),
            tile_qubits: None,
        };
    }

    let key = schedule_fingerprint(&greedy);
    if let Some(dir) = &opts.cache_dir {
        // A corrupt or mismatched artifact is a cache miss that will be
        // overwritten below, never a failed run.
        if let Ok(Some(art)) = load_artifact(dir, key) {
            let sane = art.schedule.n_qubits == circuit.n_qubits()
                && art.schedule.local_qubits == base.local_qubits
                && scheduled_gates(&art.schedule) == scheduled_gates(&greedy);
            if sane {
                art.schedule.verify(circuit);
                return PlannedSchedule {
                    schedule: art.schedule,
                    cache_hit: true,
                    adopted: art.meta.adopted,
                    candidates: 1,
                    greedy_cost: art.meta.greedy_cost,
                    best_cost: art.meta.best_cost,
                    plan_seconds: t0.elapsed().as_secs_f64(),
                    tile_qubits: art.tile_qubits,
                };
            }
        }
    }

    let model = process_cost_model();
    let search_cfg = SearchConfig {
        budget: opts.search_budget,
        amp_bytes: opts.amp_bytes,
        // The single-node engine reads the final state in physical
        // order without translating through the schedule's mapping, so
        // the relabeling axis is only sound when globals exist and every
        // consumer translates via final_mapping.
        permute_labels: base.local_qubits < circuit.n_qubits(),
        ..SearchConfig::default()
    };
    let outcome = search_plan(circuit, base, model, &search_cfg);
    let plan_seconds = t0.elapsed().as_secs_f64();

    let tile_qubits = None;
    if let Some(dir) = &opts.cache_dir {
        // Record the machine's measured tile budget so warm runs skip
        // the autotune probe; the probe is memoized per process, so a
        // cold run pays it exactly once either way.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let tuned = crate::exec::resolve_tile_qubits(None, outcome.schedule.local_qubits, threads);
        let _ = store_artifact(
            dir,
            &ScheduleArtifact {
                key,
                schedule: outcome.schedule.clone(),
                meta: SearchMeta {
                    adopted: outcome.adopted,
                    candidates: outcome.candidates as u64,
                    greedy_cost: outcome.greedy_cost,
                    best_cost: outcome.best_cost,
                    search_seconds: plan_seconds,
                },
                tile_qubits: Some(tuned),
            },
        );
    }

    PlannedSchedule {
        schedule: outcome.schedule,
        cache_hit: false,
        adopted: outcome.adopted,
        candidates: outcome.candidates,
        greedy_cost: outcome.greedy_cost,
        best_cost: outcome.best_cost,
        plan_seconds,
        tile_qubits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    fn workload() -> Circuit {
        supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 20,
            seed: 5,
        })
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qsim-planner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn greedy_mode_matches_direct_plan() {
        let c = workload();
        let base = SchedulerConfig::distributed(9, 4);
        let p = plan_schedule(&c, &base, &PlanOptions::default());
        let direct = plan(&c, &base);
        assert_eq!(
            schedule_fingerprint(&p.schedule),
            schedule_fingerprint(&direct)
        );
        assert!(!p.cache_hit && !p.adopted);
    }

    #[test]
    fn search_mode_never_models_worse_and_verifies() {
        let c = workload();
        let base = SchedulerConfig::distributed(9, 4);
        let p = plan_schedule(
            &c,
            &base,
            &PlanOptions {
                mode: ScheduleMode::Search,
                search_budget: 10,
                ..PlanOptions::default()
            },
        );
        assert!(p.best_cost <= p.greedy_cost);
        p.schedule.verify(&c);
    }

    #[test]
    fn second_search_run_hits_the_cache() {
        let c = workload();
        let base = SchedulerConfig::distributed(9, 4);
        let dir = tmpdir("hit");
        let opts = PlanOptions {
            mode: ScheduleMode::Search,
            cache_dir: Some(dir.clone()),
            search_budget: 8,
            ..PlanOptions::default()
        };
        let cold = plan_schedule(&c, &base, &opts);
        assert!(!cold.cache_hit);
        let warm = plan_schedule(&c, &base, &opts);
        assert!(warm.cache_hit);
        assert_eq!(warm.candidates, 1, "warm hit must not spend search budget");
        assert_eq!(
            schedule_fingerprint(&warm.schedule),
            schedule_fingerprint(&cold.schedule)
        );
        assert!(warm.tile_qubits.is_some(), "hit carries the tuned tile");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hit_metric_is_published() {
        let c = workload();
        let base = SchedulerConfig::distributed(9, 4);
        let dir = tmpdir("metric");
        let tel = Telemetry::enabled();
        let opts = PlanOptions {
            mode: ScheduleMode::Search,
            cache_dir: Some(dir.clone()),
            search_budget: 6,
            telemetry: tel.clone(),
            ..PlanOptions::default()
        };
        plan_schedule(&c, &base, &opts);
        plan_schedule(&c, &base, &opts);
        let json = tel.metrics_json();
        assert!(
            json.contains("sched.cache_hit"),
            "metrics must include the cache-hit counter: {json}"
        );
        assert!(json.contains("sched.plan_ns"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_artifact_falls_back_to_search() {
        let c = workload();
        let base = SchedulerConfig::distributed(9, 4);
        let dir = tmpdir("corrupt");
        let opts = PlanOptions {
            mode: ScheduleMode::Search,
            cache_dir: Some(dir.clone()),
            search_budget: 6,
            ..PlanOptions::default()
        };
        let cold = plan_schedule(&c, &base, &opts);
        // Corrupt every artifact byte-flip style.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            let mut b = std::fs::read(&p).unwrap();
            let last = b.len() - 1;
            b[last] ^= 0xFF;
            std::fs::write(&p, &b).unwrap();
        }
        let again = plan_schedule(&c, &base, &opts);
        assert!(!again.cache_hit, "corrupt artifact must not hit");
        assert_eq!(
            schedule_fingerprint(&again.schedule),
            schedule_fingerprint(&cold.schedule),
            "search is deterministic, so the replanned schedule matches"
        );
        // And the rewritten artifact is valid again.
        let warm = plan_schedule(&c, &base, &opts);
        assert!(warm.cache_hit);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
