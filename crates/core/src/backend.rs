//! The unified [`Backend`] surface over the three execution engines.
//!
//! The paper's central claim — that the slow tier (network or SSD) is
//! interchangeable once the schedule needs only two all-to-alls — is
//! embodied by three engines with historically incompatible
//! run/checkpoint/resume/stats APIs. This module extracts the one
//! contract they all satisfy, so the CLI, the conformance suite and any
//! future backend (e.g. qsimh-style path slices) program against a
//! single trait instead of a per-engine copy of the plumbing.
//!
//! ## Contract
//!
//! * **Bit-exactness.** `plan` + `run` through the trait executes the
//!   exact code path of the engine's native entry point (the trait
//!   impls delegate; they never re-derive schedules or reorder
//!   arithmetic), so every `max_dist == 0.0` equivalence suite holds
//!   through the trait unchanged.
//! * **Checkpoint granularity** is engine-defined: the single-node
//!   engine checkpoints per *stage*, the distributed engine per *stage
//!   run* (the unit between all-to-alls), the out-of-core engine per
//!   *streaming pass*. `BackendPlan::total_units` reports the unit
//!   count so callers can pick a valid `run_to_stage` stop point
//!   without knowing which engine they hold.
//! * **Kill/resume.** `run_to_stage(plan, Some(u))` completes `u` units,
//!   makes them durable, and returns [`SimError::InjectedStop`] with
//!   `unit == u`; a subsequent `resume(dir)` + `run` continues from the
//!   manifest and must reproduce the uninterrupted run bit for bit.
//!   Stopping requires a configured checkpoint directory — the trait
//!   rejects an unresumable kill as [`SimError::Checkpoint`].
//! * **Stats normalization.** Engine-native counters surface as one
//!   [`BackendStats`] enum (`SweepStats` everywhere, plus
//!   `FabricStats` for the fabric and `IoStats` for the chunk store)
//!   rather than three outcome shapes.
//! * **Cross-precision resume rejection** is inherited from the
//!   manifest layer: the precision is part of the validated manifest,
//!   so resuming an f64 checkpoint at f32 (or vice versa) is a typed
//!   checkpoint error in every engine.

use crate::planner::ProgressBackend;
use crate::single::SinglePlan;
use crate::{DistSimulator, SingleCheckpoint, SingleNodeSimulator};
use qsim_circuit::Circuit;
use qsim_kernels::{SweepDispatch, SweepStats};
use qsim_net::fabric::FabricStats;
use qsim_net::SimError;
use qsim_sched::Schedule;
use qsim_telemetry::{IoStats, Telemetry};
use qsim_util::Complex;
use std::path::{Path, PathBuf};

/// Flush the armed flight recorder (when one is armed) and abort with
/// the run's root cause. Every infallible-looking engine wrapper funnels
/// its failure through here, so a checkpoint IO error or injected fault
/// can never abort the process without leaving a FLIGHT.json behind.
/// A second flush attempt (e.g. the panic hook) is a no-op: the
/// recorder's flush is write-once.
pub fn abort_run(context: &str, e: &SimError) -> ! {
    let reason = format!("{context}: {e}");
    let _ = qsim_telemetry::recorder::flush_armed(&reason);
    panic!("{reason}");
}

/// A planned execution, produced by [`Backend::plan`] and consumed by
/// [`Backend::run_to_stage`]. Carries the schedule plus the provenance
/// the CLI reports (cache hit, search adoption, plan wall-clock).
#[derive(Clone, Debug)]
pub struct BackendPlan {
    /// The circuit the schedule executes (initial Hadamard layer
    /// stripped when `init_uniform`).
    pub exec: Circuit,
    pub schedule: Schedule,
    /// Start from the uniform superposition (§3.6 supremacy start).
    pub init_uniform: bool,
    /// Wall-clock seconds spent planning.
    pub plan_seconds: f64,
    /// The schedule came from the plan cache.
    pub cache_hit: bool,
    /// Cost-guided search beat the greedy baseline and was adopted.
    pub adopted: bool,
    /// Tile budget recovered from a cache hit (skips the autotune
    /// probe); `None` resolves at execution time.
    pub tile_qubits: Option<u32>,
    /// Checkpoint units this plan executes (stages / stage runs /
    /// streaming passes — see the module docs on granularity). Valid
    /// `run_to_stage` stop points are `1..=total_units`.
    pub total_units: usize,
}

/// Engine-native counters, normalized: every backend reports the tiled
/// executor's [`SweepStats`]; the fabric and the chunk store add their
/// own views.
#[derive(Clone, Debug)]
pub enum BackendStats {
    Single {
        sweep: SweepStats,
    },
    Dist {
        fabric: FabricStats,
        sweep: SweepStats,
        /// Amplitude bytes copied by the swap engine on one rank.
        swap_bytes_copied: u64,
        /// Seconds in the final entropy all-reduce (§4.2.2).
        entropy_seconds: f64,
    },
    Ooc {
        io: IoStats,
        sweep: SweepStats,
        /// Stage runs executed (streaming batches, not passes).
        runs: usize,
    },
}

impl BackendStats {
    /// The engine that produced these stats (matches
    /// [`Backend::name`] and the checkpoint manifest's engine tag).
    pub fn engine(&self) -> &'static str {
        match self {
            BackendStats::Single { .. } => "single",
            BackendStats::Dist { .. } => "dist",
            BackendStats::Ooc { .. } => "ooc",
        }
    }

    /// The tiled stage executor's counters, whichever engine ran.
    pub fn sweep(&self) -> &SweepStats {
        match self {
            BackendStats::Single { sweep }
            | BackendStats::Dist { sweep, .. }
            | BackendStats::Ooc { sweep, .. } => sweep,
        }
    }
}

/// Execution report of any backend. Norm and entropy are always
/// accumulated and reported in f64, whatever the state precision `R`,
/// so the paper's observables are comparable across tiers.
#[derive(Clone, Debug)]
pub struct BackendOutcome<R: SweepDispatch = f64> {
    /// Σ|α|² over the full state.
    pub norm: f64,
    /// Shannon entropy (bits) of the outcome distribution (§4.2.2).
    pub entropy: f64,
    /// Wall-clock seconds executing (excludes planning).
    pub sim_seconds: f64,
    pub stats: BackendStats,
    /// Full state in logical basis order; `None` unless state gathering
    /// was requested via [`Backend::gather_state`] (small n only).
    pub state: Option<Vec<Complex<R>>>,
}

/// One engine behind the unified surface. Implementations are generic
/// over the [`SweepDispatch`] precision tier `R`; the trait is
/// dyn-compatible, so the CLI holds a `Box<dyn Backend<R>>`.
///
/// See the module docs for the cross-engine contract.
pub trait Backend<R: SweepDispatch> {
    /// Engine tag: `"single"`, `"dist"` or `"ooc"` (matches the
    /// checkpoint manifest's engine field).
    fn name(&self) -> &'static str;

    /// The engine's telemetry handle (cloned; handles share state).
    fn telemetry(&self) -> Telemetry;

    /// Which cost-model phase split prices this engine's ETA.
    fn progress_backend(&self) -> ProgressBackend;

    /// Checkpoint every completed unit into `dir`.
    fn checkpoint(&mut self, dir: &Path);

    /// Resume from the manifest in `dir` when one exists (implies
    /// [`Backend::checkpoint`] into the same directory; a fresh start
    /// when nothing was published yet).
    fn resume(&mut self, dir: &Path);

    /// Gather the full state (logical order) into the outcome.
    fn gather_state(&mut self, gather: bool);

    /// Plan `circuit` for this engine: strip the initial Hadamard
    /// layer, produce the schedule (greedy or search, through the
    /// engine's plan-cache policy) and report the unit structure.
    fn plan(&self, circuit: &Circuit) -> Result<BackendPlan, SimError>;

    /// Execute `plan`, stopping with [`SimError::InjectedStop`] after
    /// `stop_after` checkpoint units when set (kill-point injection for
    /// resume testing; requires a checkpoint directory).
    fn run_to_stage(
        &mut self,
        plan: &BackendPlan,
        stop_after: Option<usize>,
    ) -> Result<BackendOutcome<R>, SimError>;

    /// Execute `plan` to completion.
    fn run(&mut self, plan: &BackendPlan) -> Result<BackendOutcome<R>, SimError> {
        self.run_to_stage(plan, None)
    }

    /// Seed the live-progress engine's predicted-seconds denominators
    /// from the plan's cost model (PR 9's ETA prior), through one
    /// engine-agnostic path. A disabled telemetry handle makes this a
    /// no-op; engines re-seed identically at run start, so calling it
    /// early (e.g. between plan and run, while the CLI prints the plan)
    /// is idempotent.
    fn seed_progress(&self, plan: &BackendPlan) {
        crate::planner::seed_progress(
            &self.telemetry(),
            &plan.schedule,
            2 * R::BYTES as u64,
            plan.tile_qubits
                .unwrap_or(qsim_sched::sweep::DEFAULT_TILE_QUBITS),
            self.progress_backend(),
        );
    }
}

/// [`Backend`] over the single-node engine. Checkpoint unit: one
/// *stage*.
pub struct SingleBackend {
    pub sim: SingleNodeSimulator,
    gather: bool,
}

impl SingleBackend {
    pub fn new(sim: SingleNodeSimulator) -> Self {
        Self { sim, gather: false }
    }
}

impl<R: SweepDispatch> Backend<R> for SingleBackend {
    fn name(&self) -> &'static str {
        "single"
    }

    fn telemetry(&self) -> Telemetry {
        self.sim.telemetry.clone()
    }

    fn progress_backend(&self) -> ProgressBackend {
        ProgressBackend::Single
    }

    fn checkpoint(&mut self, dir: &Path) {
        self.sim.checkpoint = Some(SingleCheckpoint::new(dir));
    }

    fn resume(&mut self, dir: &Path) {
        let mut cp = SingleCheckpoint::new(dir);
        cp.resume = true;
        self.sim.checkpoint = Some(cp);
    }

    fn gather_state(&mut self, gather: bool) {
        self.gather = gather;
    }

    fn plan(&self, circuit: &Circuit) -> Result<BackendPlan, SimError> {
        let (exec, _) = crate::single::strip_initial_hadamards(circuit);
        let p = self.sim.plan_t::<R>(circuit);
        let total_units = p.schedule.stages.len();
        Ok(BackendPlan {
            exec,
            schedule: p.schedule,
            init_uniform: p.init_uniform,
            plan_seconds: p.plan_seconds,
            cache_hit: p.cache_hit,
            adopted: p.adopted,
            tile_qubits: p.tile_qubits,
            total_units,
        })
    }

    fn run_to_stage(
        &mut self,
        plan: &BackendPlan,
        stop_after: Option<usize>,
    ) -> Result<BackendOutcome<R>, SimError> {
        if let Some(stop) = stop_after {
            let cp = self.sim.checkpoint.as_mut().ok_or_else(|| {
                SimError::Checkpoint(
                    "run_to_stage with a stop point requires a checkpoint directory".into(),
                )
            })?;
            cp.stop_after = Some(stop);
        }
        let sp = SinglePlan {
            schedule: plan.schedule.clone(),
            init_uniform: plan.init_uniform,
            plan_seconds: plan.plan_seconds,
            tile_qubits: plan.tile_qubits,
            cache_hit: plan.cache_hit,
            adopted: plan.adopted,
            n_qubits: plan.schedule.n_qubits,
        };
        let out = self.sim.run_planned_t::<R>(sp);
        // One-shot kill switch: a later run on this backend must not
        // stop again.
        if let Some(cp) = self.sim.checkpoint.as_mut() {
            cp.stop_after = None;
        }
        let out = out?;
        // The engine holds the full state either way; the logical-order
        // copy is made only on request (it doubles the footprint).
        let state = self.gather.then(|| {
            crate::dist::physical_to_logical(out.state.amplitudes(), out.schedule.final_mapping())
        });
        Ok(BackendOutcome {
            norm: out.state.norm_sqr().to_f64(),
            entropy: out.state.entropy().to_f64(),
            sim_seconds: out.sim_seconds,
            stats: BackendStats::Single { sweep: out.sweep },
            state,
        })
    }
}

/// [`Backend`] over the distributed engine. Checkpoint unit: one *stage
/// run* (the stretch between all-to-alls). Planning knobs live here —
/// the engine itself takes a pre-planned schedule.
pub struct DistBackend {
    pub sim: DistSimulator,
    pub kmax: u32,
    pub schedule_mode: crate::planner::ScheduleMode,
    pub schedule_cache: Option<PathBuf>,
    pub search_budget: usize,
}

impl DistBackend {
    pub fn new(sim: DistSimulator) -> Self {
        Self {
            sim,
            kmax: 4,
            schedule_mode: crate::planner::ScheduleMode::Greedy,
            schedule_cache: None,
            search_budget: qsim_sched::SearchConfig::default().budget,
        }
    }
}

impl<R: SweepDispatch> Backend<R> for DistBackend {
    fn name(&self) -> &'static str {
        "dist"
    }

    fn telemetry(&self) -> Telemetry {
        self.sim.config.telemetry.clone()
    }

    fn progress_backend(&self) -> ProgressBackend {
        ProgressBackend::Dist
    }

    fn checkpoint(&mut self, dir: &Path) {
        self.sim.config.checkpoint_dir = Some(dir.to_path_buf());
    }

    fn resume(&mut self, dir: &Path) {
        self.sim.config.checkpoint_dir = Some(dir.to_path_buf());
        self.sim.config.resume = true;
    }

    fn gather_state(&mut self, gather: bool) {
        self.sim.config.gather_state = gather;
    }

    fn plan(&self, circuit: &Circuit) -> Result<BackendPlan, SimError> {
        plan_partitioned::<R>(
            circuit,
            self.sim.config.n_ranks,
            self.kmax,
            self.schedule_mode,
            self.schedule_cache.clone(),
            self.search_budget,
            &self.sim.config.telemetry,
        )
    }

    fn run_to_stage(
        &mut self,
        plan: &BackendPlan,
        stop_after: Option<usize>,
    ) -> Result<BackendOutcome<R>, SimError> {
        if stop_after.is_some() && self.sim.config.checkpoint_dir.is_none() {
            return Err(SimError::Checkpoint(
                "run_to_stage with a stop point requires a checkpoint directory".into(),
            ));
        }
        // Adopt the plan cache's measured tile budget unless pinned.
        self.sim.config.tile_qubits = self.sim.config.tile_qubits.or(plan.tile_qubits);
        self.sim.config.stop_after = stop_after;
        let out = self
            .sim
            .try_run_t::<R>(&plan.exec, &plan.schedule, plan.init_uniform);
        self.sim.config.stop_after = None;
        let out = out?;
        Ok(BackendOutcome {
            norm: out.norm,
            entropy: out.entropy,
            sim_seconds: out.sim_seconds,
            stats: BackendStats::Dist {
                fabric: out.fabric,
                sweep: out.sweep,
                swap_bytes_copied: out.swap_bytes_copied,
                entropy_seconds: out.entropy_seconds,
            },
            state: out.state,
        })
    }
}

/// Shared planning path of the partitioned engines (dist and OOC): both
/// execute `2^g`-way schedules with `l = n − g` local/chunk qubits, so
/// they plan identically and differ only in which tier holds the
/// non-resident amplitudes.
pub fn plan_partitioned<R: SweepDispatch>(
    circuit: &Circuit,
    n_parts: usize,
    kmax: u32,
    mode: crate::planner::ScheduleMode,
    cache_dir: Option<PathBuf>,
    search_budget: usize,
    telemetry: &Telemetry,
) -> Result<BackendPlan, SimError> {
    assert!(
        n_parts.is_power_of_two(),
        "partition count must be a power of two"
    );
    let n = circuit.n_qubits();
    let g = qsim_util::bits::log2_exact(n_parts);
    assert!(g < n, "more partitions than amplitudes");
    let l = n - g;
    let (exec, init_uniform) = crate::single::strip_initial_hadamards(circuit);
    let planned = crate::planner::plan_schedule(
        &exec,
        &qsim_sched::SchedulerConfig::distributed(l, kmax),
        &crate::planner::PlanOptions {
            mode,
            cache_dir,
            search_budget,
            amp_bytes: 2 * R::BYTES as u64,
            telemetry: telemetry.clone(),
        },
    );
    let total_units = qsim_sched::plan_runs(&planned.schedule).len();
    Ok(BackendPlan {
        exec,
        schedule: planned.schedule,
        init_uniform,
        plan_seconds: planned.plan_seconds,
        cache_hit: planned.cache_hit,
        adopted: planned.adopted,
        tile_qubits: planned.tile_qubits,
        total_units,
    })
}
