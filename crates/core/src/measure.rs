//! Projective measurement and state collapse.
//!
//! Simulators of near-term devices need mid-circuit measurement for
//! calibration protocols (§1: "calibration, validation, and
//! benchmarking"). Measuring qubit `q` yields outcome 1 with
//! `p = Σ_{i: bit q set} |α_i|²`, then collapses the state by zeroing the
//! non-matching amplitudes and renormalizing by `1/√p`.

use crate::state::StateVector;
use qsim_util::bits::get_bit;
use qsim_util::Xoshiro256;

/// Measure qubit `q`, collapse in place, return the outcome (0/1).
pub fn measure_qubit(state: &mut StateVector<f64>, q: u32, rng: &mut Xoshiro256) -> u8 {
    let p1 = state.prob_one(q);
    let outcome = if rng.next_f64() < p1 { 1u8 } else { 0u8 };
    collapse_qubit(state, q, outcome);
    outcome
}

/// Force qubit `q` into `outcome` (post-selection); panics if the outcome
/// has zero probability.
pub fn collapse_qubit(state: &mut StateVector<f64>, q: u32, outcome: u8) {
    let p1 = state.prob_one(q);
    let p = if outcome == 1 { p1 } else { 1.0 - p1 };
    assert!(p > 1e-300, "collapse onto zero-probability outcome");
    let scale = 1.0 / p.sqrt();
    let want = outcome as usize;
    for (i, a) in state.amplitudes_mut().iter_mut().enumerate() {
        if get_bit(i, q) == want {
            *a = a.scale(scale);
        } else {
            *a = qsim_util::c64::zero();
        }
    }
}

/// Measure every qubit (a full computational-basis shot), collapsing the
/// state onto one basis vector. Returns the observed bitstring.
pub fn measure_all(state: &mut StateVector<f64>, rng: &mut Xoshiro256) -> usize {
    let n = state.n_qubits();
    let mut out = 0usize;
    for q in 0..n {
        out |= (measure_qubit(state, q, rng) as usize) << q;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::SingleNodeSimulator;
    use qsim_circuit::Circuit;

    fn bell() -> StateVector<f64> {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        SingleNodeSimulator::default().run(&c).state
    }

    #[test]
    fn bell_measurements_are_correlated() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut ones = 0usize;
        for _ in 0..200 {
            let mut s = bell();
            let m0 = measure_qubit(&mut s, 0, &mut rng);
            let m1 = measure_qubit(&mut s, 1, &mut rng);
            assert_eq!(m0, m1, "Bell pairs are perfectly correlated");
            ones += m0 as usize;
        }
        assert!((40..160).contains(&ones), "outcomes wildly biased: {ones}");
    }

    #[test]
    fn collapse_renormalizes() {
        let mut s = bell();
        collapse_qubit(&mut s, 0, 1);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        // Collapsed onto |11>.
        assert!((s.amplitudes()[3].abs() - 1.0).abs() < 1e-12);
        assert!(s.amplitudes()[0].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn impossible_postselection_panics() {
        let mut c = Circuit::new(1);
        c.x(0); // state |1>
        let mut s = SingleNodeSimulator::default().run(&c).state;
        collapse_qubit(&mut s, 0, 0);
    }

    #[test]
    fn measure_all_yields_basis_state() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut s = bell();
        let shot = measure_all(&mut s, &mut rng);
        assert!(
            shot == 0 || shot == 3,
            "Bell shot must be 00 or 11, got {shot}"
        );
        // Fully collapsed.
        assert!((s.amplitudes()[shot].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_match_probabilities() {
        // 3-qubit GHZ through 500 full shots.
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let base = SingleNodeSimulator::default().run(&c).state;
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut count7 = 0usize;
        for _ in 0..500 {
            let mut s = StateVector::from_amplitudes(base.amplitudes().to_vec());
            match measure_all(&mut s, &mut rng) {
                0 => {}
                7 => count7 += 1,
                other => panic!("GHZ shot {other} impossible"),
            }
        }
        let frac = count7 as f64 / 500.0;
        assert!((frac - 0.5).abs() < 0.1, "fraction {frac}");
    }
}
