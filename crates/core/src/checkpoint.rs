//! Checkpoint/restart primitives shared by the three engines.
//!
//! The paper's stage segmentation (§3.6.1) exists so a petascale
//! traversal can be cut at communication boundaries; this module is the
//! on-disk half of that promise. A checkpoint is a [`Manifest`] — a
//! small JSON document recording the schedule fingerprint, a *unit*
//! cursor (stage, stage run or streaming pass, depending on the engine)
//! and one digest per durable artifact (chunk file, rank slice or state
//! snapshot).
//!
//! Durability protocol (every engine follows the same ordering):
//!
//! 1. write the new state artifacts and `sync_all` each;
//! 2. write the manifest *atomically* — temp file → `sync_all` →
//!    rename over [`MANIFEST_FILE`] → directory fsync — so a crash
//!    leaves either the old or the new manifest, never a torn one;
//! 3. only then retire artifacts the old manifest referenced.
//!
//! A crash between (1) and (2) is invisible: the old manifest still
//! points at intact old-generation artifacts. A crash inside (2) is
//! resolved by the atomicity of `rename`. A crash during (3) is rolled
//! forward on open (see `ChunkStore::open_verified` in `qsim-ooc`).
//!
//! u64 values (hashes, digests, seeds) are serialized as *hex strings*:
//! the in-workspace JSON parser ([`qsim_telemetry::json`]) reads numbers
//! as f64, which would silently lose bits above 2^53.

use qsim_sched::{Schedule, StageOp};
use qsim_telemetry::json::{self, Json};
use qsim_util::complex::Complex;
use qsim_util::Real;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Manifest format version; bumped on any incompatible layout change.
/// Version 2 added the `precision` geometry field — amplitude artifacts
/// are raw `2 * R::BYTES`-per-amplitude files, so precision is as
/// load-bearing as `n_qubits`. Version 3 added `codec`: under a chunk
/// codec the artifacts hold encoded frames and their digests hash those
/// encoded bytes, so resuming across codecs would mis-read every chunk.
pub const MANIFEST_VERSION: u32 = 3;

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Where the crash flight record lands: next to the checkpoint manifest,
/// so the post-mortem artifact travels with the resume state it
/// describes. (The name is fixed by `qsim_telemetry::FLIGHT_FILE`; this
/// helper just pins the *placement* policy in one place.)
pub fn flight_path(dir: &Path) -> PathBuf {
    dir.join(qsim_telemetry::recorder::FLIGHT_FILE)
}

/// Why a checkpoint could not be written or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The manifest exists but cannot be parsed (torn write would be
    /// prevented by the atomic protocol; this indicates corruption or a
    /// foreign file).
    Corrupt(String),
    /// The manifest is well-formed but describes a different run
    /// (schedule, geometry, engine or digest mismatch).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint manifest: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Where to restart: the first *unit* (stage / stage run / pass) whose
/// effects are NOT yet durable on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumePoint {
    pub next_unit: usize,
}

/// The versioned checkpoint manifest (one per checkpoint directory).
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    pub version: u32,
    /// Which engine wrote this checkpoint (`"single"`, `"dist"`, `"ooc"`).
    pub engine: String,
    /// Structural fingerprint of the schedule ([`schedule_fingerprint`]).
    pub schedule_hash: u64,
    pub n_qubits: u32,
    pub local_qubits: u32,
    /// Amplitude precision of the durable artifacts ([`Real::NAME`]:
    /// `"f64"` / `"f32"`). Resuming with a different precision is a
    /// [`CheckpointError::Mismatch`], never a silent reinterpretation.
    pub precision: String,
    /// Chunk codec the artifacts are stored under (`"none"`,
    /// `"shuffle-rle"`, `"lossy-<bits>"`). Digests hash the bytes as
    /// stored, so a cross-codec resume is a [`CheckpointError::Mismatch`].
    pub codec: String,
    /// Whether the run started from the uniform superposition (§3.6)
    /// rather than |0…0⟩.
    pub init_uniform: bool,
    /// Seed of any stochastic stage (0 when unused) — recorded so a
    /// resumed run reproduces the interrupted one exactly.
    pub rng_seed: u64,
    /// First unit not yet applied durably.
    pub next_unit: usize,
    /// Total units in the plan (cursor sanity bound).
    pub total_units: usize,
    /// FNV-1a digest of each durable artifact at this cursor, in
    /// artifact order (chunk index / rank id).
    pub digests: Vec<u64>,
}

impl Manifest {
    /// Serialize to the on-disk JSON document.
    pub fn to_json(&self) -> String {
        let digests: Vec<String> = self
            .digests
            .iter()
            .map(|d| format!("\"{d:016x}\""))
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"version\": {},\n",
                "  \"engine\": \"{}\",\n",
                "  \"schedule_hash\": \"{:016x}\",\n",
                "  \"n_qubits\": {},\n",
                "  \"local_qubits\": {},\n",
                "  \"precision\": \"{}\",\n",
                "  \"codec\": \"{}\",\n",
                "  \"init_uniform\": {},\n",
                "  \"rng_seed\": \"{:016x}\",\n",
                "  \"next_unit\": {},\n",
                "  \"total_units\": {},\n",
                "  \"digests\": [{}]\n",
                "}}\n"
            ),
            self.version,
            self.engine,
            self.schedule_hash,
            self.n_qubits,
            self.local_qubits,
            self.precision,
            self.codec,
            self.init_uniform,
            self.rng_seed,
            self.next_unit,
            self.total_units,
            digests.join(", "),
        )
    }

    /// Parse the on-disk JSON document.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let doc = json::parse(text).map_err(CheckpointError::Corrupt)?;
        let num = |key: &str| -> Result<f64, CheckpointError> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| CheckpointError::Corrupt(format!("missing number '{key}'")))
        };
        let hex = |key: &str| -> Result<u64, CheckpointError> {
            let s = doc
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| CheckpointError::Corrupt(format!("missing hex field '{key}'")))?;
            u64::from_str_radix(s, 16)
                .map_err(|e| CheckpointError::Corrupt(format!("bad hex in '{key}': {e}")))
        };
        let version = num("version")? as u32;
        if version != MANIFEST_VERSION {
            return Err(CheckpointError::Mismatch(format!(
                "manifest version {version}, this build reads {MANIFEST_VERSION}"
            )));
        }
        let engine = doc
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| CheckpointError::Corrupt("missing 'engine'".into()))?
            .to_string();
        let init_uniform = match doc.get("init_uniform") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(CheckpointError::Corrupt("missing 'init_uniform'".into())),
        };
        let digests = doc
            .get("digests")
            .and_then(Json::as_array)
            .ok_or_else(|| CheckpointError::Corrupt("missing 'digests'".into()))?
            .iter()
            .map(|j| {
                let s = j
                    .as_str()
                    .ok_or_else(|| CheckpointError::Corrupt("non-string digest".into()))?;
                u64::from_str_radix(s, 16)
                    .map_err(|e| CheckpointError::Corrupt(format!("bad digest: {e}")))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        let precision = doc
            .get("precision")
            .and_then(Json::as_str)
            .ok_or_else(|| CheckpointError::Corrupt("missing 'precision'".into()))?
            .to_string();
        let codec = doc
            .get("codec")
            .and_then(Json::as_str)
            .ok_or_else(|| CheckpointError::Corrupt("missing 'codec'".into()))?
            .to_string();
        let m = Manifest {
            version,
            engine,
            schedule_hash: hex("schedule_hash")?,
            n_qubits: num("n_qubits")? as u32,
            local_qubits: num("local_qubits")? as u32,
            precision,
            codec,
            init_uniform,
            rng_seed: hex("rng_seed")?,
            next_unit: num("next_unit")? as usize,
            total_units: num("total_units")? as usize,
            digests,
        };
        if m.next_unit > m.total_units {
            return Err(CheckpointError::Corrupt(format!(
                "cursor {} past total {}",
                m.next_unit, m.total_units
            )));
        }
        Ok(m)
    }

    /// Durably publish this manifest in `dir`: temp file → `sync_all` →
    /// rename over [`MANIFEST_FILE`] → directory fsync. After this
    /// returns, a crash at any instant leaves exactly this manifest (or
    /// a later one) visible.
    pub fn write_atomic(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        fsync_dir(dir)
    }

    /// Load and parse the manifest in `dir`; `Ok(None)` when no
    /// checkpoint has been published there yet.
    pub fn load(dir: &Path) -> Result<Option<Self>, CheckpointError> {
        let path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(e)),
        };
        Self::from_json(&text).map(Some)
    }

    /// Check that this manifest belongs to the run the caller is about
    /// to resume; returns the cursor on success.
    #[allow(clippy::too_many_arguments)]
    pub fn validate(
        &self,
        engine: &str,
        schedule: &Schedule,
        precision: &str,
        codec: &str,
        init_uniform: bool,
        total_units: usize,
        n_artifacts: usize,
    ) -> Result<ResumePoint, CheckpointError> {
        let fail = |m: String| Err(CheckpointError::Mismatch(m));
        if self.engine != engine {
            return fail(format!("engine '{}' != '{engine}'", self.engine));
        }
        let hash = schedule_fingerprint(schedule);
        if self.schedule_hash != hash {
            return fail(format!(
                "schedule hash {:016x} != {hash:016x} (different circuit or plan)",
                self.schedule_hash
            ));
        }
        if (self.n_qubits, self.local_qubits) != (schedule.n_qubits, schedule.local_qubits) {
            return fail(format!(
                "geometry n={} l={} != n={} l={}",
                self.n_qubits, self.local_qubits, schedule.n_qubits, schedule.local_qubits
            ));
        }
        if self.precision != precision {
            return fail(format!(
                "checkpoint written at precision {}, engine running at {precision} \
                 (cross-precision resume would reinterpret raw amplitude bytes)",
                self.precision
            ));
        }
        if self.codec != codec {
            return fail(format!(
                "checkpoint written under codec '{}', engine running with '{codec}' \
                 (cross-codec resume would mis-read every chunk record)",
                self.codec
            ));
        }
        if self.init_uniform != init_uniform {
            return fail(format!(
                "initial state uniform={} != uniform={init_uniform}",
                self.init_uniform
            ));
        }
        if self.total_units != total_units {
            return fail(format!(
                "plan has {} units, manifest recorded {}",
                total_units, self.total_units
            ));
        }
        if self.digests.len() != n_artifacts {
            return fail(format!(
                "{} artifacts on disk layout, manifest recorded {}",
                n_artifacts,
                self.digests.len()
            ));
        }
        Ok(ResumePoint {
            next_unit: self.next_unit,
        })
    }
}

/// fsync a directory so preceding renames/creates in it are durable.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Incremental FNV-1a (64-bit) over a byte stream. Multi-byte values
/// are folded in little-endian, matching the raw-file digests of the
/// chunk store on every supported target.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Fold in a float by bit pattern (exact, no rounding ambiguity).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of a byte slice (file-content digests).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Digest of an amplitude buffer, bit-identical to [`fnv1a64`] over the
/// raw bytes the chunk store would write for it: `R::BYTES` little-
/// endian bytes per scalar, so the digest stream matches the on-disk
/// layout in both precisions.
pub fn digest_amps<R: Real>(amps: &[Complex<R>]) -> u64 {
    let mut h = Fnv1a::new();
    for a in amps {
        h.write(&a.re.to_bits_u64().to_le_bytes()[..R::BYTES]);
        h.write(&a.im.to_bits_u64().to_le_bytes()[..R::BYTES]);
    }
    h.finish()
}

/// Structural fingerprint of a schedule: a deterministic walk over the
/// plan's geometry, mappings, fused matrices (by f64 bit pattern) and
/// swaps. Two schedules collide only if they execute identically, so a
/// manifest hash match guarantees the resumed run replays the same
/// plan. (Deliberately not a `Debug`-string hash: formatting is not a
/// stable encoding.)
pub fn schedule_fingerprint(schedule: &Schedule) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"qsched/v1");
    h.write_u32(schedule.n_qubits);
    h.write_u32(schedule.local_qubits);
    h.write_u32(schedule.kmax);
    h.write_usize(schedule.stages.len());
    for stage in &schedule.stages {
        h.write_usize(stage.mapping.len());
        for &m in &stage.mapping {
            h.write_u32(m);
        }
        h.write_usize(stage.ops.len());
        for op in &stage.ops {
            match op {
                StageOp::Cluster(c) => {
                    h.write_u32(1);
                    h.write_usize(c.qubits.len());
                    for &q in &c.qubits {
                        h.write_u32(q);
                    }
                    h.write_usize(c.gate_indices.len());
                    for &gi in &c.gate_indices {
                        h.write_usize(gi);
                    }
                    h.write_u32(c.matrix.k());
                    for e in c.matrix.entries() {
                        h.write_f64(e.re);
                        h.write_f64(e.im);
                    }
                }
                StageOp::Diagonal(d) => {
                    h.write_u32(2);
                    h.write_usize(d.positions.len());
                    for &p in &d.positions {
                        h.write_u32(p);
                    }
                    h.write_usize(d.diag.len());
                    for e in &d.diag {
                        h.write_f64(e.re);
                        h.write_f64(e.im);
                    }
                    h.write_usize(d.gate_indices.len());
                    for &gi in &d.gate_indices {
                        h.write_usize(gi);
                    }
                }
            }
        }
        match &stage.swap {
            None => h.write_u32(0),
            Some(s) => {
                h.write_u32(1);
                h.write_usize(s.local_slots.len());
                for &slot in &s.local_slots {
                    h.write_u32(slot);
                }
            }
        }
    }
    h.finish()
}

/// Path of a generation-named state snapshot (single-node engine) or
/// rank slice (distributed engine) inside a checkpoint directory.
pub fn snapshot_path(dir: &Path, artifact: usize, unit: usize) -> PathBuf {
    dir.join(format!("state_a{artifact:03}.u{unit:06}.amps"))
}

/// Write an amplitude snapshot durably (`sync_all` before returning)
/// and report its digest. Bytes are little-endian `(re, im)` scalar
/// pairs at the state's precision — the same layout as the chunk store
/// on every supported target.
pub fn write_amps_snapshot<R: Real>(path: &Path, amps: &[Complex<R>]) -> io::Result<u64> {
    let mut f = io::BufWriter::new(File::create(path)?);
    let mut h = Fnv1a::new();
    for a in amps {
        let re = a.re.to_bits_u64().to_le_bytes();
        let im = a.im.to_bits_u64().to_le_bytes();
        f.write_all(&re[..R::BYTES])?;
        f.write_all(&im[..R::BYTES])?;
        h.write(&re[..R::BYTES]);
        h.write(&im[..R::BYTES]);
    }
    let f = f.into_inner().map_err(|e| e.into_error())?;
    f.sync_all()?;
    Ok(h.finish())
}

/// Read an amplitude snapshot back, returning the amplitudes and the
/// digest of the bytes actually read (callers verify it against the
/// manifest before trusting the state).
pub fn read_amps_snapshot<R: Real>(path: &Path, len: usize) -> io::Result<(Vec<Complex<R>>, u64)> {
    let mut f = io::BufReader::new(File::open(path)?);
    let mut amps = Vec::with_capacity(len);
    let mut h = Fnv1a::new();
    for _ in 0..len {
        let mut re = [0u8; 8];
        f.read_exact(&mut re[..R::BYTES])?;
        h.write(&re[..R::BYTES]);
        let mut im = [0u8; 8];
        f.read_exact(&mut im[..R::BYTES])?;
        h.write(&im[..R::BYTES]);
        amps.push(Complex::new(
            R::from_bits_u64(u64::from_le_bytes(re)),
            R::from_bits_u64(u64::from_le_bytes(im)),
        ));
    }
    Ok((amps, h.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_sched::{Cluster, Stage, SwapOp};
    use qsim_util::c64;
    use qsim_util::matrix::GateMatrix;

    fn tiny_schedule() -> Schedule {
        Schedule {
            n_qubits: 3,
            local_qubits: 2,
            kmax: 2,
            stages: vec![
                Stage {
                    mapping: vec![0, 1, 2],
                    ops: vec![StageOp::Cluster(Cluster {
                        qubits: vec![0, 1],
                        gate_indices: vec![0],
                        matrix: GateMatrix::identity(2),
                    })],
                    swap: Some(SwapOp {
                        local_slots: vec![0],
                    }),
                },
                Stage {
                    mapping: vec![2, 1, 0],
                    ops: vec![],
                    swap: None,
                },
            ],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "qsim_ckpt_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let m = Manifest {
            version: MANIFEST_VERSION,
            engine: "ooc".into(),
            schedule_hash: 0xdead_beef_0123_4567,
            n_qubits: 20,
            local_qubits: 16,
            precision: "f64".into(),
            codec: "shuffle-rle".into(),
            init_uniform: true,
            rng_seed: u64::MAX, // exercises full 64-bit width
            next_unit: 3,
            total_units: 9,
            digests: vec![0, 1, u64::MAX - 1, 0x8000_0000_0000_0001],
        };
        m.write_atomic(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(back, m);
        assert!(
            !dir.join(format!("{MANIFEST_FILE}.tmp")).exists(),
            "temp file must not survive publication"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_is_none_without_manifest_and_rejects_garbage() {
        let dir = tmpdir("missing");
        assert!(Manifest::load(&dir).unwrap().is_none());
        std::fs::write(dir.join(MANIFEST_FILE), b"{not json").unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(CheckpointError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_foreign_runs() {
        let sched = tiny_schedule();
        let m = Manifest {
            version: MANIFEST_VERSION,
            engine: "ooc".into(),
            schedule_hash: schedule_fingerprint(&sched),
            n_qubits: sched.n_qubits,
            local_qubits: sched.local_qubits,
            precision: "f64".into(),
            codec: "none".into(),
            init_uniform: true,
            rng_seed: 0,
            next_unit: 1,
            total_units: 2,
            digests: vec![7, 8],
        };
        assert_eq!(
            m.validate("ooc", &sched, "f64", "none", true, 2, 2)
                .unwrap(),
            ResumePoint { next_unit: 1 }
        );
        assert!(m
            .validate("dist", &sched, "f64", "none", true, 2, 2)
            .is_err());
        assert!(m
            .validate("ooc", &sched, "f64", "none", false, 2, 2)
            .is_err());
        assert!(m
            .validate("ooc", &sched, "f64", "none", true, 3, 2)
            .is_err());
        assert!(m
            .validate("ooc", &sched, "f64", "none", true, 2, 4)
            .is_err());
        // Cross-precision resume is a typed mismatch, both directions.
        assert!(matches!(
            m.validate("ooc", &sched, "f32", "none", true, 2, 2),
            Err(CheckpointError::Mismatch(_))
        ));
        let m32 = Manifest {
            precision: "f32".into(),
            ..m.clone()
        };
        assert!(matches!(
            m32.validate("ooc", &sched, "f64", "none", true, 2, 2),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(m32
            .validate("ooc", &sched, "f32", "none", true, 2, 2)
            .is_ok());
        // Cross-codec resume is a typed mismatch, both directions: the
        // digests hash encoded bytes, so the codec is part of the format.
        assert!(matches!(
            m.validate("ooc", &sched, "f64", "shuffle-rle", true, 2, 2),
            Err(CheckpointError::Mismatch(_))
        ));
        let mrle = Manifest {
            codec: "shuffle-rle".into(),
            ..m.clone()
        };
        assert!(matches!(
            mrle.validate("ooc", &sched, "f64", "none", true, 2, 2),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(mrle
            .validate("ooc", &sched, "f64", "shuffle-rle", true, 2, 2)
            .is_ok());
        let mut other = sched.clone();
        other.stages[0].swap = None;
        other.stages[1].mapping = sched.stages[0].mapping.clone();
        assert!(m
            .validate("ooc", &other, "f64", "none", true, 2, 2)
            .is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let a = tiny_schedule();
        let b = tiny_schedule();
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        let mut c = tiny_schedule();
        c.kmax = 3;
        assert_ne!(schedule_fingerprint(&a), schedule_fingerprint(&c));
        let mut d = tiny_schedule();
        if let StageOp::Cluster(cl) = &mut d.stages[0].ops[0] {
            cl.matrix.set(0, 0, c64::new(0.0, 1.0));
        }
        assert_ne!(schedule_fingerprint(&a), schedule_fingerprint(&d));
    }

    #[test]
    fn snapshot_round_trip_matches_digests() {
        let dir = tmpdir("snap");
        let amps: Vec<c64> = (0..32)
            .map(|i| c64::new(i as f64 * 0.25, -(i as f64)))
            .collect();
        let p = snapshot_path(&dir, 0, 4);
        let wrote = write_amps_snapshot(&p, &amps).unwrap();
        assert_eq!(wrote, digest_amps(&amps));
        // The file digest matches the raw bytes on disk too.
        assert_eq!(wrote, fnv1a64(&std::fs::read(&p).unwrap()));
        let (back, read) = read_amps_snapshot(&p, amps.len()).unwrap();
        assert_eq!(back, amps);
        assert_eq!(read, wrote);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f32_snapshot_round_trip_is_half_size() {
        use qsim_util::c32;
        let dir = tmpdir("snap32");
        let amps: Vec<c32> = (0..32)
            .map(|i| c32::new(i as f32 * 0.25, -(i as f32)))
            .collect();
        let p = snapshot_path(&dir, 0, 1);
        let wrote = write_amps_snapshot(&p, &amps).unwrap();
        assert_eq!(wrote, digest_amps(&amps));
        let raw = std::fs::read(&p).unwrap();
        assert_eq!(raw.len(), amps.len() * 8, "2 * 4 bytes per f32 amp");
        assert_eq!(wrote, fnv1a64(&raw));
        let (back, read) = read_amps_snapshot::<f32>(&p, amps.len()).unwrap();
        assert_eq!(back, amps);
        assert_eq!(read, wrote);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
