//! Stochastic Pauli noise — quantum-trajectory simulation of noisy
//! devices.
//!
//! The paper motivates circuit simulation with "carrying out studies of
//! their behavior under noise" (§1). The standard state-vector technique
//! is the quantum-trajectory / stochastic unravelling of a Pauli channel:
//! after each gate, each touched qubit suffers X, Y or Z with probability
//! `p/3` each (depolarizing strength `p`). Averaging observables over
//! trajectories converges to the density-matrix result; the fidelity to
//! the ideal state decays ~(1 − p)^{#gate-qubit pairs}, which is the
//! regression this module's tests pin.

use crate::state::StateVector;
use qsim_circuit::{Circuit, Gate};
use qsim_kernels::apply::KernelConfig;
use qsim_util::matrix::GateMatrix;
use qsim_util::{c64, Xoshiro256};

/// Depolarizing-noise model: strength per gate-qubit pair.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NoiseModel {
    /// Probability that a qubit touched by a gate suffers a random Pauli
    /// error afterwards.
    pub depolarizing: f64,
}

impl NoiseModel {
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self { depolarizing: p }
    }
}

/// Run one noisy trajectory of `circuit` from |0…0⟩ and return the final
/// state. Each trajectory makes independent error choices from `rng`.
pub fn run_trajectory(
    circuit: &Circuit,
    noise: &NoiseModel,
    rng: &mut Xoshiro256,
    kernel: &KernelConfig,
) -> StateVector<f64> {
    let n = circuit.n_qubits();
    let mut state = StateVector::<f64>::zero(n);
    for gate in circuit.gates() {
        apply_gate_direct(&mut state, gate, kernel);
        for q in gate.qubits() {
            if rng.next_f64() < noise.depolarizing {
                let pauli = match rng.next_below(3) {
                    0 => Gate::X(q),
                    1 => Gate::Y(q),
                    _ => Gate::Z(q),
                };
                apply_gate_direct(&mut state, &pauli, kernel);
            }
        }
    }
    state
}

/// |⟨ψ_ideal|ψ⟩|² — trajectory fidelity against the ideal state.
pub fn fidelity(ideal: &StateVector<f64>, noisy: &StateVector<f64>) -> f64 {
    assert_eq!(ideal.len(), noisy.len());
    let mut acc = c64::zero();
    for (a, b) in ideal.amplitudes().iter().zip(noisy.amplitudes()) {
        acc += a.conj() * *b;
    }
    acc.norm_sqr()
}

/// Mean fidelity over `trajectories` noisy runs — the calibration-style
/// estimate an experiment would extract.
pub fn average_fidelity(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
    kernel: &KernelConfig,
) -> f64 {
    let ideal = {
        let mut s = StateVector::<f64>::zero(circuit.n_qubits());
        for g in circuit.gates() {
            apply_gate_direct(&mut s, g, kernel);
        }
        s
    };
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut acc = 0.0;
    for _ in 0..trajectories {
        let noisy = run_trajectory(circuit, noise, &mut rng, kernel);
        acc += fidelity(&ideal, &noisy);
    }
    acc / trajectories as f64
}

/// Expected trajectory fidelity for depolarizing strength `p` over
/// `pairs` gate-qubit pairs: each error event is (approximately)
/// orthogonalizing for highly entangled states, so F ≈ (1 − p)^pairs.
pub fn predicted_fidelity(p: f64, pairs: usize) -> f64 {
    (1.0 - p).powi(pairs as i32)
}

fn apply_gate_direct(state: &mut StateVector<f64>, gate: &Gate, kernel: &KernelConfig) {
    let qubits = gate.qubits();
    let m: GateMatrix<f64> = gate.matrix();
    if let Some(diag) = m.as_diagonal() {
        state.apply_diagonal(&qubits, &diag);
    } else {
        state.apply(&qubits, &m, kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};

    fn test_circuit() -> Circuit {
        supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 10,
            seed: 4,
        })
    }

    #[test]
    fn zero_noise_is_exact() {
        let c = test_circuit();
        let f = average_fidelity(
            &c,
            &NoiseModel::depolarizing(0.0),
            3,
            1,
            &KernelConfig::sequential(),
        );
        assert!((f - 1.0).abs() < 1e-10, "noiseless fidelity {f}");
    }

    #[test]
    fn fidelity_decays_with_noise_strength() {
        let c = test_circuit();
        let kernel = KernelConfig::sequential();
        let f_weak = average_fidelity(&c, &NoiseModel::depolarizing(0.002), 8, 2, &kernel);
        let f_strong = average_fidelity(&c, &NoiseModel::depolarizing(0.05), 8, 2, &kernel);
        assert!(
            f_weak > f_strong + 0.05,
            "weak {f_weak} vs strong {f_strong}"
        );
        assert!(f_weak > 0.5 && f_weak <= 1.0 + 1e-12);
    }

    #[test]
    fn decay_tracks_exponential_prediction() {
        let c = test_circuit();
        let pairs: usize = c.gates().iter().map(|g| g.arity()).sum();
        let p = 0.01;
        let f = average_fidelity(
            &c,
            &NoiseModel::depolarizing(p),
            24,
            3,
            &KernelConfig::sequential(),
        );
        let predict = predicted_fidelity(p, pairs);
        // (1−p)^pairs assumes every error fully orthogonalizes — a lower
        // bound that shallow circuits exceed (Z errors act trivially on
        // unscrambled qubits). The measured value must sit between that
        // bound and a clearly-decayed ceiling.
        assert!(
            f >= predict - 0.1,
            "measured {f} below the orthogonalizing bound {predict} ({pairs} pairs)"
        );
        assert!(
            f < 0.97,
            "no visible decay: {f} with {pairs} pairs at p={p}"
        );
    }

    #[test]
    fn trajectories_preserve_norm() {
        let c = test_circuit();
        let mut rng = Xoshiro256::seed_from_u64(9);
        let s = run_trajectory(
            &c,
            &NoiseModel::depolarizing(0.1),
            &mut rng,
            &KernelConfig::sequential(),
        );
        assert!(
            (s.norm_sqr() - 1.0).abs() < 1e-9,
            "Pauli errors are unitary"
        );
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn rejects_bad_probability() {
        let _ = NoiseModel::depolarizing(1.5);
    }
}
