//! # qsim-core
//!
//! The simulators. Three execution engines share the kernels, circuits
//! and schedules of the sibling crates:
//!
//! * [`single`] — single-node simulator: plans the circuit (clustering
//!   only, no swaps) and executes fused k-qubit kernels with rayon
//!   parallelism — the paper's §3.1–3.3 stack.
//! * [`dist`] — the distributed simulator: executes a [`qsim_sched`]
//!   schedule across `2^g` ranks of the [`qsim_net`] fabric, realizing
//!   global-to-local swaps as local bit permutations around all-to-alls
//!   (§3.4) and diagonal global gates as rank-conditional phases (§3.5).
//! * [`baseline`] — the prior-art comparator (\[5\]/\[19\]): per-gate
//!   execution, no fusion, global gates via two pairwise half-state
//!   exchanges. Table 2's speedups are measured against this engine.
//!
//! Both production engines execute communication-free stages through
//! [`exec`], the cache-tiled stage executor: stages are compiled once
//! (matrices packed, ops grouped into streaming passes) and each pass
//! applies a whole group of fused gates per traversal of the state.
//!
//! Supporting modules: [`state`] (aligned state-vector container),
//! [`observables`] (probabilities, entropy, sampling, cross-entropy —
//! §4.2.2's measured quantities), [`measure`] (projective measurement and
//! collapse) and [`noise`] (stochastic-Pauli trajectory simulation for
//! the noise studies the paper motivates in §1).

pub mod backend;
pub mod baseline;
pub mod checkpoint;
pub mod dist;
pub mod emulate;
pub mod exec;
pub mod measure;
pub mod noise;
pub mod observables;
pub mod planner;
pub mod schedcache;
pub mod single;
pub mod state;

pub use backend::{
    plan_partitioned, Backend, BackendOutcome, BackendPlan, BackendStats, DistBackend,
    SingleBackend,
};
pub use baseline::BaselineSimulator;
pub use checkpoint::{CheckpointError, Manifest, ResumePoint};
pub use dist::{DistConfig, DistOutcome, DistSimulator};
pub use exec::{
    compile_stage, compile_stages, execute_compiled_stage, execute_schedule_sweep, CompiledStage,
};
pub use planner::{
    plan_schedule, seed_progress, PlanOptions, PlannedSchedule, ProgressBackend, ScheduleMode,
};
pub use qsim_net::SimError;
pub use schedcache::{ScheduleArtifact, SearchMeta};
pub use single::{SingleCheckpoint, SingleNodeSimulator, SingleOutcome, SinglePlan};
pub use state::StateVector;
