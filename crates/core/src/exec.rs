//! Tiled stage execution — the glue between the scheduler's sweep plan
//! ([`qsim_sched::sweep`]) and the kernel-level tiled executor
//! ([`qsim_kernels::sweep`]).
//!
//! [`compile_stage`] turns a stage's op list into prepared passes: gate
//! matrices are permuted/packed ONCE (per stage, not per apply), dense
//! operands are remapped to compact tile positions, and diagonal ops —
//! including fused clusters whose matrix happens to be diagonal — are
//! resolved against the tile so they fold into the sweep as phase
//! multiplications. [`execute_compiled_stage`] then streams the state
//! once per pass. Both simulators adopt this path at
//! [`OptLevel::Blocked`]: `SingleNodeSimulator::run` via
//! [`execute_schedule_sweep`], and the distributed rank loop by compiling
//! each stage once on the driver and sharing the (immutable) compiled
//! stages across all SPMD ranks.
//!
//! Bit-exactness: compilation preserves the stage's op order exactly, the
//! per-tile kernels reuse the per-gate dispatch's packed-matrix ladder,
//! and the diagonal fold mirrors `specialized::apply_diagonal` /
//! `apply_rank_diagonal` branch for branch — so the tiled executor is
//! bitwise identical to the per-gate oracle (asserted by the proptests in
//! `tests/sweep_proptests.rs`).

use crate::state::StateVector;
use qsim_kernels::apply::{KernelConfig, OptLevel};
use qsim_kernels::sweep::{
    effective_tile_qubits, run_full_pass, PreparedDiag, PreparedGate, SweepDispatch, SweepStats,
    TileOp, TiledPass,
};
use qsim_kernels::tune_tile_qubits;
use qsim_sched::{plan_stage_sweeps, Schedule, StageOp, SweepPass};
use qsim_telemetry::Telemetry;
use qsim_util::complex::Complex;

/// One pass of a compiled stage.
enum CompiledPass<R: SweepDispatch> {
    /// Consecutive ops applied tile-by-tile in one streaming pass.
    Tiled(TiledPass<R>),
    /// A cluster wider than the tile: dedicated full sweep.
    Full(PreparedGate<R>),
}

/// A stage compiled for tiled execution: matrices packed, operands
/// resolved, ops grouped into streaming passes. Immutable after
/// compilation, so one compiled stage is shared by every rank of an SPMD
/// run.
///
/// The precision parameter selects the execution tier: schedules always
/// carry f64 matrices, and compilation converts them once — so an f32
/// run rounds each gate entry exactly once, at compile time, never per
/// amplitude.
pub struct CompiledStage<R: SweepDispatch = f64> {
    passes: Vec<CompiledPass<R>>,
}

impl<R: SweepDispatch> CompiledStage<R> {
    /// Streaming passes this stage will perform (≤ the op count).
    pub fn n_passes(&self) -> usize {
        self.passes.len()
    }
}

/// Compile a stage's ops under a `tile_qubits` budget. `local_qubits` is
/// the per-rank register width l (= n on a single node); diagonal
/// operands at positions ≥ l resolve to rank bits at execution time.
pub fn compile_stage<R: SweepDispatch>(
    ops: &[StageOp],
    local_qubits: u32,
    kernel: &KernelConfig,
    tile_qubits: u32,
) -> CompiledStage<R> {
    let plan = plan_stage_sweeps(ops, local_qubits, tile_qubits);
    let mut passes = Vec::with_capacity(plan.passes.len());
    for pass in &plan.passes {
        match pass {
            SweepPass::Tiled { op_indices, tile } => {
                let tile_ops = op_indices
                    .iter()
                    .map(|&oi| match &ops[oi] {
                        StageOp::Cluster(c) => match c.matrix.as_diagonal() {
                            // Diagonal fused cluster: fold as phases
                            // (same deterministic test as the planner).
                            Some(diag) => {
                                let diag: Vec<Complex<R>> =
                                    diag.iter().map(|a| a.convert()).collect();
                                TileOp::Diag(PreparedDiag::new(&c.qubits, diag, tile, local_qubits))
                            }
                            None => {
                                let compact: Vec<u32> = c
                                    .qubits
                                    .iter()
                                    .map(|q| {
                                        tile.binary_search(q).expect("dense operand in tile") as u32
                                    })
                                    .collect();
                                TileOp::Dense(PreparedGate::new(
                                    &compact,
                                    &c.matrix.convert::<R>(),
                                    kernel,
                                ))
                            }
                        },
                        StageOp::Diagonal(d) => TileOp::Diag(PreparedDiag::new(
                            &d.positions,
                            d.diag.iter().map(|a| a.convert()).collect(),
                            tile,
                            local_qubits,
                        )),
                    })
                    .collect();
                passes.push(CompiledPass::Tiled(TiledPass::new(tile.clone(), tile_ops)));
            }
            SweepPass::Full { op_index } => {
                let StageOp::Cluster(c) = &ops[*op_index] else {
                    unreachable!("planner never emits a full pass for a diagonal")
                };
                passes.push(CompiledPass::Full(PreparedGate::new(
                    &c.qubits,
                    &c.matrix.convert::<R>(),
                    kernel,
                )));
            }
        }
    }
    CompiledStage { passes }
}

/// Execute a compiled stage on one rank's slice.
pub fn execute_compiled_stage<R: SweepDispatch>(
    state: &mut [Complex<R>],
    stage: &CompiledStage<R>,
    rank: usize,
    threads: usize,
    stats: &mut SweepStats,
) {
    for pass in &stage.passes {
        match pass {
            CompiledPass::Tiled(p) => p.run(state, rank, threads, stats),
            CompiledPass::Full(g) => run_full_pass(state, g, threads, stats),
        }
    }
}

/// Compile a consecutive slice of stages under one tile budget — the
/// shared entry point for engines that execute several stages per state
/// residency (the distributed driver compiling once for all SPMD ranks,
/// the out-of-core engine compiling once per stage-run).
pub fn compile_stages<R: SweepDispatch>(
    stages: &[qsim_sched::Stage],
    local_qubits: u32,
    kernel: &KernelConfig,
    tile_qubits: u32,
) -> Vec<CompiledStage<R>> {
    stages
        .iter()
        .map(|s| compile_stage(&s.ops, local_qubits, kernel, tile_qubits))
        .collect()
}

/// Resolve the tile budget for an l-qubit register: an explicit request
/// is clamped to the register; otherwise the measured
/// [`tune_tile_qubits`] size, shrunk so multi-threaded passes keep
/// enough tiles to steal.
pub fn resolve_tile_qubits(requested: Option<u32>, local_qubits: u32, threads: usize) -> u32 {
    match requested {
        Some(t) => t.min(local_qubits).max(1),
        None => effective_tile_qubits(tune_tile_qubits(), local_qubits, threads),
    }
}

/// Execute a swap-free schedule with the tiled stage executor — the
/// single-node counterpart of `execute_schedule_local`, one streaming
/// pass per group of ops instead of one per op. Requires
/// [`OptLevel::Blocked`] (the packed-kernel ladder).
pub fn execute_schedule_sweep<R: SweepDispatch>(
    state: &mut StateVector<R>,
    schedule: &Schedule,
    kernel: &KernelConfig,
    tile_qubits: Option<u32>,
) -> SweepStats {
    execute_schedule_sweep_with(state, schedule, kernel, tile_qubits, &Telemetry::disabled())
}

/// [`execute_schedule_sweep`] with a telemetry sink: per-stage compile
/// and apply spans land on the `single` track, and each stage apply
/// feeds the `stage_apply_ns` histogram.
pub fn execute_schedule_sweep_with<R: SweepDispatch>(
    state: &mut StateVector<R>,
    schedule: &Schedule,
    kernel: &KernelConfig,
    tile_qubits: Option<u32>,
    telemetry: &Telemetry,
) -> SweepStats {
    assert_eq!(schedule.n_swaps(), 0, "local execution cannot swap");
    assert_eq!(
        kernel.opt,
        OptLevel::Blocked,
        "tiled sweep requires the blocked kernel ladder"
    );
    let l = state.n_qubits();
    let tile = resolve_tile_qubits(tile_qubits, l, kernel.threads);
    let track = telemetry.track("single");
    let n_stages = schedule.stages.len() as u64;
    if let Some(p) = telemetry.progress() {
        p.set_planned_units(qsim_telemetry::Phase::Stage, n_stages);
    }
    let mut stats = SweepStats::default();
    for (si, stage) in schedule.stages.iter().enumerate() {
        if let Some(p) = telemetry.progress() {
            p.set_stage(si as u64, n_stages);
        }
        let compiled = {
            let _s = track.span_id("compile", si as u64);
            compile_stage(&stage.ops, l, kernel, tile)
        };
        let t_stage = std::time::Instant::now();
        {
            let _s = track.span_timed("stage", si as u64, "stage_apply_ns");
            execute_compiled_stage(
                state.amplitudes_mut(),
                &compiled,
                0,
                kernel.threads,
                &mut stats,
            );
        }
        telemetry.progress_unit(
            qsim_telemetry::Phase::Stage,
            t_stage.elapsed().as_nanos() as u64,
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{execute_schedule_local, strip_initial_hadamards};
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_sched::{plan, SchedulerConfig};
    use qsim_util::complex::max_dist;

    #[test]
    fn sweep_executor_is_bit_exact_on_supremacy_stage() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 20,
            seed: 2,
        });
        let n = c.n_qubits();
        let (exec, uniform) = strip_initial_hadamards(&c);
        assert!(uniform);
        let schedule = plan(&exec, &SchedulerConfig::single_node(n, 4));
        let cfg = KernelConfig {
            threads: 1,
            ..KernelConfig::default()
        };

        let mut oracle = StateVector::<f64>::uniform(n);
        execute_schedule_local(&mut oracle, &schedule, &cfg);

        for tile in [6u32, 8, 10] {
            let mut swept = StateVector::<f64>::uniform(n);
            let stats = execute_schedule_sweep(&mut swept, &schedule, &cfg, Some(tile));
            assert_eq!(
                max_dist(swept.amplitudes(), oracle.amplitudes()),
                0.0,
                "tile={tile}"
            );
            assert!(stats.sweep_passes <= stats.baseline_passes);
            assert!(stats.pass_ratio() >= 1.0, "tile={tile}");
        }
    }

    #[test]
    fn sweep_executor_reduces_passes() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 4,
            cols: 4,
            depth: 25,
            seed: 0,
        });
        let n = c.n_qubits();
        let (exec, _) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::single_node(n, 4));
        let cfg = KernelConfig {
            threads: 1,
            ..KernelConfig::default()
        };
        let mut state = StateVector::<f64>::uniform(n);
        let stats = execute_schedule_sweep(&mut state, &schedule, &cfg, Some(12));
        assert!(
            stats.pass_ratio() >= 1.5,
            "pass ratio {} below acceptance floor",
            stats.pass_ratio()
        );
        assert!(stats.bytes_streamed < stats.baseline_bytes);
    }

    #[test]
    fn resolve_tile_clamps_explicit_request() {
        assert_eq!(resolve_tile_qubits(Some(20), 10, 1), 10);
        assert_eq!(resolve_tile_qubits(Some(0), 10, 1), 1);
        assert_eq!(resolve_tile_qubits(Some(8), 24, 1), 8);
        let auto = resolve_tile_qubits(None, 24, 1);
        assert!((1..=24).contains(&auto));
    }
}
