//! Fingerprint-keyed schedule-artifact cache.
//!
//! Schedule *search* ([`qsim_sched::search`]) spends seconds of planning
//! to save minutes of execution — but the search result is a pure
//! function of (circuit, planner config, search config), so repeated
//! runs of the same circuit family should pay for it exactly once. This
//! module stores the searched plan on disk, keyed by the
//! [`schedule_fingerprint`](crate::checkpoint::schedule_fingerprint) of
//! the *greedy* plan: greedy planning is cheap and deterministic, so the
//! key is computable before any search happens, and it already encodes
//! the circuit's gate stream, geometry and planner config (two circuits
//! share a greedy fingerprint only if the planner treats them
//! identically).
//!
//! The artifact also records the measured `tile_qubits` of the machine
//! that produced it, letting a warm run skip the `tune_tile_qubits`
//! autotune probe as well as the search.
//!
//! Durability follows the PR 5 checkpoint protocol: temp file →
//! `sync_all` → atomic rename → directory fsync. Integrity is a whole-
//! payload FNV-1a digest checked *before* decoding; a failed check is
//! [`CheckpointError::Corrupt`], a well-formed artifact for a different
//! version or key is [`CheckpointError::Mismatch`], and a missing file
//! is simply `Ok(None)` (cache miss).

use crate::checkpoint::{fnv1a64, fsync_dir, CheckpointError};
use qsim_sched::{Cluster, DiagonalOp, Schedule, Stage, StageOp, SwapOp};
use qsim_util::c64;
use qsim_util::matrix::GateMatrix;
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Artifact format magic; also serves as the file extension's anchor.
const MAGIC: &[u8; 8] = b"QSCHEDC\x01";

/// Artifact format version; bump on any incompatible layout change.
pub const ARTIFACT_VERSION: u32 = 1;

/// Search provenance stored alongside the schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchMeta {
    /// Whether the stored schedule is a searched plan (vs greedy).
    pub adopted: bool,
    /// `plan()` evaluations the search spent.
    pub candidates: u64,
    /// Modeled seconds of the greedy baseline.
    pub greedy_cost: f64,
    /// Modeled seconds of the stored schedule.
    pub best_cost: f64,
    /// Wall-clock seconds the search took on the producing machine.
    pub search_seconds: f64,
}

/// One cached schedule plus its provenance.
#[derive(Clone, Debug)]
pub struct ScheduleArtifact {
    /// Greedy-plan fingerprint this artifact is keyed by.
    pub key: u64,
    /// The schedule to execute (searched if `meta.adopted`, else greedy).
    pub schedule: Schedule,
    pub meta: SearchMeta,
    /// Measured tile budget of the producing machine (`None` if it was
    /// never tuned) — lets warm runs skip the autotune probe.
    pub tile_qubits: Option<u32>,
}

/// Path of the artifact for `key` inside `dir`.
pub fn artifact_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("sched-{key:016x}.bin"))
}

// ---- little-endian payload codec ----------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn u32s(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u32(v);
        }
    }
    fn usizes(&mut self, vs: &[usize]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v as u64);
        }
    }
    fn amps(&mut self, vs: &[c64]) {
        self.u64(vs.len() as u64);
        for v in vs {
            self.f64(v.re);
            self.f64(v.im);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "schedule artifact truncated at byte {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Length prefix, bounds-checked against the bytes actually left so
    /// corrupt lengths cannot trigger huge allocations.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.pos {
            return Err(CheckpointError::Corrupt(format!(
                "schedule artifact length {n} exceeds payload"
            )));
        }
        Ok(n)
    }
    fn u32s(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }
    fn usizes(&mut self) -> Result<Vec<usize>, CheckpointError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64().map(|v| v as usize)).collect()
    }
    fn amps(&mut self) -> Result<Vec<c64>, CheckpointError> {
        let n = self.len(16)?;
        (0..n)
            .map(|_| {
                let re = self.f64()?;
                let im = self.f64()?;
                Ok(c64 { re, im })
            })
            .collect()
    }
}

fn encode_schedule(e: &mut Enc, s: &Schedule) {
    e.u32(s.n_qubits);
    e.u32(s.local_qubits);
    e.u32(s.kmax);
    e.u64(s.stages.len() as u64);
    for stage in &s.stages {
        e.u32s(&stage.mapping);
        e.u64(stage.ops.len() as u64);
        for op in &stage.ops {
            match op {
                StageOp::Cluster(c) => {
                    e.u8(1);
                    e.u32s(&c.qubits);
                    e.usizes(&c.gate_indices);
                    e.u32(c.matrix.k());
                    e.amps(c.matrix.entries());
                }
                StageOp::Diagonal(d) => {
                    e.u8(2);
                    e.u32s(&d.positions);
                    e.amps(&d.diag);
                    e.usizes(&d.gate_indices);
                }
            }
        }
        match &stage.swap {
            Some(sw) => {
                e.u8(1);
                e.u32s(&sw.local_slots);
            }
            None => e.u8(0),
        }
    }
}

fn decode_schedule(d: &mut Dec) -> Result<Schedule, CheckpointError> {
    let n_qubits = d.u32()?;
    let local_qubits = d.u32()?;
    let kmax = d.u32()?;
    let n_stages = d.len(1)?;
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let mapping = d.u32s()?;
        let n_ops = d.len(1)?;
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            match d.u8()? {
                1 => {
                    let qubits = d.u32s()?;
                    let gate_indices = d.usizes()?;
                    let k = d.u32()?;
                    let entries = d.amps()?;
                    if k > 16 || entries.len() != 1usize << (2 * k) {
                        return Err(CheckpointError::Corrupt(format!(
                            "cluster matrix k={k} with {} entries",
                            entries.len()
                        )));
                    }
                    ops.push(StageOp::Cluster(Cluster {
                        qubits,
                        gate_indices,
                        matrix: GateMatrix::from_rows(k, entries),
                    }));
                }
                2 => {
                    let positions = d.u32s()?;
                    let diag = d.amps()?;
                    let gate_indices = d.usizes()?;
                    ops.push(StageOp::Diagonal(DiagonalOp {
                        positions,
                        diag,
                        gate_indices,
                    }));
                }
                t => {
                    return Err(CheckpointError::Corrupt(format!(
                        "unknown stage-op tag {t}"
                    )))
                }
            }
        }
        let swap = match d.u8()? {
            0 => None,
            1 => Some(SwapOp {
                local_slots: d.u32s()?,
            }),
            t => {
                return Err(CheckpointError::Corrupt(format!("unknown swap tag {t}")));
            }
        };
        stages.push(Stage { mapping, ops, swap });
    }
    Ok(Schedule {
        n_qubits,
        local_qubits,
        kmax,
        stages,
    })
}

fn encode_artifact(a: &ScheduleArtifact) -> Vec<u8> {
    let mut e = Enc(Vec::with_capacity(4096));
    e.u8(a.meta.adopted as u8);
    e.u64(a.meta.candidates);
    e.f64(a.meta.greedy_cost);
    e.f64(a.meta.best_cost);
    e.f64(a.meta.search_seconds);
    match a.tile_qubits {
        Some(t) => {
            e.u8(1);
            e.u32(t);
        }
        None => e.u8(0),
    }
    encode_schedule(&mut e, &a.schedule);
    e.0
}

fn decode_artifact(key: u64, payload: &[u8]) -> Result<ScheduleArtifact, CheckpointError> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let adopted = d.u8()? != 0;
    let candidates = d.u64()?;
    let greedy_cost = d.f64()?;
    let best_cost = d.f64()?;
    let search_seconds = d.f64()?;
    let tile_qubits = match d.u8()? {
        0 => None,
        1 => Some(d.u32()?),
        t => {
            return Err(CheckpointError::Corrupt(format!(
                "unknown tile-qubits tag {t}"
            )))
        }
    };
    let schedule = decode_schedule(&mut d)?;
    if d.pos != payload.len() {
        return Err(CheckpointError::Corrupt(format!(
            "{} trailing bytes after schedule",
            payload.len() - d.pos
        )));
    }
    Ok(ScheduleArtifact {
        key,
        schedule,
        meta: SearchMeta {
            adopted,
            candidates,
            greedy_cost,
            best_cost,
            search_seconds,
        },
        tile_qubits,
    })
}

/// Atomically publish `artifact` into `dir` (created if absent). Returns
/// the artifact's path.
pub fn store_artifact(dir: &Path, artifact: &ScheduleArtifact) -> Result<PathBuf, CheckpointError> {
    fs::create_dir_all(dir)?;
    let payload = encode_artifact(artifact);
    let mut bytes = Vec::with_capacity(payload.len() + 36);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&artifact.key.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let path = artifact_path(dir, artifact.key);
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    fsync_dir(dir)?;
    Ok(path)
}

/// Load the artifact for `key` from `dir`. `Ok(None)` when absent;
/// [`CheckpointError::Corrupt`] when the file fails magic or digest
/// validation; [`CheckpointError::Mismatch`] when it is a valid artifact
/// of a different version or key.
pub fn load_artifact(dir: &Path, key: u64) -> Result<Option<ScheduleArtifact>, CheckpointError> {
    let path = artifact_path(dir, key);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    if bytes.len() < 36 || &bytes[..8] != MAGIC {
        return Err(CheckpointError::Corrupt(format!(
            "{} is not a schedule artifact",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != ARTIFACT_VERSION {
        return Err(CheckpointError::Mismatch(format!(
            "schedule artifact version {version}, expected {ARTIFACT_VERSION}"
        )));
    }
    let file_key = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if file_key != key {
        return Err(CheckpointError::Mismatch(format!(
            "schedule artifact keyed {file_key:016x}, expected {key:016x}"
        )));
    }
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().unwrap()) as usize;
    let digest = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
    let payload = &bytes[36..];
    if payload.len() != payload_len {
        return Err(CheckpointError::Corrupt(format!(
            "schedule artifact payload {} bytes, header says {payload_len}",
            payload.len()
        )));
    }
    if fnv1a64(payload) != digest {
        return Err(CheckpointError::Corrupt(
            "schedule artifact digest mismatch".into(),
        ));
    }
    decode_artifact(key, payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::schedule_fingerprint;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_sched::{plan, SchedulerConfig};

    fn sample_schedule() -> Schedule {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 16,
            seed: 3,
        });
        plan(&c, &SchedulerConfig::distributed(9, 4))
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qsim-schedcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trip_preserves_fingerprint() {
        let dir = tmpdir("rt");
        let schedule = sample_schedule();
        let key = schedule_fingerprint(&schedule);
        let art = ScheduleArtifact {
            key,
            schedule,
            meta: SearchMeta {
                adopted: true,
                candidates: 17,
                greedy_cost: 1.5,
                best_cost: 1.25,
                search_seconds: 0.03,
            },
            tile_qubits: Some(13),
        };
        store_artifact(&dir, &art).unwrap();
        let back = load_artifact(&dir, key).unwrap().expect("artifact present");
        assert_eq!(schedule_fingerprint(&back.schedule), key);
        assert_eq!(back.meta, art.meta);
        assert_eq!(back.tile_qubits, Some(13));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifact_is_a_clean_miss() {
        let dir = tmpdir("miss");
        assert!(load_artifact(&dir, 0xdead_beef).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_rejected_not_loaded() {
        let dir = tmpdir("corrupt");
        let schedule = sample_schedule();
        let key = schedule_fingerprint(&schedule);
        let art = ScheduleArtifact {
            key,
            schedule,
            meta: SearchMeta {
                adopted: false,
                candidates: 1,
                greedy_cost: 1.0,
                best_cost: 1.0,
                search_seconds: 0.0,
            },
            tile_qubits: None,
        };
        let path = store_artifact(&dir, &art).unwrap();

        // Flip one payload byte: digest check must fire.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match load_artifact(&dir, key) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncation must also be Corrupt, not a panic.
        fs::write(&path, &bytes[..40]).unwrap();
        match load_artifact(&dir, key) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A foreign file fails the magic check.
        fs::write(&path, b"not an artifact").unwrap();
        match load_artifact(&dir, key) {
            Err(CheckpointError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_or_version_is_a_mismatch() {
        let dir = tmpdir("mismatch");
        let schedule = sample_schedule();
        let key = schedule_fingerprint(&schedule);
        let art = ScheduleArtifact {
            key,
            schedule,
            meta: SearchMeta {
                adopted: false,
                candidates: 1,
                greedy_cost: 1.0,
                best_cost: 1.0,
                search_seconds: 0.0,
            },
            tile_qubits: None,
        };
        let path = store_artifact(&dir, &art).unwrap();

        // Same file renamed under a different key: key check fires.
        let other = artifact_path(&dir, key ^ 1);
        fs::copy(&path, &other).unwrap();
        match load_artifact(&dir, key ^ 1) {
            Err(CheckpointError::Mismatch(_)) => {}
            other => panic!("expected Mismatch, got {other:?}"),
        }

        // Bumped version field: version check fires (digest still valid —
        // the digest covers the payload, not the header).
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0xEE;
        fs::write(&path, &bytes).unwrap();
        match load_artifact(&dir, key) {
            Err(CheckpointError::Mismatch(_)) => {}
            other => panic!("expected Mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
