//! Kill-and-resume property tests for the single-node engine: a run
//! stopped by an injected fault after any stage must, when resumed from
//! its checkpoint directory, produce the *bit-exact* final state of an
//! uninterrupted run (`max_dist == 0.0`, not a tolerance) — the resumed
//! process replays the identical per-stage instruction stream on the
//! identical snapshot.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use qsim_core::single::{SingleCheckpoint, SingleNodeSimulator};
use qsim_net::SimError;
use qsim_util::complex::max_dist;
use qsim_util::Xoshiro256;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let id = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "qsim_single_ckpt_{tag}_{}_{id}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Random mix of dense and diagonal gates (same generator as the sweep
/// property tests) so checkpoints land between stages of every flavor.
fn random_circuit(n: u32, n_gates: usize, seed: u64) -> qsim_circuit::Circuit {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut c = qsim_circuit::Circuit::new(n);
    for _ in 0..n_gates {
        let q = (rng.next_u64() % n as u64) as u32;
        let mut q2 = (rng.next_u64() % n as u64) as u32;
        if q2 == q {
            q2 = (q + 1) % n;
        }
        match rng.next_u64() % 8 {
            0 => c.h(q),
            1 => c.t(q),
            2 => c.sqrt_x(q),
            3 => c.sqrt_y(q),
            4 => c.z(q),
            5 => c.cz(q, q2),
            6 => c.cnot(q, q2),
            _ => c.x(q),
        };
    }
    c
}

fn sim(kmax: u32, checkpoint: Option<SingleCheckpoint>) -> SingleNodeSimulator {
    SingleNodeSimulator {
        kmax,
        checkpoint,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn kill_and_resume_is_bit_exact(
        n in 4u32..=8,
        n_gates in 8usize..=40,
        seed in 0u64..10_000,
        kmax in 2u32..=4,
    ) {
        let c = random_circuit(n, n_gates, seed);

        // The checkpointed executor must agree with the default one.
        let plain = sim(kmax, None).run(&c);
        let dir_base = tmpdir("base");
        let base = sim(kmax, Some(SingleCheckpoint::new(&dir_base)))
            .try_run(&c)
            .unwrap();
        prop_assert_eq!(
            max_dist(base.state.amplitudes(), plain.state.amplitudes()),
            0.0,
            "checkpointed executor diverged from the default path"
        );

        // Stop after a (seed-chosen) stage, then resume: bit-exact.
        let total = base.schedule.stages.len();
        let stop = (seed as usize % total) + 1;
        let dir = tmpdir("kill");
        let mut cp = SingleCheckpoint::new(&dir);
        cp.stop_after = Some(stop);
        match sim(kmax, Some(cp)).try_run(&c) {
            Err(SimError::InjectedStop { unit }) => prop_assert_eq!(unit, stop),
            other => prop_assert!(false, "expected InjectedStop, got {:?}", other.map(|_| ())),
        }
        let mut cp = SingleCheckpoint::new(&dir);
        cp.resume = true;
        let resumed = sim(kmax, Some(cp)).try_run(&c).unwrap();
        prop_assert_eq!(
            max_dist(resumed.state.amplitudes(), base.state.amplitudes()),
            0.0,
            "resume after stage {} of {} diverged", stop, total
        );

        let _ = std::fs::remove_dir_all(&dir_base);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_rejects_a_foreign_manifest() {
    let c = random_circuit(6, 20, 42);
    let dir = tmpdir("foreign");
    sim(3, Some(SingleCheckpoint::new(&dir)))
        .try_run(&c)
        .unwrap();

    let other = random_circuit(6, 24, 43);
    let mut cp = SingleCheckpoint::new(&dir);
    cp.resume = true;
    let err = match sim(3, Some(cp)).try_run(&other) {
        Err(e) => e,
        Ok(_) => panic!("foreign manifest must be rejected"),
    };
    assert!(matches!(err, SimError::Checkpoint(_)), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_cross_precision_manifests() {
    let c = random_circuit(6, 20, 99);

    // Checkpoint an f64 run, then try to pick it up at f32: the raw
    // amplitude bytes would be reinterpreted, so this must be a typed
    // error, not a garbage resume.
    let dir = tmpdir("prec64");
    sim(3, Some(SingleCheckpoint::new(&dir)))
        .try_run(&c)
        .unwrap();
    let mut cp = SingleCheckpoint::new(&dir);
    cp.resume = true;
    match sim(3, Some(cp)).try_run_t::<f32>(&c) {
        Err(SimError::Checkpoint(m)) => {
            assert!(m.contains("precision"), "unhelpful message: {m}")
        }
        Err(e) => panic!("expected Checkpoint error, got {e}"),
        Ok(_) => panic!("cross-precision resume must be rejected"),
    }

    // And the reverse direction (f32 checkpoint, f64 resume).
    let dir32 = tmpdir("prec32");
    sim(3, Some(SingleCheckpoint::new(&dir32)))
        .try_run_t::<f32>(&c)
        .unwrap();
    let mut cp = SingleCheckpoint::new(&dir32);
    cp.resume = true;
    match sim(3, Some(cp)).try_run(&c) {
        Err(SimError::Checkpoint(m)) => {
            assert!(m.contains("precision"), "unhelpful message: {m}")
        }
        Err(e) => panic!("expected Checkpoint error, got {e}"),
        Ok(_) => panic!("cross-precision resume must be rejected"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir32);
}

#[test]
fn resume_without_a_manifest_is_a_fresh_start() {
    let c = random_circuit(5, 16, 7);
    let plain = sim(3, None).run(&c);
    let dir = tmpdir("fresh");
    let mut cp = SingleCheckpoint::new(&dir);
    cp.resume = true;
    let out = sim(3, Some(cp)).try_run(&c).unwrap();
    assert_eq!(
        max_dist(out.state.amplitudes(), plain.state.amplitudes()),
        0.0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_past_the_last_stage_never_fires() {
    let c = random_circuit(5, 12, 11);
    let dir = tmpdir("past");
    let mut cp = SingleCheckpoint::new(&dir);
    cp.stop_after = Some(usize::MAX);
    let out = sim(3, Some(cp)).try_run(&c);
    assert!(out.is_ok(), "a stop point past the end must not trigger");
    let _ = std::fs::remove_dir_all(&dir);
}
