//! Kill-and-resume and fault-injection coverage for the distributed
//! engine: a rank killed mid-run by a [`FaultPlan`] must surface as a
//! typed [`SimError`] (never a panic or a hang), and resuming from the
//! published checkpoint must reproduce the uninterrupted run *bit
//! exactly* — the amplitudes are compared with `max_dist == 0.0`, not a
//! tolerance, because a resumed rank replays the identical instruction
//! stream on the identical snapshot.

use std::path::PathBuf;

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_circuit::Circuit;
use qsim_core::dist::{DistConfig, DistSimulator};
use qsim_core::single::strip_initial_hadamards;
use qsim_kernels::apply::KernelConfig;
use qsim_net::{FaultPlan, SimError};
use qsim_sched::{plan, plan_runs, Schedule, SchedulerConfig};
use qsim_telemetry::{FlightRecorder, Telemetry};
use qsim_util::complex::max_dist;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "qsim_dist_ckpt_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A small supremacy instance planned for distribution; returns the
/// executable circuit (initial Hadamards stripped) and its schedule.
fn planned(l: u32, kmax: u32) -> (Circuit, Schedule) {
    let c = supremacy_circuit(&SupremacySpec {
        rows: 2,
        cols: 5,
        depth: 24, // deep enough for a multi-swap (multi-checkpoint) schedule
        seed: 3,
    });
    let (exec, uniform) = strip_initial_hadamards(&c);
    assert!(uniform);
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, kmax));
    schedule.verify(&exec);
    (exec, schedule)
}

fn config(schedule: &Schedule) -> DistConfig {
    DistConfig {
        n_ranks: 1usize << (schedule.n_qubits - schedule.local_qubits),
        kernel: KernelConfig::sequential(),
        gather_state: true,
        sub_chunks: Some(3),
        ..Default::default()
    }
}

#[test]
fn injected_kill_then_resume_is_bit_exact() {
    let (exec, schedule) = planned(7, 3);
    let runs = plan_runs(&schedule);
    let n_swaps = runs.iter().filter(|r| r.swap.is_some()).count();
    assert!(n_swaps >= 2, "test needs a multi-swap schedule");

    // Uninterrupted baseline.
    let baseline = DistSimulator::new(config(&schedule))
        .run(&exec, &schedule, true)
        .state
        .unwrap();

    // Checkpointed run, killed at the second swap: at least one stage
    // run has completed and published a manifest by then.
    let dir = tmpdir("kill_resume");
    let mut cfg = config(&schedule);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.fault_plan = Some(FaultPlan::new().kill(1, 1));
    let err = DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect_err("killed run must fail");
    match err {
        SimError::InjectedFault { rank, swap_index } => {
            assert_eq!((rank, swap_index), (1, 1));
        }
        other => panic!("expected InjectedFault, got {other}"),
    }
    assert!(
        dir.join("MANIFEST.json").exists(),
        "a completed stage run must have published a manifest"
    );

    // Resume from the manifest: the final state must equal the
    // uninterrupted run bit for bit.
    let mut cfg = config(&schedule);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.resume = true;
    let out = DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect("resume must succeed");
    let got = out.state.unwrap();
    assert_eq!(
        max_dist(&got, &baseline),
        0.0,
        "resumed amplitudes must be bit-exact"
    );
    assert!((out.norm - 1.0).abs() < 1e-9);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_of_a_finished_run_replays_nothing_and_matches() {
    let (exec, schedule) = planned(7, 3);
    let dir = tmpdir("finished");

    let mut cfg = config(&schedule);
    cfg.checkpoint_dir = Some(dir.clone());
    let first = DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect("checkpointed run");
    let expect = first.state.unwrap();

    // The manifest now records every unit complete; a resume loads the
    // final snapshots, skips all stage runs, and reduces.
    let mut cfg = config(&schedule);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.resume = true;
    let out = DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect("resume of finished run");
    assert_eq!(max_dist(&out.state.unwrap(), &expect), 0.0);
    assert_eq!(out.swap_bytes_copied, 0, "no swap may re-run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_kill_without_checkpoint_is_a_typed_error() {
    let (exec, schedule) = planned(7, 3);
    let mut cfg = config(&schedule);
    cfg.fault_plan = Some(FaultPlan::new().kill(0, 0));
    let err = DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect_err("killed run must fail");
    assert!(
        matches!(
            err,
            SimError::InjectedFault {
                rank: 0,
                swap_index: 0
            }
        ),
        "got {err}"
    );
}

#[test]
fn resume_rejects_a_foreign_manifest() {
    let (exec, schedule) = planned(7, 3);
    let dir = tmpdir("foreign");
    let mut cfg = config(&schedule);
    cfg.checkpoint_dir = Some(dir.clone());
    DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect("checkpointed run");

    // A different circuit (and thus schedule fingerprint) must refuse
    // to resume from this directory.
    let (exec2, schedule2) = {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 2,
            cols: 5,
            depth: 12,
            seed: 8,
        });
        let (exec, _) = strip_initial_hadamards(&c);
        let s = plan(&exec, &SchedulerConfig::distributed(7, 3));
        (exec, s)
    };
    let mut cfg = config(&schedule2);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.resume = true;
    let err = DistSimulator::new(cfg)
        .try_run(&exec2, &schedule2, true)
        .expect_err("foreign manifest must be rejected");
    assert!(matches!(err, SimError::Checkpoint(_)), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_kill_flushes_a_flight_record() {
    let (exec, schedule) = planned(7, 3);
    let dir = tmpdir("flight");

    let telemetry = Telemetry::enabled();
    let recorder = FlightRecorder::new(telemetry.clone(), &dir);
    recorder.record_snapshot();

    let mut cfg = config(&schedule);
    cfg.telemetry = telemetry.clone();
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.fault_plan = Some(FaultPlan::new().kill(1, 1));
    let hook_rec = recorder.clone();
    cfg.poison_hook = Some(std::sync::Arc::new(move |rank: usize| {
        let _ = hook_rec.flush(&format!("fabric poisoned by rank {rank}"));
    }));
    DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect_err("killed run must fail");

    // The hook flushed on the dying rank's thread: the record names the
    // root-cause rank and carries its final spans plus the last metrics
    // snapshot.
    let path = qsim_core::checkpoint::flight_path(&dir);
    let doc = std::fs::read_to_string(&path).expect("FLIGHT.json written");
    let j = qsim_telemetry::json::parse(&doc).expect("flight record is valid JSON");
    assert_eq!(
        j.get("reason").unwrap().as_str(),
        Some("fabric poisoned by rank 1")
    );
    let tracks = j.get("tracks").unwrap().as_array().unwrap();
    let rank1 = tracks
        .iter()
        .find(|t| t.get("name").unwrap().as_str() == Some("rank 1"))
        .expect("dying rank's track present");
    assert!(
        !rank1.get("spans").unwrap().as_array().unwrap().is_empty(),
        "dying rank's final spans present"
    );
    assert!(j.get("metrics").unwrap().get("counters").is_some());
    assert!(
        !j.get("history").unwrap().as_array().unwrap().is_empty(),
        "rolling snapshot window present"
    );

    // Write-once: the driver's error epilogue must not clobber the
    // poison-time record.
    assert!(recorder.flush("error: late epilogue").unwrap().is_none());
    assert!(std::fs::read_to_string(&path).unwrap().contains("poisoned"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_flag_without_a_manifest_is_a_fresh_start() {
    let (exec, schedule) = planned(7, 3);
    let baseline = DistSimulator::new(config(&schedule))
        .run(&exec, &schedule, true)
        .state
        .unwrap();

    // --resume against an empty directory (the CI smoke's race window:
    // the kill can land before the first checkpoint) just starts over.
    let dir = tmpdir("fresh");
    let mut cfg = config(&schedule);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.resume = true;
    let out = DistSimulator::new(cfg)
        .try_run(&exec, &schedule, true)
        .expect("fresh start");
    assert_eq!(max_dist(&out.state.unwrap(), &baseline), 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}
