//! The zero-allocation invariant of the fused swap engine: once the wire
//! pools are warm and the permutation cache is primed, a steady-state
//! swap performs no heap allocations at all — packing goes straight from
//! the state slice into recycled wire buffers, unpacking straight back.
//!
//! Lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use qsim_core::dist::{perform_swap, SwapBuffers};
use qsim_core::StateVector;
use qsim_net::run_cluster;
use qsim_sched::SwapOp;
use qsim_util::{c64, Xoshiro256};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_swaps_do_not_allocate() {
    const G: u32 = 2;
    // Below the kernels' parallel threshold, so pack/unpack take the
    // sequential paths and no thread-pool bookkeeping runs in the loop.
    const L: u32 = 10;
    let p = 1usize << G;
    let slice = 1usize << L;
    let seg = slice / p;
    let depth = 2usize;
    let swap = SwapOp {
        local_slots: vec![0, 1],
    };

    let (deltas, stats) = run_cluster(p, |ctx| {
        let mut rng = Xoshiro256::seed_from_u64(0xa110c ^ ctx.rank() as u64);
        let amps: Vec<c64> = (0..slice)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let mut state = StateVector::from_amplitudes(amps);
        let mut bufs = SwapBuffers::new(Some(depth));
        // Worst-case wires in flight per owner: both rounds of one swap
        // posted before the peers drain round 0.
        ctx.prewarm_wire(seg / depth * 16, depth * (p - 1));
        // Warm-up: primes the permutation cache, the mailbox map
        // capacity, and confirms the prewarmed pool suffices.
        for _ in 0..3 {
            perform_swap(ctx, &mut state, &swap, L, &mut bufs);
            ctx.barrier();
        }
        // The counter is process-global, so a lazily-initialized runtime
        // structure anywhere in the process (another rank's thread-local,
        // an OS sync primitive's slow path) can fire one allocation into
        // an otherwise clean window. Measure several windows and keep the
        // best: the invariant is that the swap path itself allocates
        // nothing, so at least one window must be clean.
        let mut best = u64::MAX;
        for _ in 0..3 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            for _ in 0..6 {
                perform_swap(ctx, &mut state, &swap, L, &mut bufs);
                ctx.barrier();
            }
            best = best.min(ALLOCATIONS.load(Ordering::SeqCst) - before);
        }
        best
    });

    for (rank, delta) in deltas.iter().enumerate() {
        assert_eq!(
            *delta, 0,
            "rank {rank} observed {delta} heap allocations across 6 steady-state swaps"
        );
    }
    // The wire pools never missed either: every buffer came from prewarm.
    assert_eq!(
        stats.wire_allocs, 0,
        "wire pool missed {} times despite prewarming",
        stats.wire_allocs
    );
}
