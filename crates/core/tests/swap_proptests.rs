//! Property-based equivalence of the fused swap engine against the
//! textbook composition it replaces.
//!
//! The fused path (`perform_swap`, pack/unpack through `all_to_all_with`)
//! and the reference path (`perform_swap_reference`: permute → allocating
//! `all_to_all` → inverse permute) move the same f64 payloads without any
//! arithmetic, so the comparison is exact (bit-for-bit), across random
//! rank counts, local qubit counts, slot choices and pipeline depths —
//! including the degenerate S=1 (no pipelining) and S ≥ segment cases.

use proptest::prelude::*;
use qsim_core::dist::{perform_swap, perform_swap_reference, SwapBuffers};
use qsim_core::StateVector;
use qsim_net::collective::{all_to_all, all_to_all_into, Communicator};
use qsim_net::run_cluster;
use qsim_sched::SwapOp;
use qsim_util::{c64, Xoshiro256};

/// Choose `g` ascending slot positions out of `0..l`, seed-derived.
fn random_slots(g: u32, l: u32, seed: u64) -> Vec<u32> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x5107 ^ ((g as u64) << 32));
    let mut pos: Vec<u32> = (0..l).collect();
    // Partial Fisher–Yates: the first g entries become the sample.
    for i in 0..g as usize {
        let j = i + (rng.next_u64() as usize) % (pos.len() - i);
        pos.swap(i, j);
    }
    let mut slots = pos[..g as usize].to_vec();
    slots.sort_unstable();
    slots
}

fn random_slice(len: usize, seed: u64) -> Vec<c64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..len)
        .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fused permute-scatter swap == reference three-pass swap, exactly.
    #[test]
    fn fused_swap_matches_reference(
        g in 0u32..=5,          // 1..=32 ranks
        l_extra in 0u32..=2,    // l = max(g,1)+extra local qubits
        sub_chunks in 1usize..=5,
        seed in 0u64..1000,
    ) {
        let l = g.max(1) + l_extra;
        let ranks = 1usize << g;
        let slots = random_slots(g, l, seed);
        let swap = SwapOp { local_slots: slots };
        let slice = 1usize << l;

        let (reference, _) = run_cluster(ranks, |ctx| {
            let mut state = StateVector::from_amplitudes(random_slice(
                slice,
                seed ^ ((ctx.rank() as u64) << 8),
            ));
            perform_swap_reference(ctx, &mut state, &swap, l);
            state.amplitudes().to_vec()
        });
        let (fused, _) = run_cluster(ranks, |ctx| {
            let mut bufs = SwapBuffers::new(Some(sub_chunks));
            let mut state = StateVector::from_amplitudes(random_slice(
                slice,
                seed ^ ((ctx.rank() as u64) << 8),
            ));
            perform_swap(ctx, &mut state, &swap, l, &mut bufs);
            state.amplitudes().to_vec()
        });
        for (r, (a, b)) in reference.iter().zip(fused.iter()).enumerate() {
            prop_assert_eq!(a, b, "rank {} diverged", r);
        }
    }

    /// `all_to_all_into` at any pipeline depth == the naive allocating
    /// `all_to_all`, for random rank counts and payload sizes.
    #[test]
    fn all_to_all_into_matches_naive(
        g in 0u32..=5,
        payload_log in 0u32..=3,
        sub_chunks in 1usize..=5,
        seed in 0u64..1000,
    ) {
        let ranks = 1usize << g;
        let seg = 1usize << payload_log;
        let (results, _) = run_cluster(ranks, |ctx| {
            let send = random_slice(ranks * seg, seed ^ ((ctx.rank() as u64) << 16));
            let comm = Communicator::world(ctx);
            let naive = all_to_all(ctx, comm, &send);
            let mut out = vec![c64::zero(); send.len()];
            all_to_all_into(ctx, comm, &send, &mut out, sub_chunks);
            (naive, out)
        });
        for (naive, out) in results {
            prop_assert_eq!(naive, out);
        }
    }
}
