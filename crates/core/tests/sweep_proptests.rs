//! Property-based equivalence of the cache-tiled stage executor against
//! the per-gate oracle.
//!
//! The tiled executor (`execute_schedule_sweep`) must be *bitwise*
//! identical to the per-gate path (`execute_schedule_local`): same op
//! order, same packed-matrix kernels over the same 2^k-amplitude groups,
//! same specialized diagonal branches — tiling only regroups independent
//! block counters. So every comparison here asserts `max_dist == 0.0`,
//! not a tolerance, across random circuits, cluster sizes, tile budgets,
//! thread counts and SIMD selections.

use proptest::prelude::*;
use qsim_core::exec::execute_schedule_sweep;
use qsim_core::single::{execute_schedule_local, strip_initial_hadamards};
use qsim_core::StateVector;
use qsim_kernels::apply::{KernelConfig, Simd};
use qsim_sched::{plan, SchedulerConfig};
use qsim_util::complex::max_dist;
use qsim_util::Xoshiro256;

/// A random circuit mixing dense (H, √X, √Y, CNOT) and diagonal
/// (T, Z, CZ) gates — enough variety to exercise dense clusters,
/// diagonal fusion, and diagonal-cluster detection.
fn random_circuit(n: u32, n_gates: usize, seed: u64) -> qsim_circuit::Circuit {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut c = qsim_circuit::Circuit::new(n);
    for _ in 0..n_gates {
        let q = (rng.next_u64() % n as u64) as u32;
        let mut q2 = (rng.next_u64() % n as u64) as u32;
        if q2 == q {
            q2 = (q + 1) % n;
        }
        match rng.next_u64() % 8 {
            0 => c.h(q),
            1 => c.t(q),
            2 => c.sqrt_x(q),
            3 => c.sqrt_y(q),
            4 => c.z(q),
            5 => c.cz(q, q2),
            6 => c.cnot(q, q2),
            _ => c.x(q),
        };
    }
    c
}

/// Run both executors on the same plan and state; the tiled result must
/// be bit-identical to the per-gate oracle.
fn assert_sweep_bit_exact(
    n: u32,
    n_gates: usize,
    seed: u64,
    kmax: u32,
    tile: u32,
    threads: usize,
    simd: Simd,
) {
    let c = random_circuit(n, n_gates, seed);
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::single_node(n, kmax));
    schedule.verify(&exec);
    let cfg = KernelConfig {
        simd,
        threads,
        ..KernelConfig::default()
    };
    let init = || {
        if uniform {
            StateVector::<f64>::uniform(n)
        } else {
            StateVector::<f64>::zero(n)
        }
    };
    let mut oracle = init();
    execute_schedule_local(&mut oracle, &schedule, &cfg);
    let mut swept = init();
    let stats = execute_schedule_sweep(&mut swept, &schedule, &cfg, Some(tile));
    assert_eq!(
        max_dist(swept.amplitudes(), oracle.amplitudes()),
        0.0,
        "n={n} seed={seed} kmax={kmax} tile={tile} threads={threads} simd={simd:?}"
    );
    assert_eq!(
        stats.baseline_passes as usize,
        schedule.stages.iter().map(|s| s.ops.len()).sum::<usize>(),
        "baseline pass accounting must match the op count"
    );
    assert!(stats.sweep_passes <= stats.baseline_passes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits, cluster budgets and tile sizes: bit-exact.
    #[test]
    fn tiled_executor_matches_per_gate_oracle(
        n in 4u32..=8,
        n_gates in 8usize..=60,
        seed in 0u64..10_000,
        kmax in 2u32..=6,
        tile in 2u32..=12,
        par in 0u8..2,
    ) {
        let threads = if par == 1 { 4 } else { 1 };
        assert_sweep_bit_exact(n, n_gates, seed, kmax, tile, threads, Simd::Scalar);
    }

    /// The auto SIMD selection (AVX2/AVX-512 where available) stays
    /// bit-exact too: both executors share one dispatch decision.
    #[test]
    fn tiled_executor_matches_oracle_with_simd(
        n in 5u32..=8,
        n_gates in 10usize..=40,
        seed in 0u64..10_000,
        tile in 3u32..=10,
    ) {
        assert_sweep_bit_exact(n, n_gates, seed, 4, tile, 1, Simd::Auto);
    }
}

/// The parallel drivers engage at `PAR_THRESHOLD` (2^14 amplitudes):
/// check bit-exactness just below, at, and above the seam with multiple
/// threads, where tile chunking and rayon splits actually differ.
#[test]
fn par_threshold_boundary_is_bit_exact() {
    for n in [13u32, 14, 15] {
        assert_sweep_bit_exact(n, 80, 0xB0DA + n as u64, 4, 10, 4, Simd::Auto);
    }
}
