//! Live run observability: the progress/ETA engine, the `/metrics` +
//! `/status` status server, and the periodic progress ticker.
//!
//! PR 4 made telemetry strictly post-mortem; this module is the
//! in-flight half. The design splits the denominator from the
//! numerator:
//!
//! * **Planned work** comes from the schedule planner: each engine
//!   seeds the *unit count* of its phases (stage applications, swaps,
//!   streaming passes) at run start via [`Progress::set_planned_units`],
//!   and the CLI/bench layer prices those phases in predicted seconds
//!   from the PR 8 cost model via [`Progress::set_predicted_seconds`].
//! * **Live counters** are fed from the engines' existing span
//!   boundaries ([`Progress::unit_done`]) — one relaxed atomic add per
//!   stage/swap/pass, so the taps are far off the per-amplitude hot
//!   path.
//!
//! The ETA blends the cost-model prior with measured unit times as a
//! pseudo-count average (see [`PhaseProgress::unit_estimate_seconds`]):
//! before any unit completes the estimate is pure model; each completed
//! unit shifts weight toward the measured mean, so the ETA tightens
//! monotonically under steady unit times and can never go negative
//! (remaining units saturate at zero).
//!
//! The status server is dependency-free `std::net`: one listener
//! thread, blocking per-request handling, `Connection: close`. It
//! serves `/metrics` (Prometheus text exposition via [`crate::prom`])
//! and `/status` (a JSON document of run state, progress, ETA and the
//! `live.*` gauges the engines refresh at phase boundaries — per-rank
//! straggler stats, per-pipeline-thread overlap).

use crate::metrics::Metric;
use crate::{MetricsRegistry, Telemetry};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The work phases the progress engine tracks. `Stage` is one compiled
/// stage application (single/dist), `Swap` one global-to-local swap
/// (dist), `Stream` one full-state streaming pass (OOC, including swap
/// scatter and unpermute passes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Stage = 0,
    Swap = 1,
    Stream = 2,
}

/// Number of [`Phase`] variants.
pub const PHASES: usize = 3;

const PHASE_NAMES: [&str; PHASES] = ["stage", "swap", "stream"];

/// Coarse run state reported on `/status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    Idle = 0,
    Planning = 1,
    Running = 2,
    Done = 3,
    Failed = 4,
}

impl RunState {
    pub fn name(self) -> &'static str {
        match self {
            RunState::Idle => "idle",
            RunState::Planning => "planning",
            RunState::Running => "running",
            RunState::Done => "done",
            RunState::Failed => "failed",
        }
    }

    fn from_usize(v: usize) -> Self {
        match v {
            1 => RunState::Planning,
            2 => RunState::Running,
            3 => RunState::Done,
            4 => RunState::Failed,
            _ => RunState::Idle,
        }
    }
}

/// Pseudo-count weight of the cost-model prior in the per-unit blend:
/// the prior counts as this many "virtual" completed units, so the
/// first few measured samples already dominate a wrong model while a
/// single noisy sample cannot swing the estimate alone.
const PRIOR_WEIGHT: f64 = 2.0;

/// Shared live progress state. All fields are relaxed atomics — the
/// engines' taps are single adds, the status thread reads are
/// tear-tolerant monitoring data.
pub struct Progress {
    planned: [AtomicU64; PHASES],
    /// Total predicted nanoseconds per phase (cost-model priced).
    predicted_ns: [AtomicU64; PHASES],
    done: [AtomicU64; PHASES],
    measured_ns: [AtomicU64; PHASES],
    state: AtomicUsize,
    stage: AtomicU64,
    stages_total: AtomicU64,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    pub fn new() -> Self {
        Self {
            planned: std::array::from_fn(|_| AtomicU64::new(0)),
            predicted_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            done: std::array::from_fn(|_| AtomicU64::new(0)),
            measured_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            state: AtomicUsize::new(RunState::Idle as usize),
            stage: AtomicU64::new(0),
            stages_total: AtomicU64::new(0),
        }
    }

    /// Seed the planned unit count of `phase` (engine side, at run
    /// start — the engine knows its own unit structure).
    pub fn set_planned_units(&self, phase: Phase, units: u64) {
        self.planned[phase as usize].store(units, Ordering::Relaxed);
    }

    /// Seed the cost-model predicted wall seconds of `phase` (planner /
    /// CLI side).
    ///
    /// A degenerate cost-model prior (uncalibrated weights, a zero-time
    /// probe) can produce NaN or ±∞ here. The `as u64` cast saturates —
    /// +∞ would become `u64::MAX` ns (~585 years), poisoning every ETA
    /// blend downstream — so non-finite inputs are dropped to 0 (i.e.
    /// "no prior"), which the ETA math already handles.
    pub fn set_predicted_seconds(&self, phase: Phase, seconds: f64) {
        let seconds = if seconds.is_finite() { seconds } else { 0.0 };
        let ns = (seconds.max(0.0) * 1e9) as u64;
        self.predicted_ns[phase as usize].store(ns, Ordering::Relaxed);
    }

    /// Record one completed unit of `phase` that took `measured_ns`.
    pub fn unit_done(&self, phase: Phase, measured_ns: u64) {
        self.done[phase as usize].fetch_add(1, Ordering::Relaxed);
        self.measured_ns[phase as usize].fetch_add(measured_ns, Ordering::Relaxed);
    }

    pub fn set_state(&self, s: RunState) {
        self.state.store(s as usize, Ordering::Relaxed);
    }

    pub fn state(&self) -> RunState {
        RunState::from_usize(self.state.load(Ordering::Relaxed))
    }

    /// Update the coarse position indicator (current unit / total units
    /// of the driving loop — stages, stage runs or streaming passes).
    pub fn set_stage(&self, stage: u64, total: u64) {
        self.stage.store(stage, Ordering::Relaxed);
        self.stages_total.store(total, Ordering::Relaxed);
    }

    /// A coherent-enough copy for rendering (individual fields are
    /// atomically read; cross-field skew of one unit is fine for
    /// monitoring).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let phase = |i: usize| PhaseProgress {
            name: PHASE_NAMES[i],
            planned: self.planned[i].load(Ordering::Relaxed),
            done: self.done[i].load(Ordering::Relaxed),
            predicted_seconds: self.predicted_ns[i].load(Ordering::Relaxed) as f64 / 1e9,
            measured_seconds: self.measured_ns[i].load(Ordering::Relaxed) as f64 / 1e9,
        };
        ProgressSnapshot {
            state: self.state(),
            stage: self.stage.load(Ordering::Relaxed),
            stages_total: self.stages_total.load(Ordering::Relaxed),
            phases: std::array::from_fn(phase),
        }
    }

    /// Publish the derived progress gauges into `m`:
    /// `run.progress_permille`, `run.state` and (once any phase is
    /// seeded) `sched.eta_seconds` + `sched.predicted_seconds`. Called
    /// by the ticker, the status server and the engines' run epilogues,
    /// so `/metrics`, `BENCH_*.json` and `--metrics-out` all carry them.
    pub fn publish_gauges(&self, m: &MetricsRegistry) {
        let snap = self.snapshot();
        m.gauge_set("run.progress_permille", snap.permille() as f64);
        m.gauge_set("run.state", self.state.load(Ordering::Relaxed) as f64);
        if let Some(eta) = snap.eta_seconds() {
            m.gauge_set("sched.eta_seconds", eta);
        }
        let predicted: f64 = snap.phases.iter().map(|p| p.predicted_seconds).sum();
        if predicted > 0.0 {
            m.gauge_set("sched.predicted_seconds", predicted);
        }
    }
}

/// One phase's progress at snapshot time.
#[derive(Clone, Copy, Debug)]
pub struct PhaseProgress {
    pub name: &'static str,
    pub planned: u64,
    pub done: u64,
    pub predicted_seconds: f64,
    pub measured_seconds: f64,
}

impl PhaseProgress {
    /// Blended per-unit estimate: the cost-model prior weighted as
    /// [`PRIOR_WEIGHT`] virtual units, averaged with the measured unit
    /// times. Pure prior before the first sample, asymptotically the
    /// measured mean.
    pub fn unit_estimate_seconds(&self) -> f64 {
        let done = self.done as f64;
        let prior_unit = if self.planned > 0 && self.predicted_seconds > 0.0 {
            self.predicted_seconds / self.planned as f64
        } else {
            0.0
        };
        if prior_unit > 0.0 {
            (prior_unit * PRIOR_WEIGHT + self.measured_seconds) / (PRIOR_WEIGHT + done)
        } else if self.done > 0 {
            self.measured_seconds / done
        } else {
            0.0
        }
    }

    /// Units still to run (saturating: overruns report zero, never a
    /// negative remainder).
    pub fn remaining_units(&self) -> u64 {
        self.planned.saturating_sub(self.done)
    }

    /// Estimated seconds to finish this phase (≥ 0 by construction).
    pub fn eta_seconds(&self) -> f64 {
        self.remaining_units() as f64 * self.unit_estimate_seconds()
    }

    /// Completion fraction in `[0, 1]` (1 when nothing was planned but
    /// units completed anyway, 0 when idle).
    pub fn fraction(&self) -> f64 {
        if self.planned == 0 {
            if self.done > 0 {
                1.0
            } else {
                0.0
            }
        } else {
            (self.done as f64 / self.planned as f64).min(1.0)
        }
    }
}

/// Point-in-time progress across all phases.
#[derive(Clone, Copy, Debug)]
pub struct ProgressSnapshot {
    pub state: RunState,
    pub stage: u64,
    pub stages_total: u64,
    pub phases: [PhaseProgress; PHASES],
}

impl ProgressSnapshot {
    /// Overall completion fraction: phases weighted by their predicted
    /// seconds when the cost model priced them, else by unit counts.
    pub fn fraction(&self) -> f64 {
        let seeded: Vec<&PhaseProgress> = self.phases.iter().filter(|p| p.planned > 0).collect();
        if seeded.is_empty() {
            return 0.0;
        }
        let total_pred: f64 = seeded.iter().map(|p| p.predicted_seconds).sum();
        if total_pred > 0.0 {
            seeded
                .iter()
                .map(|p| p.predicted_seconds * p.fraction())
                .sum::<f64>()
                / total_pred
        } else {
            let (done, planned) = seeded.iter().fold((0u64, 0u64), |(d, pl), p| {
                (d + p.done.min(p.planned), pl + p.planned)
            });
            done as f64 / planned as f64
        }
    }

    /// `fraction()` in integer permille (0..=1000).
    pub fn permille(&self) -> u64 {
        (self.fraction() * 1000.0).round().clamp(0.0, 1000.0) as u64
    }

    /// Estimated remaining wall seconds, or `None` before any phase is
    /// seeded. Never negative.
    pub fn eta_seconds(&self) -> Option<f64> {
        if self.phases.iter().all(|p| p.planned == 0) {
            return None;
        }
        Some(self.phases.iter().map(|p| p.eta_seconds()).sum())
    }

    /// The `/status` fragment for this snapshot (an object, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"state\":\"{}\",\"stage\":{},\"stages_total\":{},\"progress\":{},\"progress_permille\":{},\"eta_seconds\":{},\"phases\":{{",
            self.state.name(),
            self.stage,
            self.stages_total,
            crate::export::fmt_f64(self.fraction()),
            self.permille(),
            match self.eta_seconds() {
                Some(eta) => crate::export::fmt_f64(eta),
                None => "null".to_string(),
            },
        );
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"planned\":{},\"done\":{},\"predicted_seconds\":{},\"measured_seconds\":{},\"eta_seconds\":{}}}",
                p.name,
                p.planned,
                p.done,
                crate::export::fmt_f64(p.predicted_seconds),
                crate::export::fmt_f64(p.measured_seconds),
                crate::export::fmt_f64(p.eta_seconds()),
            );
        }
        out.push_str("}}");
        out
    }
}

/// The `/status` JSON document: progress, the engines' `live.*` gauges
/// (per-rank straggler stats, per-pipeline-thread overlap) and a
/// per-track span census.
pub fn status_json(telemetry: &Telemetry) -> String {
    let progress = telemetry
        .progress()
        .map(|p| p.snapshot().to_json())
        .unwrap_or_else(|| "null".to_string());
    let mut live = String::new();
    if let Some(m) = telemetry.metrics() {
        for (name, metric) in m.snapshot().metrics {
            let Some(key) = name.strip_prefix("live.") else {
                continue;
            };
            let value = match metric {
                Metric::Counter(c) => c.to_string(),
                Metric::Gauge(g) => crate::export::fmt_f64(g),
                Metric::Histogram(_) => continue,
            };
            if !live.is_empty() {
                live.push(',');
            }
            live.push('"');
            crate::export::escape_into(&mut live, key);
            let _ = write!(live, "\":{value}");
        }
    }
    let mut tracks = String::new();
    for (name, recorded, capacity) in telemetry.tracks_census() {
        if !tracks.is_empty() {
            tracks.push(',');
        }
        tracks.push_str("{\"name\":\"");
        crate::export::escape_into(&mut tracks, &name);
        let _ = write!(tracks, "\",\"events\":{recorded},\"capacity\":{capacity}}}");
    }
    format!(
        "{{\"elapsed_seconds\":{},\"progress\":{progress},\"live\":{{{live}}},\"tracks\":[{tracks}]}}\n",
        crate::export::fmt_f64(telemetry.elapsed_seconds()),
    )
}

/// A dependency-free HTTP status endpoint on a background thread.
/// `GET /metrics` serves the Prometheus exposition, `GET /status` the
/// JSON status document; everything else is 404. Bind with port 0 to
/// let the OS pick — [`StatusServer::local_addr`] reports the real
/// port. Dropping the handle stops the thread.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `telemetry`.
    pub fn bind(telemetry: Telemetry, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("qsim-status".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = serve_one(stream, &telemetry);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut used = 0;
    // Read until the end of the request head (we ignore any body).
    while used < buf.len() {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let mut request = head.lines().next().unwrap_or("").split(' ');
    let method = request.next().unwrap_or("");
    let path = request.next().unwrap_or("");
    let (status, ctype, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "only GET\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => {
                // Refresh the derived progress gauges so a scrape always
                // sees current run.progress_permille / sched.eta_seconds
                // even between ticker beats.
                telemetry.publish_progress_gauges();
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    telemetry.metrics_snapshot().to_prometheus(),
                )
            }
            "/status" => ("200 OK", "application/json", status_json(telemetry)),
            "/" => (
                "200 OK",
                "text/plain",
                "qsim45 status endpoint: /metrics (Prometheus), /status (JSON)\n".to_string(),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A periodic background reporter: every `period` it republishes the
/// derived progress gauges, feeds the flight recorder's rolling
/// snapshot window, and (optionally) prints a one-line progress report
/// to stderr. Dropping the handle stops the thread after the current
/// beat.
pub struct ProgressTicker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressTicker {
    pub fn spawn(
        telemetry: Telemetry,
        recorder: Option<crate::recorder::FlightRecorder>,
        stderr_progress: bool,
        period: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("qsim-progress".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    // Sleep in short steps so drop doesn't stall a full
                    // period.
                    let mut slept = Duration::ZERO;
                    while slept < period && !thread_stop.load(Ordering::Relaxed) {
                        let step = Duration::from_millis(50).min(period - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    telemetry.publish_progress_gauges();
                    if let Some(rec) = &recorder {
                        rec.record_snapshot();
                    }
                    if stderr_progress {
                        if let Some(p) = telemetry.progress() {
                            eprintln!(
                                "{}",
                                progress_line(&p.snapshot(), telemetry.elapsed_seconds())
                            );
                        }
                    }
                }
            })
            .expect("spawn progress ticker");
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for ProgressTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The one-line stderr progress report.
pub fn progress_line(snap: &ProgressSnapshot, elapsed_seconds: f64) -> String {
    let eta = match snap.eta_seconds() {
        Some(eta) => format!("{eta:.1}s"),
        None => "--".to_string(),
    };
    format!(
        "[qsim45] {:5.1}%  {}  unit {}/{}  eta {}  elapsed {:.1}s",
        100.0 * snap.fraction(),
        snap.state.name(),
        snap.stage,
        snap.stages_total,
        eta,
        elapsed_seconds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    /// A synthetic clock: hands out deterministic "measured" unit
    /// durations without touching `Instant`, so the ETA math is tested
    /// against exact arithmetic.
    struct SyntheticClock {
        now_ns: u64,
    }

    impl SyntheticClock {
        fn new() -> Self {
            Self { now_ns: 0 }
        }

        /// Advance by `ns` and return the elapsed interval.
        fn tick(&mut self, ns: u64) -> u64 {
            self.now_ns += ns;
            ns
        }
    }

    #[test]
    fn eta_refines_monotonically_toward_truth_and_never_negative() {
        let p = Progress::new();
        // The cost model predicts 2 s/unit over 10 units; the "real"
        // machine does 1 s/unit.
        p.set_planned_units(Phase::Stage, 10);
        p.set_predicted_seconds(Phase::Stage, 20.0);
        let true_unit_ns = 1_000_000_000u64;
        let mut clock = SyntheticClock::new();

        // Before any sample: ETA is the pure model prediction.
        let eta0 = p.snapshot().eta_seconds().unwrap();
        assert!((eta0 - 20.0).abs() < 1e-9);

        let mut prev_err = f64::INFINITY;
        for k in 1..=10u64 {
            p.unit_done(Phase::Stage, clock.tick(true_unit_ns));
            let snap = p.snapshot();
            let eta = snap.eta_seconds().unwrap();
            let true_remaining = (10 - k) as f64;
            assert!(eta >= 0.0, "ETA must never be negative (k={k}: {eta})");
            let err = (eta - true_remaining).abs();
            assert!(
                err <= prev_err + 1e-12,
                "ETA error must tighten as samples accumulate: k={k}, {err} > {prev_err}"
            );
            prev_err = err;
            // The blend stays between the (high) prior and the measured
            // truth, so it converges from above here.
            assert!(eta >= true_remaining - 1e-9);
        }
        let done = p.snapshot();
        assert_eq!(done.eta_seconds(), Some(0.0));
        assert_eq!(done.permille(), 1000);
        // Convergence is substantial, not just monotone: the final error
        // is zero because no units remain.
        assert!(prev_err < 1e-9);
    }

    #[test]
    fn eta_never_negative_on_overrun() {
        // The engine runs MORE units than planned (replans, retries):
        // remaining saturates at zero instead of going negative.
        let p = Progress::new();
        p.set_planned_units(Phase::Stream, 3);
        p.set_predicted_seconds(Phase::Stream, 3.0);
        let mut clock = SyntheticClock::new();
        for _ in 0..7 {
            p.unit_done(Phase::Stream, clock.tick(2_000_000_000));
            let snap = p.snapshot();
            assert!(snap.eta_seconds().unwrap() >= 0.0);
            assert!(snap.fraction() <= 1.0);
        }
        assert_eq!(p.snapshot().eta_seconds(), Some(0.0));
    }

    #[test]
    fn measured_samples_dominate_a_wrong_prior() {
        // Prior says 1 ms/unit, reality is 100 ms/unit: after a handful
        // of samples the ETA must be within 25% of truth.
        let p = Progress::new();
        p.set_planned_units(Phase::Stage, 100);
        p.set_predicted_seconds(Phase::Stage, 0.1); // 1 ms/unit prior
        let mut clock = SyntheticClock::new();
        for _ in 0..20 {
            p.unit_done(Phase::Stage, clock.tick(100_000_000));
        }
        let eta = p.snapshot().eta_seconds().unwrap();
        let truth = 80.0 * 0.1; // 80 units × 100 ms
        assert!(
            (eta - truth).abs() / truth < 0.25,
            "eta {eta} should approach {truth}"
        );
    }

    #[test]
    fn unseeded_progress_has_no_eta() {
        let p = Progress::new();
        assert_eq!(p.snapshot().eta_seconds(), None);
        assert_eq!(p.snapshot().permille(), 0);
        // Units completing against an unseeded plan still never go
        // negative / above 1.
        p.unit_done(Phase::Swap, 5);
        let snap = p.snapshot();
        assert!(snap.fraction() <= 1.0);
    }

    #[test]
    fn mixed_phase_fraction_weights_by_predicted_seconds() {
        let p = Progress::new();
        p.set_planned_units(Phase::Stage, 10);
        p.set_predicted_seconds(Phase::Stage, 90.0);
        p.set_planned_units(Phase::Swap, 10);
        p.set_predicted_seconds(Phase::Swap, 10.0);
        // All swaps done, no stages: 10% of predicted work complete.
        for _ in 0..10 {
            p.unit_done(Phase::Swap, 1_000_000_000);
        }
        let f = p.snapshot().fraction();
        assert!((f - 0.10).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn status_json_is_valid_and_carries_live_gauges() {
        let t = Telemetry::enabled();
        let p = t.progress().unwrap();
        p.set_planned_units(Phase::Stage, 4);
        p.set_predicted_seconds(Phase::Stage, 8.0);
        p.set_state(RunState::Running);
        p.set_stage(1, 4);
        p.unit_done(Phase::Stage, 2_000_000_000);
        let m = t.metrics().unwrap();
        m.gauge_set("live.rank0.comm_seconds", 0.5);
        m.gauge_set("live.rank1.comm_seconds", 1.5);
        m.counter_add("dist.fabric.bytes_sent", 1); // not a live.* gauge
        {
            let track = t.track("rank 0");
            let _s = track.span("stage");
        }
        let doc = status_json(&t);
        let j = parse(&doc).expect("valid status JSON");
        let progress = j.get("progress").unwrap();
        assert_eq!(progress.get("state").unwrap().as_str(), Some("running"));
        assert_eq!(progress.get("stages_total").unwrap().as_f64(), Some(4.0));
        assert_eq!(
            progress
                .get("phases")
                .unwrap()
                .get("stage")
                .unwrap()
                .get("done")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert!(progress.get("eta_seconds").unwrap().as_f64().unwrap() >= 0.0);
        let live = j.get("live").unwrap();
        assert_eq!(live.get("rank1.comm_seconds").unwrap().as_f64(), Some(1.5));
        assert!(live.get("dist.fabric.bytes_sent").is_none());
        let tracks = j.get("tracks").unwrap().as_array().unwrap();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].get("events").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn status_server_serves_metrics_and_status() {
        let t = Telemetry::enabled();
        let p = t.progress().unwrap();
        p.set_planned_units(Phase::Stream, 8);
        p.set_predicted_seconds(Phase::Stream, 4.0);
        p.unit_done(Phase::Stream, 500_000_000);
        t.metrics().unwrap().counter_add("ooc.runs", 2);
        let server = StatusServer::bind(t.clone(), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "port 0 must resolve to a real port");

        let fetch = |path: &str| -> (String, String) {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            let (head, body) = resp.split_once("\r\n\r\n").expect("head/body");
            (head.to_string(), body.to_string())
        };

        let (head, body) = fetch("/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE qsim_ooc_runs counter\n"));
        assert!(body.contains("qsim_ooc_runs 2\n"));
        // The scrape itself refreshes the derived gauges.
        assert!(body.contains("qsim_run_progress_permille"));
        assert!(body.contains("qsim_sched_eta_seconds"));

        let (head, body) = fetch("/status");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let j = parse(&body).expect("status body parses");
        assert!(j.get("progress").unwrap().get("eta_seconds").is_some());

        let (head, _) = fetch("/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        drop(server);
        // After drop the port no longer accepts (give the thread a beat).
        std::thread::sleep(Duration::from_millis(60));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn progress_line_is_humane() {
        let p = Progress::new();
        p.set_planned_units(Phase::Stage, 4);
        p.set_predicted_seconds(Phase::Stage, 8.0);
        p.set_state(RunState::Running);
        p.set_stage(2, 4);
        p.unit_done(Phase::Stage, 2_000_000_000);
        p.unit_done(Phase::Stage, 2_000_000_000);
        let line = progress_line(&p.snapshot(), 4.0);
        assert!(line.contains("50.0%"), "{line}");
        assert!(line.contains("unit 2/4"), "{line}");
        assert!(line.contains("eta 4.0s"), "{line}");
        let unseeded = progress_line(&Progress::new().snapshot(), 0.0);
        assert!(unseeded.contains("eta --"), "{unseeded}");
    }
}
