//! The unified metrics registry: named counters, gauges and
//! log2-bucketed histograms.
//!
//! This is the common schema the engines' typed stat structs
//! (`FabricStats`, `SweepStats`, `IoStats`) publish into via their
//! `publish_into` methods, and where the hot paths record per-event
//! latencies (`swap_ns`, `chunk_io_ns`, `stage_apply_ns`). Updates take
//! a short mutex on a name-keyed map; after a name's first use an update
//! allocates nothing, so steady-state recording stays allocation-free.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Bucket count of [`Histogram`]: bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i − 1]`, bucket 0 holds exactly 0, and the last bucket
/// absorbs everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `v`: 0 for 0, else `64 − leading_zeros(v)`
    /// capped at the last bucket — i.e. one bucket per bit length.
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Smallest value bucket `i` can hold.
    pub fn bucket_lower(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Largest value bucket `i` can hold.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`, clamped) of the recorded
    /// samples, or `None` when empty. Resolution is the log2 bucket
    /// width: the rank-`⌈q·count⌉` sample is located by a cumulative
    /// walk and interpolated linearly inside its bucket, so the result
    /// is always within the true sample's bucket bounds. The top bucket
    /// is unbounded and reports its lower edge.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c;
            if cum >= rank {
                let lo = Self::bucket_lower(i) as f64;
                let hi = if i >= HISTOGRAM_BUCKETS - 1 {
                    lo
                } else {
                    Self::bucket_upper(i) as f64
                };
                let frac = (rank - prev) as f64 / c as f64;
                return Some(lo + frac * (hi - lo));
            }
        }
        None
    }

    /// `(q, quantile(q))` pairs for each requested `q` — the summary
    /// block exporters attach next to the raw buckets. Empty histograms
    /// yield an empty summary.
    pub fn summary(&self, qs: &[f64]) -> Vec<(f64, f64)> {
        qs.iter()
            .filter_map(|&q| self.quantile(q).map(|v| (q, v)))
            .collect()
    }
}

/// Default quantiles exporters attach to histograms.
pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

/// One named metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Histogram>),
}

/// An ordered point-in-time copy of a [`MetricsRegistry`]. Every
/// renderer — the flat JSON exporter ([`MetricsSnapshot::to_json`]),
/// the Prometheus text endpoint ([`MetricsSnapshot::to_prometheus`]),
/// the bench `BENCH_*.json` metrics blocks and the flight recorder —
/// goes through this one type, so the snapshot schema is defined in
/// exactly one place.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in registry (sorted) order.
    pub metrics: Vec<(String, Metric)>,
}

impl MetricsSnapshot {
    /// The empty snapshot (what a disabled [`crate::Telemetry`] yields).
    pub fn empty() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The captured value of `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// The flat metrics-snapshot JSON document
    /// (`{"counters":…,"gauges":…,"histograms":…}`).
    pub fn to_json(&self) -> String {
        crate::export::metrics_json(&self.metrics)
    }

    /// The Prometheus text exposition (version 0.0.4) of the snapshot.
    pub fn to_prometheus(&self) -> String {
        crate::prom::render(&self.metrics)
    }
}

/// Named counters, gauges and histograms behind one mutex. Mismatched
/// updates (e.g. `counter_add` on a name holding a gauge) replace the
/// entry with the new kind — last writer wins, deterministically.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the counter `name` (creating it at 0).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut g = self.inner.lock();
        match g.get_mut(name) {
            Some(Metric::Counter(c)) => *c += v,
            _ => {
                g.insert(name.to_string(), Metric::Counter(v));
            }
        }
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.inner.lock().insert(name.to_string(), Metric::Gauge(v));
    }

    /// Record `v` into the histogram `name` (creating it empty).
    pub fn record_hist(&self, name: &str, v: u64) {
        let mut g = self.inner.lock();
        match g.get_mut(name) {
            Some(Metric::Histogram(h)) => h.record(v),
            _ => {
                let mut h = Box::new(Histogram::new());
                h.record(v);
                g.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Current value of `name`, if any.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.inner.lock().get(name).cloned()
    }

    /// All metrics in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .inner
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i ≥ 1 is [2^(i−1), 2^i − 1].
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
        }
        // Powers of two land exactly on a boundary: 2^k opens bucket
        // k+1, 2^k − 1 closes bucket k.
        for k in 1..62u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k as usize + 1);
            assert_eq!(Histogram::bucket_index(v - 1), k as usize);
        }
        // The top bucket absorbs everything wide.
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_and_means() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1023]
        assert!((h.mean() - 201.2).abs() < 1e-12);
    }

    #[test]
    fn registry_kinds_and_snapshot_order() {
        let m = MetricsRegistry::new();
        m.counter_add("b.count", 2);
        m.counter_add("b.count", 3);
        m.gauge_set("a.ratio", 0.5);
        m.gauge_set("a.ratio", 0.75);
        m.record_hist("c.ns", 100);
        assert_eq!(m.get("b.count"), Some(Metric::Counter(5)));
        assert_eq!(m.get("a.ratio"), Some(Metric::Gauge(0.75)));
        let snap = m.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.ratio", "b.count", "c.ns"]);
        assert_eq!(snap.get("b.count"), Some(&Metric::Counter(5)));
        assert_eq!(snap.get("missing"), None);
        // Kind mismatch: last writer wins.
        m.counter_add("a.ratio", 1);
        assert_eq!(m.get("a.ratio"), Some(Metric::Counter(1)));
    }

    #[test]
    fn quantile_respects_bucket_boundaries() {
        // Empty histogram has no quantiles.
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert!(Histogram::new().summary(&SUMMARY_QUANTILES).is_empty());

        // Every sample is the same power of two: any quantile must land
        // inside that sample's bucket — including at the exact bucket
        // boundaries 2^k (opens bucket k+1) and 2^k − 1 (closes k).
        for v in [1u64, 2, 1023, 1024, 1 << 20] {
            let mut h = Histogram::new();
            for _ in 0..100 {
                h.record(v);
            }
            let i = Histogram::bucket_index(v);
            let (lo, hi) = (
                Histogram::bucket_lower(i) as f64,
                Histogram::bucket_upper(i) as f64,
            );
            for q in [0.0, 0.5, 0.99, 1.0] {
                let est = h.quantile(q).unwrap();
                assert!(
                    (lo..=hi).contains(&est),
                    "q{q} of 100×{v} = {est}, outside [{lo}, {hi}]"
                );
            }
        }

        // Bucket 0 is exactly {0}.
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), Some(0.0));

        // Two-bucket split: 50 samples in [512,1023], 50 in [1024,2047].
        // The median closes the low bucket; q just past 0.5 opens the
        // high one; quantiles are monotone in q.
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(600);
            h.record(1500);
        }
        assert_eq!(h.quantile(0.5), Some(1023.0));
        let q51 = h.quantile(0.51).unwrap();
        assert!((1024.0..=2047.0).contains(&q51), "q51 = {q51}");
        let mut prev = f64::MIN;
        for q in [0.0, 0.1, 0.5, 0.51, 0.9, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }

        // The unbounded top bucket reports its lower edge, not +inf.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        let top = h.quantile(0.5).unwrap();
        assert_eq!(top, Histogram::bucket_lower(HISTOGRAM_BUCKETS - 1) as f64);
        assert!(top.is_finite());

        // summary() pairs each q with its estimate.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary(&SUMMARY_QUANTILES);
        assert_eq!(s.len(), 3);
        assert!(s.windows(2).all(|w| w[0].1 <= w[1].1));
        // p50 of 1..=1000 lives in [256, 1023] (rank 500's bucket).
        assert!((256.0..=1023.0).contains(&s[0].1), "p50 = {}", s[0].1);
    }
}
