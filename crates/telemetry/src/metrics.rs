//! The unified metrics registry: named counters, gauges and
//! log2-bucketed histograms.
//!
//! This is the common schema the engines' typed stat structs
//! (`FabricStats`, `SweepStats`, `IoStats`) publish into via their
//! `publish_into` methods, and where the hot paths record per-event
//! latencies (`swap_ns`, `chunk_io_ns`, `stage_apply_ns`). Updates take
//! a short mutex on a name-keyed map; after a name's first use an update
//! allocates nothing, so steady-state recording stays allocation-free.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Bucket count of [`Histogram`]: bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i − 1]`, bucket 0 holds exactly 0, and the last bucket
/// absorbs everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `v`: 0 for 0, else `64 − leading_zeros(v)`
    /// capped at the last bucket — i.e. one bucket per bit length.
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Smallest value bucket `i` can hold.
    pub fn bucket_lower(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Largest value bucket `i` can hold.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One named metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Histogram>),
}

/// Named counters, gauges and histograms behind one mutex. Mismatched
/// updates (e.g. `counter_add` on a name holding a gauge) replace the
/// entry with the new kind — last writer wins, deterministically.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the counter `name` (creating it at 0).
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut g = self.inner.lock();
        match g.get_mut(name) {
            Some(Metric::Counter(c)) => *c += v,
            _ => {
                g.insert(name.to_string(), Metric::Counter(v));
            }
        }
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.inner.lock().insert(name.to_string(), Metric::Gauge(v));
    }

    /// Record `v` into the histogram `name` (creating it empty).
    pub fn record_hist(&self, name: &str, v: u64) {
        let mut g = self.inner.lock();
        match g.get_mut(name) {
            Some(Metric::Histogram(h)) => h.record(v),
            _ => {
                let mut h = Box::new(Histogram::new());
                h.record(v);
                g.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Current value of `name`, if any.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.inner.lock().get(name).cloned()
    }

    /// All metrics in name order.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly {0}; bucket i ≥ 1 is [2^(i−1), 2^i − 1].
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
        }
        // Powers of two land exactly on a boundary: 2^k opens bucket
        // k+1, 2^k − 1 closes bucket k.
        for k in 1..62u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k as usize + 1);
            assert_eq!(Histogram::bucket_index(v - 1), k as usize);
        }
        // The top bucket absorbs everything wide.
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_and_means() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1023]
        assert!((h.mean() - 201.2).abs() < 1e-12);
    }

    #[test]
    fn registry_kinds_and_snapshot_order() {
        let m = MetricsRegistry::new();
        m.counter_add("b.count", 2);
        m.counter_add("b.count", 3);
        m.gauge_set("a.ratio", 0.5);
        m.gauge_set("a.ratio", 0.75);
        m.record_hist("c.ns", 100);
        assert_eq!(m.get("b.count"), Some(Metric::Counter(5)));
        assert_eq!(m.get("a.ratio"), Some(Metric::Gauge(0.75)));
        let names: Vec<String> = m.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.ratio", "b.count", "c.ns"]);
        // Kind mismatch: last writer wins.
        m.counter_add("a.ratio", 1);
        assert_eq!(m.get("a.ratio"), Some(Metric::Counter(1)));
    }
}
