//! Prometheus text exposition (format version 0.0.4) of a metrics
//! snapshot — what the status server serves on `/metrics`.
//!
//! The registry's dotted names (`dist.fabric.bytes_sent`) are sanitized
//! to the Prometheus grammar (`qsim_dist_fabric_bytes_sent`). Counters
//! and gauges map directly; a log2 [`Histogram`] becomes a native
//! Prometheus histogram (cumulative `_bucket{le="…"}` series over its
//! non-empty buckets plus `_sum`/`_count`) together with a companion
//! `<name>_approx` summary carrying the [`SUMMARY_QUANTILES`] estimates,
//! so dashboards get both exact bucket counts and ready-made p50/p90/p99
//! lines without a recording rule.

use crate::metrics::{Histogram, Metric, SUMMARY_QUANTILES};
use std::fmt::Write;

/// Sanitize a registry name into a Prometheus metric name: prefix
/// `qsim_`, map every character outside `[a-zA-Z0-9_:]` to `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("qsim_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A f64 in Prometheus value syntax (`NaN`, `+Inf`, `-Inf` are legal
/// there, unlike JSON).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        // The top bucket is unbounded; its cumulative count is the
        // `+Inf` line below rather than a finite `le`.
        if i < crate::HISTOGRAM_BUCKETS - 1 {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cum}",
                Histogram::bucket_upper(i)
            );
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
    let summary = h.summary(&SUMMARY_QUANTILES);
    if !summary.is_empty() {
        let _ = writeln!(out, "# TYPE {name}_approx summary");
        for (q, v) in summary {
            let _ = writeln!(out, "{name}_approx{{quantile=\"{q}\"}} {}", fmt_value(v));
        }
        let _ = writeln!(out, "{name}_approx_sum {}", h.sum);
        let _ = writeln!(out, "{name}_approx_count {}", h.count);
    }
}

/// Render a snapshot's `(name, metric)` pairs as Prometheus text
/// exposition. Always ends with a newline (required by the format) even
/// when empty.
pub fn render(metrics: &[(String, Metric)]) -> String {
    let mut out = String::new();
    for (raw, m) in metrics {
        let name = metric_name(raw);
        match m {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {c}");
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", fmt_value(*g));
            }
            Metric::Histogram(h) => render_histogram(&mut out, &name, h),
        }
    }
    if out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    /// Structural validator mirroring the CI python check: every
    /// non-comment line is `name[{labels}] value`, TYPE comments
    /// well-formed, histogram buckets cumulative and `+Inf`-terminated.
    fn assert_valid_exposition(doc: &str) {
        assert!(doc.ends_with('\n'), "exposition must end with a newline");
        for line in doc.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
                assert!(["counter", "gauge", "histogram", "summary"].contains(&kind));
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            let name_end = series.find('{').unwrap_or(series.len());
            let name = &series[..name_end];
            assert!(
                !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "bad value in {line:?}"
            );
        }
    }

    #[test]
    fn renders_all_metric_kinds_validly() {
        let m = MetricsRegistry::new();
        m.counter_add("dist.fabric.bytes_sent", 4096);
        m.gauge_set("ooc.io/overlap fraction", 0.25);
        m.gauge_set("bad.gauge", f64::NAN);
        for v in [700u64, 900, 1100, 5000] {
            m.record_hist("swap_ns", v);
        }
        let doc = render(&m.snapshot().metrics);
        assert_valid_exposition(&doc);
        assert!(doc.contains("# TYPE qsim_dist_fabric_bytes_sent counter\n"));
        assert!(doc.contains("qsim_dist_fabric_bytes_sent 4096\n"));
        // Sanitization: '.', '/' and ' ' all collapse to '_'.
        assert!(doc.contains("qsim_ooc_io_overlap_fraction 0.25\n"));
        assert!(doc.contains("qsim_bad_gauge NaN\n"));
        // Histogram: cumulative buckets, +Inf terminal, sum/count.
        assert!(doc.contains("qsim_swap_ns_bucket{le=\"1023\"} 2\n"));
        assert!(doc.contains("qsim_swap_ns_bucket{le=\"2047\"} 3\n"));
        assert!(doc.contains("qsim_swap_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(doc.contains("qsim_swap_ns_sum 7700\n"));
        assert!(doc.contains("qsim_swap_ns_count 4\n"));
        // Companion quantile summary.
        assert!(doc.contains("# TYPE qsim_swap_ns_approx summary\n"));
        assert!(doc.contains("qsim_swap_ns_approx{quantile=\"0.5\"}"));
        assert!(doc.contains("qsim_swap_ns_approx{quantile=\"0.99\"}"));
    }

    #[test]
    fn empty_exposition_is_just_a_newline() {
        let doc = render(&[]);
        assert_eq!(doc, "\n");
        assert_valid_exposition(&doc);
    }
}
