//! JSON exporters: Chrome `trace_event` timelines and flat metric
//! snapshots. Hand-rolled emission (the workspace carries no serde);
//! [`crate::json`] parses the output back for validation.

use crate::metrics::{Histogram, Metric};
use crate::span::SpanEvent;
use std::fmt::Write;

/// Escape a string for a JSON string literal.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A finite f64 as a JSON number (`null` for NaN/±inf, which JSON cannot
/// represent).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The Chrome `trace_event` document for a set of track snapshots
/// (`(name, events, dropped)` triples, as returned by
/// `Telemetry::tracks_snapshot`). One `tid` per track, named via
/// `thread_name` metadata; spans are complete (`"ph":"X"`) events with
/// microsecond `ts`/`dur` at nanosecond resolution. Loadable in
/// `chrome://tracing` and <https://ui.perfetto.dev>.
pub fn chrome_trace_json(tracks: &[(String, Vec<SpanEvent>, u64)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n  ");
    };
    for (tid, (name, events, dropped)) in tracks.iter().enumerate() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        );
        escape_into(&mut out, name);
        let _ = write!(out, "\",\"dropped_events\":{dropped}}}}}");
        for ev in events {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"cat\":\"qsim\",\"name\":\""
            );
            escape_into(&mut out, ev.name);
            let _ = write!(
                out,
                "\",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"id\":{},\"depth\":{}}}}}",
                ev.start_ns as f64 / 1e3,
                ev.duration_ns() as f64 / 1e3,
                ev.id,
                ev.depth
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn hist_json(h: &Histogram) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"count\":{},\"sum\":{},\"mean\":{},",
        h.count,
        h.sum,
        fmt_f64(h.mean())
    );
    for (q, v) in h.summary(&crate::metrics::SUMMARY_QUANTILES) {
        let _ = write!(out, "\"p{}\":{},", (q * 100.0).round() as u32, fmt_f64(v));
    }
    out.push_str("\"buckets\":[");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ge\":{},\"le\":{},\"count\":{c}}}",
            Histogram::bucket_lower(i),
            Histogram::bucket_upper(i)
        );
    }
    out.push_str("]}");
    out
}

/// The flat metrics snapshot: `{"counters":{...},"gauges":{...},
/// "histograms":{...}}` with names in registry (sorted) order.
pub fn metrics_json(metrics: &[(String, Metric)]) -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut hists = String::new();
    for (name, m) in metrics {
        let (section, value) = match m {
            Metric::Counter(c) => (&mut counters, c.to_string()),
            Metric::Gauge(g) => (&mut gauges, fmt_f64(*g)),
            Metric::Histogram(h) => (&mut hists, hist_json(h)),
        };
        if !section.is_empty() {
            section.push(',');
        }
        section.push_str("\n    \"");
        escape_into(section, name);
        section.push_str("\": ");
        section.push_str(&value);
    }
    format!(
        "{{\n  \"counters\": {{{counters}\n  }},\n  \"gauges\": {{{gauges}\n  }},\n  \"histograms\": {{{hists}\n  }}\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::MetricsRegistry;

    fn sample_tracks() -> Vec<(String, Vec<SpanEvent>, u64)> {
        vec![
            (
                "rank 0".to_string(),
                vec![
                    SpanEvent {
                        name: "stage",
                        id: 0,
                        depth: 0,
                        start_ns: 1000,
                        end_ns: 2500,
                    },
                    SpanEvent {
                        name: "swap",
                        id: 0,
                        depth: 0,
                        start_ns: 2500,
                        end_ns: 9000,
                    },
                ],
                0,
            ),
            ("\"weird\\name\"".to_string(), vec![], 3),
        ]
    }

    #[test]
    fn chrome_trace_round_trips() {
        let doc = chrome_trace_json(&sample_tracks());
        let j = parse(&doc).expect("valid JSON");
        let events = j.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata + 2 spans.
        assert_eq!(events.len(), 4);
        let meta: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("rank 0")
        );
        assert_eq!(
            meta[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("\"weird\\name\"")
        );
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("swap"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(2.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(6.5));
        assert_eq!(
            span.get("args").unwrap().get("depth").unwrap().as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let m = MetricsRegistry::new();
        m.counter_add("dist.fabric.bytes_sent", 4096);
        m.gauge_set("dist.fabric.overlap_fraction", 0.25);
        m.gauge_set("bad.gauge", f64::NAN);
        m.record_hist("swap_ns", 900);
        m.record_hist("swap_ns", 1100);
        let doc = metrics_json(&m.snapshot().metrics);
        let j = parse(&doc).expect("valid JSON");
        assert_eq!(
            j.get("counters")
                .unwrap()
                .get("dist.fabric.bytes_sent")
                .unwrap()
                .as_f64(),
            Some(4096.0)
        );
        assert_eq!(
            j.get("gauges")
                .unwrap()
                .get("dist.fabric.overlap_fraction")
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
        assert!(matches!(
            j.get("gauges").unwrap().get("bad.gauge"),
            Some(Json::Null)
        ));
        let h = j.get("histograms").unwrap().get("swap_ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        let buckets = h.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 2); // 900 → [512,1023], 1100 → [1024,2047]
        assert_eq!(buckets[0].get("ge").unwrap().as_f64(), Some(512.0));
        assert_eq!(buckets[0].get("le").unwrap().as_f64(), Some(1023.0));
    }

    #[test]
    fn empty_exports_are_valid() {
        assert!(parse(&chrome_trace_json(&[])).is_ok());
        let j = parse(&metrics_json(&[])).unwrap();
        assert!(matches!(j.get("counters"), Some(Json::Object(o)) if o.is_empty()));
    }
}
