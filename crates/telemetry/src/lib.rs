//! Unified telemetry for the qsim45 engines: structured spans, a named
//! metrics registry, and machine-readable exporters.
//!
//! The paper's performance story (§4, Fig. 5–7) is an attribution
//! argument — wall-clock split into kernels vs communication vs IO.
//! Before this crate each engine kept its own ad-hoc counters
//! (`FabricStats`, `SweepStats`, `IoStats`) with no per-stage timing and
//! no common schema. This crate is the shared plumbing those views now
//! publish into:
//!
//! * **Spans** ([`TrackHandle::span`], the [`span!`] macro): nested
//!   begin/end intervals with monotonic nanosecond timestamps, recorded
//!   into a per-track lock-free ring buffer on guard drop. One track per
//!   rank / pipeline thread. When telemetry is disabled every span call
//!   is an `Option` check — no clock read, no allocation.
//! * **Metrics** ([`MetricsRegistry`]): named counters, gauges and
//!   log2-bucketed latency histograms (`swap_ns`, `chunk_io_ns`,
//!   `stage_apply_ns`). The engines' typed stat structs remain the
//!   ergonomic views; they gain `publish_into` methods that flatten into
//!   the registry.
//! * **Exporters**: a Chrome `trace_event` JSON timeline (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>) and a flat metrics
//!   snapshot. Both are hand-rolled JSON (no serde in the workspace);
//!   [`json`] is a minimal parser so tests can round-trip the output.
//!
//! # Threading contract
//!
//! A [`Track`]'s ring buffer is single-producer: at most one thread may
//! hold a live [`TrackHandle`] to a given track name at a time (re-
//! acquiring a name later — e.g. one pass after another — returns the
//! same ring and is fine). Snapshots and exports must happen after the
//! producing threads have quiesced (joined or barriered); the engines
//! export after `run` returns, which satisfies this by construction.
//! The one sanctioned exception is the crash flight recorder
//! ([`recorder`]): at flush time producers may still be live, so its
//! snapshot is best-effort — see the module docs for the exact
//! guarantee. [`Telemetry::tracks_census`] (counts only) is always
//! race-free.

mod export;
mod iostats;
pub mod json;
pub mod live;
mod metrics;
pub mod prom;
pub mod recorder;
mod span;

pub use iostats::IoStats;
pub use live::{Phase, Progress, ProgressTicker, RunState, StatusServer};
pub use metrics::{
    Histogram, Metric, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS, SUMMARY_QUANTILES,
};
pub use recorder::{FlightRecorder, FLIGHT_FILE};
pub use span::{SpanEvent, SpanGuard, Track, TrackHandle};

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Default per-track ring capacity (events kept per track; the ring
/// overwrites the oldest events past this).
pub const DEFAULT_TRACK_CAPACITY: usize = 1 << 14;

pub(crate) struct Inner {
    /// Common time base of every track (chrome-trace `ts` origin).
    pub(crate) t0: Instant,
    pub(crate) track_capacity: usize,
    pub(crate) tracks: Mutex<Vec<Arc<Track>>>,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) progress: live::Progress,
}

/// A cheaply-clonable telemetry handle. [`Telemetry::disabled`] (the
/// `Default`) carries no state: every operation through it is a branch
/// on `None` — no timestamps, no allocation, no synchronization.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// The no-op handle (near-zero cost everywhere it is threaded).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording handle with the default per-track ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACK_CAPACITY)
    }

    /// A recording handle keeping the most recent `track_capacity` span
    /// events per track.
    pub fn with_capacity(track_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                track_capacity: track_capacity.max(1),
                tracks: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
                progress: live::Progress::new(),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Acquire the span track named `name`, registering it on first use.
    /// Re-acquiring a name returns a handle to the same ring — see the
    /// crate-level single-producer contract.
    pub fn track(&self, name: &str) -> TrackHandle {
        match &self.inner {
            None => TrackHandle::disabled(),
            Some(inner) => {
                let mut tracks = inner.tracks.lock();
                let track = match tracks.iter().find(|t| t.name() == name) {
                    Some(t) => Arc::clone(t),
                    None => {
                        let t = Arc::new(Track::new(name, inner.track_capacity));
                        tracks.push(Arc::clone(&t));
                        t
                    }
                };
                TrackHandle::new(track, Arc::clone(inner))
            }
        }
    }

    /// The shared metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// The live progress/ETA state, when enabled.
    pub fn progress(&self) -> Option<&live::Progress> {
        self.inner.as_deref().map(|i| &i.progress)
    }

    /// Record one completed progress unit (no-op when disabled) — the
    /// engines' tap at stage/swap/pass boundaries.
    pub fn progress_unit(&self, phase: live::Phase, measured_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.progress.unit_done(phase, measured_ns);
        }
    }

    /// Publish the derived progress gauges (`run.progress_permille`,
    /// `sched.eta_seconds`, …) into the metrics registry (no-op when
    /// disabled).
    pub fn publish_progress_gauges(&self) {
        if let Some(inner) = &self.inner {
            inner.progress.publish_gauges(&inner.metrics);
        }
    }

    /// Seconds since this telemetry handle was created (the common time
    /// base of every track); 0 when disabled.
    pub fn elapsed_seconds(&self) -> f64 {
        match &self.inner {
            None => 0.0,
            Some(inner) => inner.t0.elapsed().as_secs_f64(),
        }
    }

    /// Record `ns` into the log2-bucketed histogram `name` (no-op when
    /// disabled).
    pub fn record_duration_ns(&self, name: &str, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.record_hist(name, ns);
        }
    }

    /// Snapshot every track: `(name, events, dropped)` where `dropped`
    /// counts events overwritten by ring wraparound.
    pub fn tracks_snapshot(&self) -> Vec<(String, Vec<SpanEvent>, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .tracks
                .lock()
                .iter()
                .map(|t| {
                    let (events, dropped) = t.snapshot();
                    (t.name().to_string(), events, dropped)
                })
                .collect(),
        }
    }

    /// A `(name, events_recorded, capacity)` census of every track —
    /// reads only the published head counters, so it is race-free even
    /// while producers are live (unlike [`Telemetry::tracks_snapshot`]).
    pub fn tracks_census(&self) -> Vec<(String, u64, usize)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .tracks
                .lock()
                .iter()
                .map(|t| (t.name().to_string(), t.recorded(), t.capacity()))
                .collect(),
        }
    }

    /// The Chrome `trace_event` JSON timeline of every track (empty
    /// object-with-no-events when disabled).
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_json(&self.tracks_snapshot())
    }

    /// An ordered point-in-time copy of the metrics registry (empty
    /// when disabled). All renderers hang off [`MetricsSnapshot`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match self.metrics() {
            Some(m) => m.snapshot(),
            None => MetricsSnapshot::empty(),
        }
    }

    /// The flat metrics-snapshot JSON (counters, gauges, histograms).
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Write [`Telemetry::chrome_trace_json`] to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Write [`Telemetry::metrics_json`] to `path`.
    pub fn write_metrics(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.metrics_json())
    }
}

/// Open a span on a track: `span!(track, "stage")` or
/// `span!(track, "stage", id)`. Evaluates to the guard; bind it
/// (`let _s = span!(...)`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($track:expr, $name:expr) => {
        $track.span($name)
    };
    ($track:expr, $name:expr, $id:expr) => {
        $track.span_id($name, $id as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let track = t.track("anything");
        {
            let _a = track.span("outer");
            let _b = span!(track, "inner", 3);
        }
        assert!(t.tracks_snapshot().is_empty());
        assert!(t.metrics().is_none());
        t.record_duration_ns("swap_ns", 123);
        // Exports still emit valid (empty) documents.
        assert!(json::parse(&t.chrome_trace_json()).is_ok());
        assert!(json::parse(&t.metrics_json()).is_ok());
    }

    #[test]
    fn span_nesting_round_trips() {
        let t = Telemetry::enabled();
        let track = t.track("main");
        {
            let _outer = track.span_id("outer", 7);
            {
                let _mid = track.span("mid");
                let _leaf = span!(track, "leaf", 2);
            }
            let _mid2 = track.span("mid2");
        }
        let snap = t.tracks_snapshot();
        assert_eq!(snap.len(), 1);
        let (name, events, dropped) = &snap[0];
        assert_eq!(name, "main");
        assert_eq!(*dropped, 0);
        // Guards drop innermost-first, so events arrive leaf → root.
        let by_name: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(by_name, ["leaf", "mid", "mid2", "outer"]);
        let get = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(get("outer").depth, 0);
        assert_eq!(get("mid").depth, 1);
        assert_eq!(get("leaf").depth, 2);
        assert_eq!(get("mid2").depth, 1);
        assert_eq!(get("outer").id, 7);
        assert_eq!(get("leaf").id, 2);
        // Containment: children start/end inside their parent.
        let o = get("outer");
        for n in ["mid", "leaf", "mid2"] {
            let e = get(n);
            assert!(o.start_ns <= e.start_ns && e.end_ns <= o.end_ns, "{n}");
        }
        let (m, l) = (get("mid"), get("leaf"));
        assert!(m.start_ns <= l.start_ns && l.end_ns <= m.end_ns);
        // And depth returned to 0: a fresh span is a root again.
        {
            let _again = track.span("again");
        }
        let snap = t.tracks_snapshot();
        assert_eq!(snap[0].1.last().unwrap().depth, 0);
    }

    #[test]
    fn reacquired_track_shares_the_ring() {
        let t = Telemetry::enabled();
        {
            let track = t.track("pass");
            let _s = track.span("first");
        }
        {
            let track = t.track("pass");
            let _s = track.span("second");
        }
        let snap = t.tracks_snapshot();
        assert_eq!(snap.len(), 1, "same name, same track");
        assert_eq!(snap[0].1.len(), 2);
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let t = Telemetry::with_capacity(4);
        let track = t.track("small");
        for i in 0..10u64 {
            let _s = track.span_id("e", i);
        }
        let (_, events, dropped) = t.tracks_snapshot().remove(0);
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        let ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        assert_eq!(ids, [6, 7, 8, 9]);
    }

    #[test]
    fn timed_span_feeds_histogram() {
        let t = Telemetry::enabled();
        let track = t.track("main");
        for i in 0..3u64 {
            let _s = track.span_timed("swap", i, "swap_ns");
        }
        match t.metrics().unwrap().get("swap_ns") {
            Some(Metric::Histogram(h)) => assert_eq!(h.count, 3),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
