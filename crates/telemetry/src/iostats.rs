//! Disk-traffic and pipeline-overlap counters ([`IoStats`]).
//!
//! Authored by the out-of-core engine's chunk store (see
//! `qsim_ooc::chunkstore`, which re-exports the type), but defined here —
//! below every engine crate — so the unified backend outcome in
//! `qsim_core` can carry the OOC stats variant without a dependency
//! cycle. The struct is pure counters plus derived ratios; all the IO
//! machinery that fills it stays in `qsim_ooc`.

/// Disk-traffic and pipeline-overlap counters.
///
/// `read_seconds` / `write_seconds` accrue where the file operations run
/// (the prefetch/writeback threads of a pipelined pass, the compute loop
/// of a synchronous one); `io_wait_seconds` is the portion of the
/// *compute loop's* time spent blocked on IO — waiting on a prefetched
/// chunk or a free buffer when pipelined, the inline read/write time
/// when synchronous. The pipeline wins exactly when `io_wait_seconds`
/// falls below the raw IO time, which [`IoStats::overlap_fraction`]
/// reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoStats {
    /// Physical bytes read from disk (encoded bytes under a codec).
    pub bytes_read: u64,
    /// Physical bytes written to disk (encoded bytes under a codec).
    pub bytes_written: u64,
    /// Amplitude bytes delivered to compute (equals `bytes_read` with no
    /// codec).
    pub logical_bytes_read: u64,
    /// Amplitude bytes retired by compute (equals `bytes_written` with
    /// no codec).
    pub logical_bytes_written: u64,
    /// Wall-clock spent inside read syscalls.
    pub read_seconds: f64,
    /// Wall-clock spent inside write syscalls.
    pub write_seconds: f64,
    /// Wall-clock spent encoding chunk frames (writeback side).
    pub encode_seconds: f64,
    /// Wall-clock spent decoding chunk frames (prefetch side).
    pub decode_seconds: f64,
    /// Compute-loop time blocked on IO (see type docs).
    pub io_wait_seconds: f64,
    /// Compute-loop time spent applying operations to resident chunks.
    pub compute_seconds: f64,
    /// Full-state streaming passes over the chunk set (stage runs, swap
    /// scatter and swap unpermute; initialization is not counted).
    pub traversals: u64,
    /// Buffer-pool misses (allocations); zero once the pool is warm.
    pub buffer_allocs: u64,
}

impl IoStats {
    /// Stats contribution of one pass's compute loop: the blocked-on-IO /
    /// op-apply wall-clock split (no bytes — those come from the
    /// reader/writer views). Both pass modes of the OOC pipeline build
    /// their loop stats through this one constructor and fold them in via
    /// [`IoStats::merge`].
    pub fn compute_loop(io_wait_seconds: f64, compute_seconds: f64) -> Self {
        Self {
            io_wait_seconds,
            compute_seconds,
            ..Self::default()
        }
    }

    /// Accumulate counters from a reader/writer view or a sub-pass.
    pub fn merge(&mut self, other: &IoStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.logical_bytes_read += other.logical_bytes_read;
        self.logical_bytes_written += other.logical_bytes_written;
        self.read_seconds += other.read_seconds;
        self.write_seconds += other.write_seconds;
        self.encode_seconds += other.encode_seconds;
        self.decode_seconds += other.decode_seconds;
        self.io_wait_seconds += other.io_wait_seconds;
        self.compute_seconds += other.compute_seconds;
        self.traversals += other.traversals;
        self.buffer_allocs += other.buffer_allocs;
    }

    /// Fraction of raw IO time hidden behind compute:
    /// `1 − io_wait / (read + write)`, clamped to [0, 1]. A fully
    /// synchronous engine reports ~0; a perfectly overlapped pipeline
    /// approaches 1. Zero when no IO time was recorded.
    pub fn overlap_fraction(&self) -> f64 {
        let io = self.read_seconds + self.write_seconds;
        if io <= 0.0 {
            0.0
        } else {
            (1.0 - self.io_wait_seconds / io).clamp(0.0, 1.0)
        }
    }

    /// Written-side compression achieved: amplitude bytes retired per
    /// physical byte on disk. Exactly 1.0 with no codec; > 1.0 when
    /// the codec wins; 1.0 when nothing was written.
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_written == 0 {
            1.0
        } else {
            self.logical_bytes_written as f64 / self.bytes_written as f64
        }
    }

    /// Flatten these counters into the unified metrics registry under
    /// `prefix` (e.g. `ooc.io`). The struct remains the typed view; the
    /// registry feeds the exported metrics snapshot.
    pub fn publish_into(&self, metrics: &crate::MetricsRegistry, prefix: &str) {
        metrics.counter_add(&format!("{prefix}.bytes_read"), self.bytes_read);
        metrics.counter_add(&format!("{prefix}.bytes_written"), self.bytes_written);
        metrics.counter_add(
            &format!("{prefix}.logical_bytes_read"),
            self.logical_bytes_read,
        );
        metrics.counter_add(
            &format!("{prefix}.logical_bytes_written"),
            self.logical_bytes_written,
        );
        metrics.counter_add(&format!("{prefix}.traversals"), self.traversals);
        metrics.counter_add(&format!("{prefix}.buffer_allocs"), self.buffer_allocs);
        metrics.gauge_set(&format!("{prefix}.read_seconds"), self.read_seconds);
        metrics.gauge_set(&format!("{prefix}.write_seconds"), self.write_seconds);
        metrics.gauge_set(&format!("{prefix}.encode_seconds"), self.encode_seconds);
        metrics.gauge_set(&format!("{prefix}.decode_seconds"), self.decode_seconds);
        metrics.gauge_set(&format!("{prefix}.io_wait_seconds"), self.io_wait_seconds);
        metrics.gauge_set(&format!("{prefix}.compute_seconds"), self.compute_seconds);
        metrics.gauge_set(
            &format!("{prefix}.overlap_fraction"),
            self.overlap_fraction(),
        );
    }
}
