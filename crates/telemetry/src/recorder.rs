//! The crash flight recorder: last-known-state forensics for runs that
//! die.
//!
//! A [`FlightRecorder`] is armed next to a run's checkpoint directory.
//! While the run is healthy the progress ticker feeds it a rolling
//! window of periodic metrics snapshots; when the run dies — typed
//! `SimError`, panic, fabric poison, or SIGTERM — [`FlightRecorder::
//! flush`] drains the span ring buffers, the current metrics snapshot,
//! the snapshot history and the progress state into a single
//! `FLIGHT.json` beside the checkpoint manifest. Flushing is
//! write-once: the first fault wins and later triggers (a poisoned
//! rank's follow-on panics, the driver's error epilogue) are no-ops, so
//! the record always describes the root cause's instant.
//!
//! # Mid-crash span snapshots
//!
//! The span rings are single-producer and normally snapshotted only
//! after producers quiesce. A flight recorder cannot wait: at flush
//! time other ranks/pipeline threads may still be recording. The
//! snapshot is therefore *best effort* — it only reads slots below each
//! ring's published head (Release/Acquire ordered), so every span it
//! reports was fully written; at worst a concurrently-overwritten slot
//! from a wrapped ring yields one stale event. That trade — a possibly
//! slightly-torn tail versus no forensics at all — is the right one for
//! a crash path, and is documented in DESIGN.md §15.

use crate::{MetricsSnapshot, Telemetry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// File name of the flight record, written next to the checkpoint
/// manifest (`MANIFEST.json`) when a run dies.
pub const FLIGHT_FILE: &str = "FLIGHT.json";

/// How many periodic metrics snapshots the rolling window retains.
const SNAPSHOT_WINDOW: usize = 8;

struct RecorderInner {
    telemetry: Telemetry,
    dir: PathBuf,
    /// `(elapsed_seconds, snapshot)` beats, oldest first.
    window: Mutex<VecDeque<(f64, MetricsSnapshot)>>,
    written: AtomicBool,
}

/// A cheaply-clonable handle on one run's flight recorder.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl FlightRecorder {
    /// Arm a recorder writing into `dir` (the checkpoint / store
    /// directory; created on flush if missing).
    pub fn new(telemetry: Telemetry, dir: impl Into<PathBuf>) -> Self {
        Self {
            inner: Arc::new(RecorderInner {
                telemetry,
                dir: dir.into(),
                window: Mutex::new(VecDeque::new()),
                written: AtomicBool::new(false),
            }),
        }
    }

    /// Where the flight record will be written.
    pub fn path(&self) -> PathBuf {
        self.inner.dir.join(FLIGHT_FILE)
    }

    /// Append the current metrics snapshot to the rolling window
    /// (called by the progress ticker each beat).
    pub fn record_snapshot(&self) {
        let snap = self.inner.telemetry.metrics_snapshot();
        let elapsed = self.inner.telemetry.elapsed_seconds();
        let mut w = self.inner.window.lock();
        if w.len() >= SNAPSHOT_WINDOW {
            w.pop_front();
        }
        w.push_back((elapsed, snap));
    }

    /// Mark the run as completed successfully: no flight record will be
    /// written by any later trigger.
    pub fn disarm(&self) {
        self.inner.written.store(true, Ordering::SeqCst);
    }

    /// Write the flight record (once). Returns the written path, or
    /// `Ok(None)` if an earlier trigger already flushed (or the
    /// recorder was disarmed).
    pub fn flush(&self, reason: &str) -> std::io::Result<Option<PathBuf>> {
        if self.inner.written.swap(true, Ordering::SeqCst) {
            return Ok(None);
        }
        let doc = self.render(reason);
        std::fs::create_dir_all(&self.inner.dir)?;
        let path = self.path();
        // Tmp + rename: a crash mid-flush leaves no torn FLIGHT.json.
        let tmp = self.inner.dir.join(".FLIGHT.json.tmp");
        std::fs::write(&tmp, doc)?;
        std::fs::rename(&tmp, &path)?;
        Ok(Some(path))
    }

    fn render(&self, reason: &str) -> String {
        let t = &self.inner.telemetry;
        let mut out = String::from("{\n  \"reason\": \"");
        crate::export::escape_into(&mut out, reason);
        let _ = write!(
            out,
            "\",\n  \"elapsed_seconds\": {},\n",
            crate::export::fmt_f64(t.elapsed_seconds())
        );
        let progress = t
            .progress()
            .map(|p| p.snapshot().to_json())
            .unwrap_or_else(|| "null".to_string());
        let _ = writeln!(out, "  \"progress\": {progress},");
        out.push_str("  \"tracks\": [");
        let mut first = true;
        for (name, events, dropped) in t.tracks_snapshot() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {\"name\": \"");
            crate::export::escape_into(&mut out, &name);
            let _ = write!(out, "\", \"dropped\": {dropped}, \"spans\": [");
            for (i, ev) in events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"name\":\"");
                crate::export::escape_into(&mut out, ev.name);
                let _ = write!(
                    out,
                    "\",\"id\":{},\"depth\":{},\"start_ns\":{},\"end_ns\":{}}}",
                    ev.id, ev.depth, ev.start_ns, ev.end_ns
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"metrics\": ");
        let metrics = t.metrics_snapshot().to_json();
        out.push_str(metrics.trim_end());
        out.push_str(",\n  \"history\": [");
        let window = self.inner.window.lock();
        for (i, (elapsed, snap)) in window.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"elapsed_seconds\": {}, \"metrics\": {}}}",
                crate::export::fmt_f64(*elapsed),
                snap.to_json().trim_end()
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------
// Global arming: the panic hook and the SIGTERM watcher need a
// process-wide place to find "the run's recorder".

fn armed() -> &'static Mutex<Option<FlightRecorder>> {
    static ARMED: OnceLock<Mutex<Option<FlightRecorder>>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(None))
}

/// Make `recorder` the process-wide crash target and install the
/// chaining panic hook (once per process). Any later panic — including
/// the fabric's poison-marker panics on victim ranks — flushes the
/// armed recorder before normal panic handling continues.
pub fn arm_process(recorder: &FlightRecorder) {
    *armed().lock() = Some(recorder.clone());
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            flush_armed(&format!("panic: {msg}"));
            prev(info);
        }));
    });
}

/// Drop the process-wide recorder (end of run).
pub fn disarm_process() {
    *armed().lock() = None;
}

/// Flush the armed recorder, if any. Returns the written path when this
/// call performed the (single) write.
pub fn flush_armed(reason: &str) -> Option<PathBuf> {
    let rec = armed().lock().clone();
    rec.and_then(|r| r.flush(reason).ok().flatten())
}

/// Has this process received SIGTERM since
/// [`install_sigterm_recorder`]?
pub fn sigterm_seen() -> bool {
    SIGTERM_SEEN.load(Ordering::SeqCst)
}

static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    // Async-signal-safe: a single atomic store. The watcher thread does
    // the file IO.
    SIGTERM_SEEN.store(true, Ordering::SeqCst);
}

/// Install a SIGTERM handler (raw `signal(2)` binding — the workspace
/// carries no libc crate) plus a watcher thread that, on delivery,
/// flushes the armed recorder and exits with the conventional 143.
/// Returns `false` on non-unix platforms or if the handler could not be
/// installed. Idempotent.
pub fn install_sigterm_recorder() -> bool {
    #[cfg(unix)]
    {
        static INSTALLED: OnceLock<bool> = OnceLock::new();
        *INSTALLED.get_or_init(|| {
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            const SIGTERM: i32 = 15;
            const SIG_ERR: usize = usize::MAX;
            let prev = unsafe { signal(SIGTERM, on_sigterm as *const () as usize) };
            if prev == SIG_ERR {
                return false;
            }
            std::thread::Builder::new()
                .name("qsim-sigterm".into())
                .spawn(|| loop {
                    if sigterm_seen() {
                        flush_armed("sigterm");
                        std::process::exit(143);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                })
                .is_ok()
        })
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::live::{Phase, RunState};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qsim-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn instrumented() -> Telemetry {
        let t = Telemetry::enabled();
        let track = t.track("rank 1");
        for i in 0..3u64 {
            let _s = track.span_id("stage", i);
        }
        t.metrics()
            .unwrap()
            .counter_add("dist.swap_bytes_copied", 4096);
        if let Some(p) = t.progress() {
            p.set_planned_units(Phase::Stage, 8);
            p.set_state(RunState::Running);
            for _ in 0..3 {
                p.unit_done(Phase::Stage, 1000);
            }
        }
        t
    }

    #[test]
    fn flush_writes_spans_metrics_and_history_once() {
        let dir = tmpdir("flush");
        let t = instrumented();
        let rec = FlightRecorder::new(t.clone(), &dir);
        rec.record_snapshot();
        t.metrics()
            .unwrap()
            .counter_add("dist.swap_bytes_copied", 4096);
        rec.record_snapshot();

        let path = rec.flush("fabric poisoned by rank 1").unwrap().unwrap();
        assert_eq!(path, dir.join(FLIGHT_FILE));
        let doc = std::fs::read_to_string(&path).unwrap();
        let j = parse(&doc).expect("flight record is valid JSON");
        assert_eq!(
            j.get("reason").unwrap().as_str(),
            Some("fabric poisoned by rank 1")
        );
        // The dying rank's final spans are present.
        let tracks = j.get("tracks").unwrap().as_array().unwrap();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].get("name").unwrap().as_str(), Some("rank 1"));
        let spans = tracks[0].get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[2].get("id").unwrap().as_f64(), Some(2.0));
        // The last metrics snapshot and the rolling window.
        assert_eq!(
            j.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("dist.swap_bytes_copied")
                .unwrap()
                .as_f64(),
            Some(8192.0)
        );
        let history = j.get("history").unwrap().as_array().unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(
            history[0]
                .get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("dist.swap_bytes_copied")
                .unwrap()
                .as_f64(),
            Some(4096.0)
        );
        // Progress state rode along.
        assert_eq!(
            j.get("progress").unwrap().get("state").unwrap().as_str(),
            Some("running")
        );

        // Write-once: the second trigger is a no-op and the file keeps
        // the first reason.
        assert!(rec.flush("later panic").unwrap().is_none());
        let again = std::fs::read_to_string(&path).unwrap();
        assert!(again.contains("fabric poisoned by rank 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rolling_window_is_bounded() {
        let dir = tmpdir("window");
        let t = Telemetry::enabled();
        t.metrics().unwrap().counter_add("beat", 1);
        let rec = FlightRecorder::new(t, &dir);
        for _ in 0..30 {
            rec.record_snapshot();
        }
        let path = rec.flush("test").unwrap().unwrap();
        let j = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let history = j.get("history").unwrap().as_array().unwrap();
        assert_eq!(history.len(), super::SNAPSHOT_WINDOW);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disarm_suppresses_the_record() {
        let dir = tmpdir("disarm");
        let rec = FlightRecorder::new(Telemetry::enabled(), &dir);
        rec.disarm();
        assert!(rec.flush("should not write").unwrap().is_none());
        assert!(!rec.path().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_telemetry_still_yields_a_record() {
        // A run with telemetry off can still crash; the record is then
        // just the reason + empty sections, never a write failure.
        let dir = tmpdir("disabled");
        let rec = FlightRecorder::new(Telemetry::disabled(), &dir);
        let path = rec.flush("sigterm").unwrap().unwrap();
        let j = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(j.get("reason").unwrap().as_str(), Some("sigterm"));
        assert!(matches!(j.get("progress"), Some(Json::Null)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_recorder_flushes_from_free_function() {
        let dir = tmpdir("armed");
        let rec = FlightRecorder::new(instrumented(), &dir);
        // NOTE: arm_process installs a panic hook; other tests' panics
        // in this process would then also try to flush — harmless
        // (write-once + this recorder only), but keep the armed window
        // short.
        arm_process(&rec);
        let path = flush_armed("SimError: injected fault at rank 1").unwrap();
        assert!(path.exists());
        disarm_process();
        assert!(flush_armed("after disarm").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
