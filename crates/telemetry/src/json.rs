//! A minimal JSON parser — just enough to validate and inspect the
//! documents this crate emits (the workspace has no serde). Supports the
//! full JSON value grammar with standard escapes; numbers parse as f64.

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // crate; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (content bytes pass through).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        tok.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{tok}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let j =
            parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\ny"}"#).unwrap();
        assert_eq!(
            j.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            j.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(j.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_escapes() {
        let j = parse(r#""q\"u\\ote""#).unwrap();
        assert_eq!(j.as_str(), Some("q\"u\\ote"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }
}
