//! Span recording: per-track lock-free ring buffers and RAII guards.
//!
//! A [`Track`] is one timeline row (a rank, a pipeline thread). Its ring
//! is preallocated at registration, so recording a span in steady state
//! is two clock reads and one slot write — no allocation, no locks. The
//! ring is single-producer (see the crate-level contract); readers
//! snapshot after the producer has quiesced.

use crate::Inner;
use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One completed span: a named `[start_ns, end_ns]` interval on its
/// track's timeline, with a caller-chosen `id` (stage index, chunk
/// index, …) and the nesting `depth` at which it was opened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    pub id: u64,
    pub depth: u32,
    /// Nanoseconds since the owning [`crate::Telemetry`]'s creation.
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanEvent {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

const EMPTY: SpanEvent = SpanEvent {
    name: "",
    id: 0,
    depth: 0,
    start_ns: 0,
    end_ns: 0,
};

/// A named span timeline backed by a fixed-capacity ring. Writes are
/// wait-free slot stores by the single producer; the oldest events are
/// overwritten once the ring is full.
pub struct Track {
    name: String,
    slots: Box<[UnsafeCell<SpanEvent>]>,
    /// Total events ever pushed; `head % capacity` is the next slot.
    head: AtomicUsize,
}

// SAFETY: slot access is disciplined by the single-producer contract
// (one live `TrackHandle` per track) plus quiesced-reader snapshots;
// the `head` counter publishes completed writes with Release ordering.
unsafe impl Send for Track {}
unsafe impl Sync for Track {}

impl Track {
    pub(crate) fn new(name: &str, capacity: usize) -> Self {
        Self {
            name: name.to_string(),
            slots: (0..capacity.max(1))
                .map(|_| UnsafeCell::new(EMPTY))
                .collect(),
            head: AtomicUsize::new(0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (monotone; the ring retains the most
    /// recent `min(recorded, capacity)`). Safe to read while the
    /// producer is live — it touches only the published head counter.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire) as u64
    }

    fn push(&self, ev: SpanEvent) {
        let h = self.head.load(Ordering::Relaxed);
        // SAFETY: single producer — no concurrent writer for this slot,
        // and readers only inspect slots at indices below the published
        // head (Acquire on their side pairs with the Release below).
        unsafe { *self.slots[h % self.slots.len()].get() = ev };
        self.head.store(h + 1, Ordering::Release);
    }

    /// The retained events in push order, plus how many older events the
    /// ring overwrote.
    pub fn snapshot(&self) -> (Vec<SpanEvent>, u64) {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len();
        let n = h.min(cap);
        let events = (h - n..h)
            // SAFETY: these slots were fully written before `head`
            // advanced past them, and the producer has quiesced (crate
            // contract), so no write races this read.
            .map(|i| unsafe { *self.slots[i % cap].get() })
            .collect();
        (events, (h - n) as u64)
    }
}

struct TrackRef {
    track: Arc<Track>,
    inner: Arc<Inner>,
    /// Open-span nesting depth on this handle (single-threaded by the
    /// producer contract, hence `Cell`).
    depth: Cell<u32>,
}

/// A producer handle on one [`Track`]. Disabled handles (from a disabled
/// [`crate::Telemetry`]) make every span call a no-op that never reads
/// the clock.
pub struct TrackHandle {
    inner: Option<TrackRef>,
}

impl TrackHandle {
    pub(crate) fn disabled() -> Self {
        Self { inner: None }
    }

    pub(crate) fn new(track: Arc<Track>, inner: Arc<Inner>) -> Self {
        Self {
            inner: Some(TrackRef {
                track,
                inner,
                depth: Cell::new(0),
            }),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it records itself on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.open(name, 0, None)
    }

    /// Open a span carrying an id (stage index, chunk index, rank, …).
    pub fn span_id(&self, name: &'static str, id: u64) -> SpanGuard<'_> {
        self.open(name, id, None)
    }

    /// Open a span that additionally records its duration into the
    /// log2-bucketed histogram `hist` on drop.
    pub fn span_timed(&self, name: &'static str, id: u64, hist: &'static str) -> SpanGuard<'_> {
        self.open(name, id, Some(hist))
    }

    fn open(&self, name: &'static str, id: u64, hist: Option<&'static str>) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard { rec: None },
            Some(r) => {
                let depth = r.depth.get();
                r.depth.set(depth + 1);
                SpanGuard {
                    rec: Some(OpenSpan {
                        handle: r,
                        name,
                        id,
                        depth,
                        hist,
                        start_ns: r.inner.t0.elapsed().as_nanos() as u64,
                    }),
                }
            }
        }
    }
}

struct OpenSpan<'a> {
    handle: &'a TrackRef,
    name: &'static str,
    id: u64,
    depth: u32,
    hist: Option<&'static str>,
    start_ns: u64,
}

/// RAII guard of an open span: records the completed interval into the
/// track's ring when dropped.
#[must_use = "bind the guard (`let _s = ...`) so the span covers the scope"]
pub struct SpanGuard<'a> {
    rec: Option<OpenSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let r = rec.handle;
            let end_ns = r.inner.t0.elapsed().as_nanos() as u64;
            r.depth.set(r.depth.get().saturating_sub(1));
            r.track.push(SpanEvent {
                name: rec.name,
                id: rec.id,
                depth: rec.depth,
                start_ns: rec.start_ns,
                end_ns,
            });
            if let Some(hist) = rec.hist {
                r.inner
                    .metrics
                    .record_hist(hist, end_ns.saturating_sub(rec.start_ns));
            }
        }
    }
}
