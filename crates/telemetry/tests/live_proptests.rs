//! Property tests over the live-progress ETA engine's numeric inputs.
//!
//! The cost-model prior arrives as an `f64` that nothing upstream
//! sanitizes: an uncalibrated weight or a zero-time probe can hand
//! `set_predicted_seconds` a NaN or ±∞. Before the clamp, the
//! `(seconds * 1e9) as u64` cast saturated +∞ to `u64::MAX` ns (~585
//! years), poisoning every ETA blend a monitoring surface would render.
//! These tests drive the seed with arbitrary *bit patterns* — every
//! NaN payload, both infinities, subnormals, negatives — and assert the
//! snapshot math stays finite and non-negative.

use proptest::prelude::*;
use qsim_telemetry::{Phase, Progress};

/// A seed drawn from the classes a degenerate cost model can produce:
/// the non-finite specials explicitly, plus arbitrary positive and
/// negative bit patterns (which cover subnormals, huge finites, and —
/// rarely — more NaN payloads).
fn seed_class(class: u8, bits: u64) -> f64 {
    match class {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -f64::from_bits(bits >> 1),
        _ => f64::from_bits(bits),
    }
}

proptest! {
    #[test]
    fn predicted_seconds_survive_arbitrary_bit_patterns(
        class in 0u8..6,
        bits in 0u64..u64::MAX,
        planned in 1u64..=1_000,
        done_units in 0u64..=1_000,
    ) {
        let seed = seed_class(class, bits);
        let p = Progress::new();
        p.set_planned_units(Phase::Stage, planned);
        p.set_predicted_seconds(Phase::Stage, seed);
        for _ in 0..done_units.min(planned) {
            p.unit_done(Phase::Stage, 1_000_000);
        }
        let snap = p.snapshot();
        for phase in &snap.phases {
            prop_assert!(
                phase.predicted_seconds.is_finite() && phase.predicted_seconds >= 0.0,
                "stored prior not finite: {} (seed {seed:e})",
                phase.predicted_seconds
            );
            // A degenerate prior means "no prior", never a 585-year one.
            prop_assert!(
                phase.predicted_seconds < 1e18,
                "saturated cast leaked through: {}",
                phase.predicted_seconds
            );
        }
        if let Some(eta) = snap.eta_seconds() {
            prop_assert!(
                eta.is_finite() && eta >= 0.0,
                "ETA blend poisoned: {eta} (seed {seed:e})"
            );
        }
        prop_assert!(snap.permille() <= 1000, "permille {}", snap.permille());
    }

    #[test]
    fn non_finite_seeds_are_dropped_to_no_prior(kind in 0usize..3) {
        let seed = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][kind];
        let p = Progress::new();
        p.set_predicted_seconds(Phase::Stage, seed);
        let snap = p.snapshot();
        let stage = snap
            .phases
            .iter()
            .find(|ph| ph.name == "stage")
            .expect("stage phase");
        prop_assert_eq!(stage.predicted_seconds, 0.0);
    }
}
