//! Allocation discipline of the telemetry layer, checked with a counting
//! `#[global_allocator]` (same pattern as the swap and OOC alloc tests):
//!
//! * a **disabled** handle performs *zero* heap allocations per span —
//!   the no-op path must stay free for always-on instrumentation;
//! * an **enabled** handle reaches an allocation-free steady state: after
//!   the ring is created and the histogram entry exists, recording spans
//!   (including `span_timed`) touches only pre-allocated storage.
//!
//! Lives in its own integration-test binary because it installs a global
//! allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use qsim_telemetry::Telemetry;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_never_allocate() {
    let t = Telemetry::disabled();
    let track = t.track("off");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let _outer = track.span("outer");
        let _inner = track.span_timed("inner", i, "swap_ns");
        t.record_duration_ns("swap_ns", i);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(delta, 0, "disabled telemetry allocated {delta} times");
}

#[test]
fn enabled_spans_reach_allocation_free_steady_state() {
    let t = Telemetry::enabled();
    let track = t.track("hot");

    // Warm-up: creates the ring's spine lazily if any, and the histogram
    // entry in the registry (one String + one Histogram box).
    for i in 0..64u64 {
        let _s = track.span_timed("warm", i, "stage_apply_ns");
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let _outer = track.span_id("stage", i);
        let _inner = track.span_timed("apply", i, "stage_apply_ns");
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "steady-state span recording allocated {delta} times"
    );
}
