//! # qsim-compress
//!
//! Chunked amplitude codec for the out-of-core backend (ROADMAP item 4).
//!
//! Supremacy-circuit states are highly compressible at early depth: the
//! amplitudes take few distinct values (the uniform start state decorated
//! by a handful of phase factors), so the sign/exponent/high-mantissa
//! bytes of neighbouring `Complex<R>` scalars are overwhelmingly equal.
//! The codec turns that redundancy into long zero runs in three steps:
//!
//! 1. **XOR-delta, stride 2** — each scalar's IEEE-754 bit pattern is
//!    XORed with the previous scalar of the same lane (re with previous
//!    re, im with previous im). Equal or near-equal neighbours become
//!    zeros or sparse low-bit patterns; strictly reversible by prefix
//!    XOR.
//! 2. **Byte-plane shuffle** — a Blosc-style transpose: byte `p` of every
//!    delta is gathered into plane `p`, so the (mostly zero) high planes
//!    form runs of length `2·n_amps` instead of being interleaved with
//!    the noisy mantissa bytes.
//! 3. **Run-length coding** with literal runs, short repeat runs and
//!    extended (u16-length) runs — zero planes collapse to a few bytes.
//!
//! Every encoded block is a self-describing [frame](FRAME_HEADER_LEN)
//! with a **stored-raw fallback**: when the RLE output would not beat the
//! raw bytes (late-depth, entropy-saturated states) the frame stores the
//! scalars verbatim, so an incompressible chunk never costs more than a
//! memcpy plus 16 header bytes.
//!
//! The lossless tier ([`Codec::ShuffleRle`]) is bit-exact: decode
//! reproduces the input bit patterns including NaN payloads, signed
//! zeros and denormals. The lossy tier ([`Codec::Lossy`]) masks the low
//! `bits` mantissa bits *before* the delta (truncation is the loss; the
//! rest of the pipeline stays lossless), trading fidelity for longer
//! runs in the low planes. Decoding never needs to know the codec — the
//! frame records only the payload encoding — so a reader can decode any
//! mix of frames, which is what lets checkpoint digests cover the
//! encoded bytes unchanged.

use qsim_util::complex::Complex;
use qsim_util::Real;
use std::io;

/// Frame header magic ("QZ").
pub const FRAME_MAGIC: [u8; 2] = *b"QZ";

/// Fixed frame header: magic (2) + payload encoding (1) + scalar width
/// (1) + amp offset (4, LE) + amplitude count (4, LE) + payload length
/// (4, LE).
pub const FRAME_HEADER_LEN: usize = 16;

/// Payload stored as raw little-endian scalars (fallback, or the value
/// `Codec::None` would write if framed).
const ENC_RAW: u8 = 0;
/// Payload is the XOR-delta + byte-plane shuffle + RLE pipeline.
const ENC_SHUFFLE_RLE: u8 = 1;

/// Chunk codec selection, as configured per OOC run (`--compress`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Codec {
    /// Raw chunk files, byte-identical to the pre-codec format.
    #[default]
    None,
    /// Lossless XOR-delta + byte-plane shuffle + RLE.
    ShuffleRle,
    /// Same pipeline after masking the low `bits` mantissa bits of every
    /// scalar (truncation toward zero). `bits` is clamped to the
    /// precision's mantissa width − 1 at encode time.
    Lossy(u8),
}

impl Codec {
    /// Parse a `--compress` argument: `none`, `shuffle-rle` or
    /// `lossy-<bits>` with 1 ≤ bits ≤ 51.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Codec::None),
            "shuffle-rle" => Ok(Codec::ShuffleRle),
            _ => match s.strip_prefix("lossy-") {
                Some(b) => match b.parse::<u8>() {
                    Ok(bits) if (1..=51).contains(&bits) => Ok(Codec::Lossy(bits)),
                    _ => Err(format!("bad lossy bit count '{b}' (expected 1..=51)")),
                },
                None => Err(format!(
                    "unknown codec '{s}' (expected none, shuffle-rle or lossy-<bits>)"
                )),
            },
        }
    }

    /// Canonical name, recorded in checkpoint manifests (cross-codec
    /// resume is rejected on mismatch) and telemetry.
    pub fn name(&self) -> String {
        match self {
            Codec::None => "none".to_string(),
            Codec::ShuffleRle => "shuffle-rle".to_string(),
            Codec::Lossy(bits) => format!("lossy-{bits}"),
        }
    }

    #[inline]
    pub fn is_none(&self) -> bool {
        matches!(self, Codec::None)
    }

    /// Whether decode reproduces the input bit patterns exactly.
    #[inline]
    pub fn is_lossless(&self) -> bool {
        !matches!(self, Codec::Lossy(_))
    }

    /// Bit mask applied to each scalar's pattern before encoding: all
    /// ones except the low mantissa bits a lossy tier truncates. Clamped
    /// so the mask never reaches the exponent field (f64 keeps ≥ 1
    /// mantissa bit of 52, f32 ≥ 1 of 23).
    fn mantissa_mask<R: Real>(&self) -> u64 {
        match self {
            Codec::Lossy(bits) => {
                let mantissa = if R::BYTES == 8 { 52u32 } else { 23u32 };
                let drop = (*bits as u32).min(mantissa - 1);
                !((1u64 << drop) - 1)
            }
            _ => !0u64,
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Reusable encode/decode working memory (the plane transpose buffer and
/// the RLE staging buffer), so the steady-state chunk loop does not
/// allocate per frame.
#[derive(Debug, Default)]
pub struct CodecScratch {
    planes: Vec<u8>,
    rle: Vec<u8>,
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Little-endian u64 from 1–8 bytes.
#[inline]
fn read_le(bytes: &[u8]) -> u64 {
    let mut v = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        v |= (b as u64) << (8 * i);
    }
    v
}

/// Append one encoded frame covering `amps` at amplitude offset
/// `amp_off` of its chunk. The frame is self-describing; `codec` only
/// selects the transform (and the lossy mask), it is not recorded.
pub fn encode_frame<R: Real>(
    codec: Codec,
    amp_off: usize,
    amps: &[Complex<R>],
    scratch: &mut CodecScratch,
    out: &mut Vec<u8>,
) {
    let b = R::BYTES;
    let n = amps.len();
    let raw_len = n * 2 * b;
    assert!(
        amp_off <= u32::MAX as usize && n <= u32::MAX as usize && raw_len <= u32::MAX as usize,
        "frame exceeds u32 header fields"
    );
    let mask = codec.mantissa_mask::<R>();
    let header_at = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    let mut encoding = ENC_RAW;
    if !codec.is_none() {
        // Delta + shuffle into the plane buffer: plane `p` holds byte
        // `p` of every delta, scalars in chunk order (re, im, re, …).
        let s_count = 2 * n;
        scratch.planes.clear();
        scratch.planes.resize(s_count * b, 0);
        let planes = &mut scratch.planes[..];
        let mut prev = [0u64; 2];
        for (i, a) in amps.iter().enumerate() {
            let scalars = [a.re.to_bits_u64() & mask, a.im.to_bits_u64() & mask];
            for (k, &bits) in scalars.iter().enumerate() {
                let d = if i == 0 { bits } else { bits ^ prev[k] };
                prev[k] = bits;
                let j = 2 * i + k;
                for plane in 0..b {
                    planes[plane * s_count + j] = (d >> (8 * plane)) as u8;
                }
            }
        }
        scratch.rle.clear();
        rle_encode(planes, &mut scratch.rle);
        if scratch.rle.len() < raw_len {
            out.extend_from_slice(&scratch.rle);
            encoding = ENC_SHUFFLE_RLE;
        }
    }
    if encoding == ENC_RAW {
        // Stored-raw fallback (and the Codec::None framing): masked
        // scalars verbatim, so an incompressible frame costs a memcpy.
        out.reserve(raw_len);
        for a in amps {
            out.extend_from_slice(&(a.re.to_bits_u64() & mask).to_le_bytes()[..b]);
            out.extend_from_slice(&(a.im.to_bits_u64() & mask).to_le_bytes()[..b]);
        }
    }
    let payload_len = out.len() - header_at - FRAME_HEADER_LEN;
    let h = &mut out[header_at..header_at + FRAME_HEADER_LEN];
    h[0..2].copy_from_slice(&FRAME_MAGIC);
    h[2] = encoding;
    h[3] = b as u8;
    h[4..8].copy_from_slice(&(amp_off as u32).to_le_bytes());
    h[8..12].copy_from_slice(&(n as u32).to_le_bytes());
    h[12..16].copy_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Decode a sequence of frames into `out`. Frames may land at any
/// offsets (a scattered staged file appends one frame per piece) but
/// must jointly cover `out` exactly: total decoded amplitudes ==
/// `out.len()`. All malformed inputs are [`io::ErrorKind::InvalidData`],
/// never a panic — these bytes come straight from disk.
pub fn decode_frames<R: Real>(
    bytes: &[u8],
    scratch: &mut CodecScratch,
    out: &mut [Complex<R>],
) -> io::Result<()> {
    let b = R::BYTES;
    let mut pos = 0usize;
    let mut covered = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER_LEN {
            return Err(corrupt("truncated frame header"));
        }
        let h = &bytes[pos..pos + FRAME_HEADER_LEN];
        if h[0..2] != FRAME_MAGIC {
            return Err(corrupt("bad frame magic"));
        }
        let encoding = h[2];
        if h[3] as usize != b {
            return Err(corrupt(format!(
                "frame scalar width {} != {} (cross-precision read)",
                h[3], b
            )));
        }
        let amp_off = u32::from_le_bytes(h[4..8].try_into().unwrap()) as usize;
        let n = u32::from_le_bytes(h[8..12].try_into().unwrap()) as usize;
        let payload_len = u32::from_le_bytes(h[12..16].try_into().unwrap()) as usize;
        pos += FRAME_HEADER_LEN;
        if bytes.len() - pos < payload_len {
            return Err(corrupt("truncated frame payload"));
        }
        let payload = &bytes[pos..pos + payload_len];
        pos += payload_len;
        if amp_off.checked_add(n).is_none_or(|end| end > out.len()) {
            return Err(corrupt(format!(
                "frame [{amp_off}, {amp_off}+{n}) outside chunk of {}",
                out.len()
            )));
        }
        let dst = &mut out[amp_off..amp_off + n];
        match encoding {
            ENC_RAW => {
                if payload_len != n * 2 * b {
                    return Err(corrupt("raw frame payload length mismatch"));
                }
                for (i, a) in dst.iter_mut().enumerate() {
                    let at = i * 2 * b;
                    a.re = R::from_bits_u64(read_le(&payload[at..at + b]));
                    a.im = R::from_bits_u64(read_le(&payload[at + b..at + 2 * b]));
                }
            }
            ENC_SHUFFLE_RLE => {
                let s_count = 2 * n;
                scratch.planes.clear();
                scratch.planes.resize(s_count * b, 0);
                rle_decode(payload, &mut scratch.planes)?;
                let planes = &scratch.planes[..];
                let mut prev = [0u64; 2];
                for (i, a) in dst.iter_mut().enumerate() {
                    #[allow(clippy::needless_range_loop)]
                    for k in 0..2 {
                        let j = 2 * i + k;
                        let mut d = 0u64;
                        for plane in 0..b {
                            d |= (planes[plane * s_count + j] as u64) << (8 * plane);
                        }
                        let bits = if i == 0 { d } else { d ^ prev[k] };
                        prev[k] = bits;
                        let v = R::from_bits_u64(bits);
                        if k == 0 {
                            a.re = v;
                        } else {
                            a.im = v;
                        }
                    }
                }
            }
            other => return Err(corrupt(format!("unknown frame encoding {other}"))),
        }
        covered += n;
    }
    if covered != out.len() {
        return Err(corrupt(format!(
            "frames cover {covered} of {} amplitudes",
            out.len()
        )));
    }
    Ok(())
}

// RLE token grammar (control byte `c`):
//   0x00..=0x7F  literal run of c+1 bytes (1..=128), bytes follow
//   0x80..=0xFE  repeat run of (c - 0x80 + 4) copies (4..=130) of the
//                next byte
//   0xFF         extended repeat: u16 LE length (131..=65535), then the
//                byte
// Runs shorter than 4 are cheaper as literals (1 control byte per 128
// vs 2 bytes per run), so 4 is the repeat threshold.

fn flush_literals(src: &[u8], out: &mut Vec<u8>) {
    for lit in src.chunks(128) {
        out.push((lit.len() - 1) as u8);
        out.extend_from_slice(lit);
    }
}

fn rle_encode(input: &[u8], out: &mut Vec<u8>) {
    let n = input.len();
    let mut i = 0usize;
    let mut lit = 0usize;
    while i < n {
        let v = input[i];
        let mut j = i + 1;
        while j < n && input[j] == v {
            j += 1;
        }
        let mut run = j - i;
        if run >= 4 {
            flush_literals(&input[lit..i], out);
            while run >= 4 {
                if run >= 131 {
                    let m = run.min(65535);
                    out.push(0xFF);
                    out.extend_from_slice(&(m as u16).to_le_bytes());
                    out.push(v);
                    run -= m;
                } else {
                    out.push(0x80 + (run as u8 - 4));
                    out.push(v);
                    run = 0;
                }
            }
            // A sub-4 remainder of a chopped extended run joins the next
            // literal block.
            lit = j - run;
        }
        i = j;
    }
    flush_literals(&input[lit..n], out);
}

fn rle_decode(input: &[u8], out: &mut [u8]) -> io::Result<()> {
    let mut i = 0usize;
    let mut o = 0usize;
    while i < input.len() {
        let c = input[i];
        i += 1;
        if c < 0x80 {
            let len = c as usize + 1;
            if input.len() - i < len || out.len() - o < len {
                return Err(corrupt("literal run overflows frame"));
            }
            out[o..o + len].copy_from_slice(&input[i..i + len]);
            i += len;
            o += len;
        } else {
            let len = if c == 0xFF {
                if input.len() - i < 3 {
                    return Err(corrupt("truncated extended run"));
                }
                let len = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
                i += 2;
                len
            } else {
                c as usize - 0x80 + 4
            };
            if input.len() - i < 1 {
                return Err(corrupt("truncated repeat run"));
            }
            let v = input[i];
            i += 1;
            if out.len() - o < len {
                return Err(corrupt("repeat run overflows frame"));
            }
            out[o..o + len].fill(v);
            o += len;
        }
    }
    if o != out.len() {
        return Err(corrupt(format!("RLE produced {o} of {} bytes", out.len())));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_util::{c32, c64, SplitMix64};

    fn rle_round_trip(input: &[u8]) {
        let mut enc = Vec::new();
        rle_encode(input, &mut enc);
        let mut back = vec![0u8; input.len()];
        rle_decode(&enc, &mut back).unwrap();
        assert_eq!(back, input, "rle round trip of {} bytes", input.len());
    }

    #[test]
    fn rle_edge_cases() {
        rle_round_trip(&[]);
        rle_round_trip(&[7]);
        rle_round_trip(&[1, 2, 3]);
        rle_round_trip(&[5; 4]);
        rle_round_trip(&[5; 130]);
        rle_round_trip(&[5; 131]);
        rle_round_trip(&[5; 65535]);
        rle_round_trip(&[5; 65536]); // extended run + literal remainder
        rle_round_trip(&[5; 65535 + 4]); // extended + short run
        rle_round_trip(&[0; 200_000]);
        let mut mixed = vec![1, 1, 1, 2, 2, 2, 2, 9];
        mixed.extend_from_slice(&[0; 300]);
        mixed.extend((0..500).map(|i| (i % 251) as u8));
        rle_round_trip(&mixed);
    }

    #[test]
    fn zero_runs_collapse() {
        let mut enc = Vec::new();
        rle_encode(&[0u8; 65535], &mut enc);
        assert_eq!(enc.len(), 4, "one extended run token");
    }

    fn frame_round_trip<R: Real>(codec: Codec, amps: &[Complex<R>]) -> usize {
        let mut scratch = CodecScratch::default();
        let mut bytes = Vec::new();
        encode_frame(codec, 0, amps, &mut scratch, &mut bytes);
        let mut back = vec![Complex::<R>::zero(); amps.len()];
        decode_frames(&bytes, &mut scratch, &mut back).unwrap();
        if codec.is_lossless() {
            for (a, b) in amps.iter().zip(&back) {
                assert_eq!(a.re.to_bits_u64(), b.re.to_bits_u64());
                assert_eq!(a.im.to_bits_u64(), b.im.to_bits_u64());
            }
        }
        bytes.len()
    }

    #[test]
    fn uniform_chunk_compresses_massively() {
        let amps = vec![c64::new(0.176_776_695_296_636_9, 0.0); 1 << 12];
        let encoded = frame_round_trip(Codec::ShuffleRle, &amps);
        let raw = amps.len() * 16;
        assert!(
            encoded * 100 < raw,
            "uniform chunk must compress >100x, got {raw}/{encoded}"
        );
    }

    #[test]
    fn special_values_round_trip_bit_exactly() {
        let amps = vec![
            c64::new(0.0, -0.0),
            c64::new(f64::from_bits(1), f64::from_bits(0x000f_ffff_ffff_ffff)), // denormals
            c64::new(f64::INFINITY, f64::NEG_INFINITY),
            c64::new(f64::from_bits(0x7ff8_0000_dead_beef), 1.5), // NaN payload
            c64::new(f64::MIN_POSITIVE, -f64::MAX),
        ];
        frame_round_trip(Codec::ShuffleRle, &amps);
        let amps32 = vec![
            c32::new(0.0, -0.0),
            c32::new(f32::from_bits(1), f32::from_bits(0x007f_ffff)),
            c32::new(f32::INFINITY, f32::NEG_INFINITY),
        ];
        frame_round_trip(Codec::ShuffleRle, &amps32);
    }

    #[test]
    fn incompressible_random_hits_stored_raw() {
        let mut rng = SplitMix64::new(42);
        let amps: Vec<c64> = (0..1024)
            .map(|_| {
                c64::new(
                    f64::from_bits(rng.next_u64()),
                    f64::from_bits(rng.next_u64()),
                )
            })
            .collect();
        let encoded = frame_round_trip(Codec::ShuffleRle, &amps);
        let raw = amps.len() * 16;
        assert_eq!(
            encoded,
            raw + FRAME_HEADER_LEN,
            "random bits must fall back to stored-raw (header-only overhead)"
        );
    }

    #[test]
    fn scattered_frames_reassemble() {
        let mut scratch = CodecScratch::default();
        let chunk: Vec<c64> = (0..64).map(|i| c64::new(i as f64, -1.0)).collect();
        let mut bytes = Vec::new();
        // Pieces appended out of order, as a scatter pass would.
        for &(off, len) in &[(32usize, 16usize), (0, 32), (48, 16)] {
            encode_frame(
                Codec::ShuffleRle,
                off,
                &chunk[off..off + len],
                &mut scratch,
                &mut bytes,
            );
        }
        let mut back = vec![c64::zero(); 64];
        decode_frames(&bytes, &mut scratch, &mut back).unwrap();
        assert_eq!(back, chunk);
    }

    #[test]
    fn partial_coverage_is_rejected() {
        let mut scratch = CodecScratch::default();
        let chunk = vec![c64::one(); 16];
        let mut bytes = Vec::new();
        encode_frame(Codec::ShuffleRle, 0, &chunk[..8], &mut scratch, &mut bytes);
        let mut back = vec![c64::zero(); 16];
        let err = decode_frames(&bytes, &mut scratch, &mut back).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let mut scratch = CodecScratch::default();
        let mut out = vec![c64::zero(); 4];
        for bad in [
            &b"QZ"[..],                                                // truncated header
            &[0u8; FRAME_HEADER_LEN],                                  // bad magic
            &[b'Q', b'Z', 9, 8, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0],   // unknown encoding
            &[b'Q', b'Z', 0, 4, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0],   // wrong width
            &[b'Q', b'Z', 0, 8, 0, 0, 0, 0, 4, 0, 255, 0, 0, 0, 0, 0], // truncated payload
        ] {
            assert!(decode_frames::<f64>(bad, &mut scratch, &mut out).is_err());
        }
    }

    #[test]
    fn lossy_masks_low_mantissa_and_nothing_else() {
        let amps = vec![c64::new(std::f64::consts::PI, -std::f64::consts::E); 8];
        let mut scratch = CodecScratch::default();
        let mut bytes = Vec::new();
        encode_frame(Codec::Lossy(8), 0, &amps, &mut scratch, &mut bytes);
        let mut back = vec![c64::zero(); 8];
        decode_frames(&bytes, &mut scratch, &mut back).unwrap();
        for (a, b) in amps.iter().zip(&back) {
            assert_eq!(b.re.to_bits() & 0xff, 0, "low mantissa bits dropped");
            assert_eq!(a.re.to_bits() & !0xffu64, b.re.to_bits());
            assert_eq!(a.im.to_bits() & !0xffu64, b.im.to_bits());
            assert!((a.re - b.re).abs() < 1e-13);
        }
        // Lossy bit counts are clamped below the exponent at f32.
        let amps32 = vec![c32::new(1.25, -3.5); 4];
        let mut b32 = Vec::new();
        encode_frame(Codec::Lossy(51), 0, &amps32, &mut scratch, &mut b32);
        let mut back32 = vec![c32::zero(); 4];
        decode_frames(&b32, &mut scratch, &mut back32).unwrap();
        for b in &back32 {
            assert!(b.re.is_finite() && b.re > 0.0, "exponent/sign preserved");
        }
    }

    #[test]
    fn codec_parse_and_names() {
        assert_eq!(Codec::parse("none"), Ok(Codec::None));
        assert_eq!(Codec::parse("shuffle-rle"), Ok(Codec::ShuffleRle));
        assert_eq!(Codec::parse("lossy-8"), Ok(Codec::Lossy(8)));
        assert!(Codec::parse("lossy-0").is_err());
        assert!(Codec::parse("lossy-52").is_err());
        assert!(Codec::parse("gzip").is_err());
        for c in [Codec::None, Codec::ShuffleRle, Codec::Lossy(12)] {
            assert_eq!(Codec::parse(&c.name()), Ok(c));
        }
        assert!(Codec::None.is_none() && Codec::None.is_lossless());
        assert!(Codec::ShuffleRle.is_lossless());
        assert!(!Codec::Lossy(8).is_lossless());
    }
}
