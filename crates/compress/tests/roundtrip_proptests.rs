//! Property tests: the codec round-trips bit-exactly at both precisions
//! for every input class the OOC engine can produce — smooth early-depth
//! states, all-zero chunks, denormal-heavy tails and incompressible
//! random bit patterns (which must hit the stored-raw fallback rather
//! than expand).

use proptest::prelude::*;
use qsim_compress::{decode_frames, encode_frame, Codec, CodecScratch, FRAME_HEADER_LEN};
use qsim_util::complex::Complex;
use qsim_util::Real;

/// Bit-exact equality (distinguishes -0.0 from 0.0, preserves NaN bits).
fn assert_bits_eq<R: Real>(a: &[Complex<R>], b: &[Complex<R>]) -> Result<(), String> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.re.to_bits_u64() != y.re.to_bits_u64() || x.im.to_bits_u64() != y.im.to_bits_u64() {
            return Err(format!("amp {i}: {x:?} != {y:?}"));
        }
    }
    Ok(())
}

fn round_trip<R: Real>(codec: Codec, amps: &[Complex<R>]) -> Result<usize, String> {
    let mut scratch = CodecScratch::default();
    let mut bytes = Vec::new();
    encode_frame(codec, 0, amps, &mut scratch, &mut bytes);
    let mut back = vec![Complex::<R>::zero(); amps.len()];
    decode_frames(&bytes, &mut scratch, &mut back).map_err(|e| e.to_string())?;
    assert_bits_eq(amps, &back)?;
    Ok(bytes.len())
}

/// One amplitude drawn from the classes the engine produces: smooth
/// values, exact zeros, denormals and raw random bit patterns.
fn amp_class(class: u8, bits: (u64, u64)) -> Complex<f64> {
    match class {
        0 => Complex::new(0.0, 0.0),
        1 => {
            // Smooth: few distinct magnitudes, like an early-depth state.
            let m = [0.176_776_695_296_636_9, -0.125, 0.25, 0.0];
            Complex::new(m[(bits.0 % 4) as usize], m[(bits.1 % 4) as usize])
        }
        2 => Complex::new(
            // Denormal-heavy: exponent field zero, random mantissa.
            f64::from_bits(bits.0 & 0x000f_ffff_ffff_ffff),
            f64::from_bits(bits.1 & 0x800f_ffff_ffff_ffff),
        ),
        _ => Complex::new(f64::from_bits(bits.0), f64::from_bits(bits.1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f64_chunks_round_trip_bit_exactly(
        class in 0u8..4,
        len in 1usize..600,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = qsim_util::SplitMix64::new(seed);
        let amps: Vec<Complex<f64>> = (0..len)
            .map(|_| amp_class(class, (rng.next_u64(), rng.next_u64())))
            .collect();
        let encoded = round_trip(Codec::ShuffleRle, &amps)?;
        let raw = len * 16 + FRAME_HEADER_LEN;
        prop_assert!(
            encoded <= raw,
            "frame may never beat stored-raw: {encoded} > {raw} (class {class})"
        );
        if class == 3 && len >= 64 {
            // Random bit patterns are incompressible: the fallback must
            // engage, costing exactly the header.
            prop_assert_eq!(encoded, raw, "stored-raw fallback expected");
        }
    }

    #[test]
    fn f32_chunks_round_trip_bit_exactly(
        class in 0u8..4,
        len in 1usize..600,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = qsim_util::SplitMix64::new(seed);
        let amps: Vec<Complex<f32>> = (0..len)
            .map(|_| {
                let a = amp_class(class, (rng.next_u64(), rng.next_u64()));
                match class {
                    // Keep the denormal class denormal at f32 too.
                    2 => Complex::new(
                        f32::from_bits((rng.next_u64() as u32) & 0x007f_ffff),
                        f32::from_bits((rng.next_u64() as u32) & 0x807f_ffff),
                    ),
                    3 => Complex::new(
                        f32::from_bits(rng.next_u64() as u32),
                        f32::from_bits(rng.next_u64() as u32),
                    ),
                    _ => Complex::new(a.re as f32, a.im as f32),
                }
            })
            .collect();
        let encoded = round_trip(Codec::ShuffleRle, &amps)?;
        prop_assert!(encoded <= len * 8 + FRAME_HEADER_LEN);
    }

    #[test]
    fn lossy_is_idempotent_and_bounded(
        bits in 1u8..24,
        len in 1usize..300,
        seed in 0u64..u64::MAX,
    ) {
        // Encoding already-truncated values must be lossless: masking is
        // idempotent, so a lossy resume re-encodes its own output
        // bit-exactly.
        let mut rng = qsim_util::Xoshiro256::seed_from_u64(seed);
        let mask = !((1u64 << bits) - 1);
        let amps: Vec<Complex<f64>> = (0..len)
            .map(|_| {
                Complex::new(
                    f64::from_bits((rng.next_f64().to_bits()) & mask),
                    f64::from_bits(((-rng.next_f64()).to_bits()) & mask),
                )
            })
            .collect();
        round_trip(Codec::Lossy(bits), &amps)?;
    }
}
