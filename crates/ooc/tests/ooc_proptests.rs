//! Property-based bit-exactness of the out-of-core engine.
//!
//! The OOC data path — batched stage runs, pipelined IO, the fused
//! external all-to-all — is pure data movement around the exact same
//! compiled-stage kernels the distributed engine runs, so for the same
//! schedule, kernel config and tile budget the amplitudes must be
//! **bitwise** identical (`max_dist == 0.0`, not a tolerance) to a
//! [`DistSimulator`] run, across random circuits, chunk counts, prefetch
//! depths, batching on/off and stage segmentation. Likewise pipelining
//! itself must be invisible: the synchronous per-gate baseline and the
//! fully pipelined compiled engine agree bit-for-bit.
//!
//! Against the *single-node* oracle the schedules differ (different
//! fusion clustering ⇒ different FP evaluation order), so that
//! comparison gets a tolerance.

use proptest::prelude::*;
use qsim_core::dist::{DistConfig, DistSimulator};
use qsim_core::single::{strip_initial_hadamards, SingleNodeSimulator};
use qsim_kernels::apply::KernelConfig;
use qsim_ooc::{OocConfig, OocSimulator, ScratchDir};
use qsim_sched::{plan, segment_stages, SchedulerConfig};
use qsim_util::complex::max_dist;
use qsim_util::Xoshiro256;

/// A random circuit mixing dense (H, √X, √Y, CNOT) and diagonal
/// (T, Z, CZ) gates — enough variety to exercise dense clusters,
/// diagonal fusion, and rank-dependent diagonal application.
fn random_circuit(n: u32, n_gates: usize, seed: u64) -> qsim_circuit::Circuit {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut c = qsim_circuit::Circuit::new(n);
    for _ in 0..n_gates {
        let q = (rng.next_u64() % n as u64) as u32;
        let mut q2 = (rng.next_u64() % n as u64) as u32;
        if q2 == q {
            q2 = (q + 1) % n;
        }
        match rng.next_u64() % 8 {
            0 => c.h(q),
            1 => c.t(q),
            2 => c.sqrt_x(q),
            3 => c.sqrt_y(q),
            4 => c.z(q),
            5 => c.cz(q, q2),
            6 => c.cnot(q, q2),
            _ => c.x(q),
        };
    }
    c
}

fn assert_ooc_bit_exact(
    n: u32,
    n_gates: usize,
    seed: u64,
    g: u32,
    prefetch_depth: usize,
    batch_runs: bool,
    segment_ops: usize,
) {
    let c = random_circuit(n, n_gates, seed);
    let (exec, uniform) = strip_initial_hadamards(&c);
    let l = n - g;
    // The greedy planner can livelock on adversarial random circuits at
    // small l (a scheduler limitation unrelated to the OOC data path);
    // discard those draws rather than constrain the generator.
    let planned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        plan(&exec, &SchedulerConfig::distributed(l, 3))
    }));
    let Ok(schedule) = planned else { return };
    let schedule = segment_stages(&schedule, segment_ops);
    schedule.verify(&exec);
    // Pin the tile explicitly so OOC and dist compile identical stage
    // plans regardless of what auto-tuning would pick.
    let tile = Some(l.min(5));

    let dist = DistSimulator::new(DistConfig {
        n_ranks: 1 << g,
        kernel: KernelConfig::sequential(),
        gather_state: true,
        tile_qubits: tile,
        ..Default::default()
    })
    .run(&exec, &schedule, uniform);
    let oracle = dist.state.as_ref().expect("gathered state");

    let dir = ScratchDir::new("prop_pipe");
    let mut sim = OocSimulator::new(OocConfig {
        prefetch_depth,
        batch_runs,
        tile_qubits: tile,
        ..OocConfig::sequential()
    });
    let (out, state) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();
    assert_eq!(
        max_dist(&state, oracle),
        0.0,
        "OOC (depth={prefetch_depth}, batch={batch_runs}, seg={segment_ops}) \
         diverged bitwise from the distributed engine"
    );
    assert_eq!(out.norm, dist.norm, "norm reductions must match bitwise");
    // Workload-driven ratio bound: whatever the pipeline measured, the
    // derived overlap fraction must be a valid fraction.
    let f = out.io.overlap_fraction();
    assert!(
        (0.0..=1.0).contains(&f),
        "pipelined run reported overlap_fraction {f} outside [0, 1]"
    );

    // Pipelining + batching + compiled compute must be invisible next to
    // the synchronous per-gate baseline.
    let dir = ScratchDir::new("prop_sync");
    let mut sync = OocSimulator::new(OocConfig {
        tile_qubits: tile,
        ..OocConfig::sync_baseline(KernelConfig::sequential())
    });
    let (_, sync_state) = sync.run_gather(dir.path(), &schedule, uniform).unwrap();
    assert_eq!(
        max_dist(&state, &sync_state),
        0.0,
        "pipelined engine diverged bitwise from the synchronous baseline"
    );

    // Different schedule ⇒ different rounding: tolerance, not bitwise.
    let single = SingleNodeSimulator::default().run(&c);
    assert!(
        max_dist(&state, single.state.amplitudes()) < 1e-9,
        "OOC result diverged from the single-node oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ooc_is_bit_exact_against_dist(
        n in 6u32..=8,
        n_gates in 8usize..40,
        seed in 0u64..10_000,
        g in 1u32..=3,
        prefetch_depth in 1usize..=4,
        batch in 0u8..2,
        segment_ops in 1usize..=3,
    ) {
        assert_ooc_bit_exact(n, n_gates, seed, g, prefetch_depth, batch == 1, segment_ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `IoStats::overlap_fraction` is a derived ratio and must stay in
    /// [0, 1] for *any* accumulation of non-negative counters — including
    /// blocked time exceeding raw IO time (clock skew between the compute
    /// loop and the IO threads) and the zero-IO degenerate case.
    #[test]
    fn io_stats_overlap_fraction_bounded(
        read in 0.0f64..1e6,
        write in 0.0f64..1e6,
        wait in 0.0f64..4e6,
        compute in 0.0f64..1e6,
        bytes_read in 0u64..=1u64 << 40,
        bytes_written in 0u64..=1u64 << 40,
        loops in prop::collection::vec((0.0f64..1e3, 0.0f64..1e3), 0..8),
    ) {
        let mut io = qsim_ooc::IoStats {
            bytes_read,
            bytes_written,
            read_seconds: read,
            write_seconds: write,
            io_wait_seconds: wait,
            compute_seconds: compute,
            ..qsim_ooc::IoStats::default()
        };
        let f = io.overlap_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "overlap_fraction {} out of [0, 1]", f);
        // Folding in compute-loop contributions (the satellite-fixed
        // single constructor both pass modes use) must preserve the bound.
        for (w, c) in loops {
            io.merge(&qsim_ooc::IoStats::compute_loop(w, c));
            let f = io.overlap_fraction();
            prop_assert!((0.0..=1.0).contains(&f), "after merge: overlap_fraction {} out of [0, 1]", f);
        }
    }
}

/// One deterministic worst-case-ish instance so a plain `cargo test`
/// exercises the full matrix even if proptest shrinks elsewhere.
#[test]
fn ooc_bit_exact_pinned_case() {
    assert_ooc_bit_exact(8, 32, 4321, 2, 2, true, 1);
}
