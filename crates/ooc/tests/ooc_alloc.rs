//! The zero-allocation invariant of the out-of-core chunk loop: once
//! the buffer pools are prewarmed and the reader/writer file handles are
//! open, streaming every chunk through read → compiled compute → write
//! performs no heap allocations at all — file IO goes straight between
//! the chunk files and pooled aligned buffers (no intermediate byte
//! vectors), and the staged scatter path reuses pooled wire buffers.
//!
//! Lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_core::single::strip_initial_hadamards;
use qsim_core::{compile_stage, execute_compiled_stage};
use qsim_kernels::apply::KernelConfig;
use qsim_kernels::SweepStats;
use qsim_ooc::{BufferPool, ChunkStore, ScratchDir};
use qsim_sched::{plan, SchedulerConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_chunk_loop_does_not_allocate() {
    const L: u32 = 8;
    const G: u32 = 2;
    let n_chunks = 1usize << G;
    let piece = (1usize << L) >> G;

    // A real stage off the planner, compiled with a tile covering the
    // whole chunk (contiguous ⇒ the tiled pass needs no gather scratch)
    // at one thread (no pool bookkeeping inside the loop).
    let c = supremacy_circuit(&SupremacySpec {
        rows: 2,
        cols: 5,
        depth: 10,
        seed: 9,
    });
    let (exec, _) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::distributed(L, 3));
    let kernel = KernelConfig::sequential();
    let stage = compile_stage(&schedule.stages[0].ops, L, &kernel, L);

    let dir = ScratchDir::new("alloc");
    let mut store = ChunkStore::create_uniform(dir.path(), L, G).unwrap();
    let mut chunk_pool = BufferPool::new(store.chunk_len());
    let mut wire_pool = BufferPool::new(piece);
    chunk_pool.prewarm(2);
    wire_pool.prewarm(2);
    let reader = store.reader().unwrap();
    let writer = store.writer().unwrap();
    let stats = SweepStats::default();

    struct Loop<'a> {
        chunk_pool: &'a mut BufferPool,
        wire_pool: &'a mut BufferPool,
        reader: qsim_ooc::ChunkReader,
        writer: qsim_ooc::ChunkWriter,
        stats: SweepStats,
    }
    impl Loop<'_> {
        fn sweep(
            &mut self,
            n_chunks: usize,
            piece: usize,
            stage: &qsim_core::CompiledStage,
        ) -> u64 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            for c in 0..n_chunks {
                let mut buf = self.chunk_pool.get();
                self.reader.read_into(c, &mut buf).unwrap();
                execute_compiled_stage(&mut buf, stage, c, 1, &mut self.stats);
                self.writer.write_chunk_from(c, &buf).unwrap();
                for dst in 0..n_chunks {
                    let mut wire = self.wire_pool.get();
                    wire.copy_from_slice(&buf[dst * piece..(dst + 1) * piece]);
                    self.writer
                        .write_staged_range(dst, c * piece, &wire)
                        .unwrap();
                    self.wire_pool.put(wire);
                }
                self.chunk_pool.put(buf);
            }
            ALLOCATIONS.load(Ordering::SeqCst) - before
        }
    }
    let mut lp = Loop {
        chunk_pool: &mut chunk_pool,
        wire_pool: &mut wire_pool,
        reader,
        writer,
        stats,
    };

    // One warm-up traversal: first use opens the lazy staged file
    // handles and settles any one-time kernel state.
    lp.sweep(n_chunks, piece, &stage);
    let allocs0 = lp.chunk_pool.allocs() + lp.wire_pool.allocs();

    let delta = (0..3)
        .map(|_| lp.sweep(n_chunks, piece, &stage))
        .sum::<u64>();
    assert_eq!(
        delta, 0,
        "steady-state chunk loop performed {delta} heap allocations across 3 traversals"
    );
    // And the pools never missed: every buffer came from prewarm.
    assert_eq!(lp.chunk_pool.allocs() + lp.wire_pool.allocs() - allocs0, 0);

    let (rs, ws) = (lp.reader.stats(), lp.writer.stats());
    store.absorb(&rs);
    store.absorb(&ws);
    assert!(store.stats().bytes_read > 0);
}
