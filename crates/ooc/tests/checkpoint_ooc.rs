//! Crash-consistency tests for the out-of-core engine: an injected
//! crash at *any* point of *any* pass's commit protocol (before the
//! manifest flips, between manifest and staged commit, after the
//! commit) must leave a directory that resumes to the bit-exact final
//! state of an uninterrupted run (`max_dist == 0.0`, not a tolerance).

use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
use qsim_circuit::Circuit;
use qsim_core::single::strip_initial_hadamards;
use qsim_ooc::{Codec, CrashPoint, OocCheckpoint, OocConfig, OocSimulator, ScratchDir};
use qsim_sched::{plan, Schedule, SchedulerConfig};
use qsim_util::c64;
use qsim_util::complex::max_dist;

/// A small supremacy instance with a multi-swap distributed plan.
fn planned(l: u32, kmax: u32) -> (Circuit, Schedule, bool) {
    let c = supremacy_circuit(&SupremacySpec {
        rows: 2,
        cols: 4,
        depth: 18,
        seed: 7,
    });
    let (exec, uniform) = strip_initial_hadamards(&c);
    let schedule = plan(&exec, &SchedulerConfig::distributed(l, kmax));
    schedule.verify(&exec);
    (exec, schedule, uniform)
}

fn ckpt_sim(pipeline: bool, checkpoint: OocCheckpoint) -> OocSimulator {
    OocSimulator::new(OocConfig {
        pipeline,
        checkpoint: Some(checkpoint),
        ..OocConfig::sequential()
    })
}

/// Uninterrupted checkpointed oracle state for the given schedule.
fn oracle(schedule: &Schedule, uniform: bool) -> (Vec<c64>, f64) {
    let dir = ScratchDir::new("ooc_ckpt_oracle");
    let mut sim = ckpt_sim(true, OocCheckpoint::new());
    let (out, state) = sim.run_gather(dir.path(), schedule, uniform).unwrap();
    (state, out.norm)
}

#[test]
fn checkpointing_does_not_change_a_single_bit() {
    let (_, schedule, uniform) = planned(6, 3);
    for pipeline in [false, true] {
        let dir = ScratchDir::new("ooc_ckpt_plain");
        let mut plain = OocSimulator::new(OocConfig {
            pipeline,
            ..OocConfig::sequential()
        });
        let (pout, pstate) = plain.run_gather(dir.path(), &schedule, uniform).unwrap();

        let dir = ScratchDir::new("ooc_ckpt_on");
        let mut ck = ckpt_sim(pipeline, OocCheckpoint::new());
        let (cout, cstate) = ck.run_gather(dir.path(), &schedule, uniform).unwrap();
        assert_eq!(
            max_dist(&cstate, &pstate),
            0.0,
            "checkpoint mode must be bit-exact (pipeline={pipeline})"
        );
        assert_eq!(cout.norm, pout.norm, "bitwise-equal reductions");
        assert!(
            dir.path().join("MANIFEST.json").exists(),
            "a finished run leaves its final manifest"
        );
    }
}

#[test]
fn crash_at_every_pass_and_point_then_resume_is_bit_exact() {
    let (_, schedule, uniform) = planned(6, 3);
    let (expect, _) = oracle(&schedule, uniform);

    // Walk crash targets upward until one no longer fires (the run has
    // fewer passes than that index) — this sweeps every (pass, point)
    // recovery window without knowing the pass count a priori.
    for point in [
        CrashPoint::BeforeManifest,
        CrashPoint::BeforeCommit,
        CrashPoint::AfterCommit,
    ] {
        let mut pass = 0usize;
        loop {
            let dir = ScratchDir::new("ooc_ckpt_crash");
            let mut cp = OocCheckpoint::new();
            cp.crash = Some((pass, point));
            match ckpt_sim(true, cp).run(dir.path(), &schedule, uniform) {
                Ok(_) => break, // past the last pass: nothing to crash
                Err(e) => assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted,
                    "injected crash must surface typed: {e}"
                ),
            }
            let mut sim = ckpt_sim(true, OocCheckpoint::resume());
            let (_, state) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();
            assert_eq!(
                max_dist(&state, &expect),
                0.0,
                "resume after crash at pass {pass} ({point:?}) diverged"
            );
            pass += 1;
        }
        assert!(pass >= 3, "schedule too shallow to exercise {point:?}");
    }
}

#[test]
fn resume_of_a_finished_run_replays_no_pass() {
    let (_, schedule, uniform) = planned(6, 3);
    let dir = ScratchDir::new("ooc_ckpt_done");
    let mut sim = ckpt_sim(true, OocCheckpoint::new());
    let (_, expect) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();

    let mut sim = ckpt_sim(true, OocCheckpoint::resume());
    let (out, state) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();
    assert_eq!(max_dist(&state, &expect), 0.0);
    // Every pass is skipped: the only traffic is the resume
    // verification read plus the final reduction read — no writes.
    assert_eq!(out.io.bytes_written, 0, "a finished run must not re-run");
}

#[test]
fn resume_rejects_a_foreign_manifest() {
    let (_, schedule, uniform) = planned(6, 3);
    let dir = ScratchDir::new("ooc_ckpt_foreign");
    ckpt_sim(true, OocCheckpoint::new())
        .run(dir.path(), &schedule, uniform)
        .unwrap();

    let other = supremacy_circuit(&SupremacySpec {
        rows: 2,
        cols: 4,
        depth: 12,
        seed: 9,
    });
    let (exec2, _) = strip_initial_hadamards(&other);
    let schedule2 = plan(&exec2, &SchedulerConfig::distributed(6, 3));
    let err = ckpt_sim(true, OocCheckpoint::resume())
        .run(dir.path(), &schedule2, uniform)
        .expect_err("foreign manifest must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "got {err}");
}

#[test]
fn resume_rejects_cross_precision_manifests() {
    let (_, schedule, uniform) = planned(6, 3);
    // Publish f64 checkpoints, then point an f32 engine at the same
    // store: the chunk files hold raw f64 amplitude bytes, so resuming
    // at another precision must fail up front.
    let dir = ScratchDir::new("ooc_ckpt_prec");
    let mut sim = ckpt_sim(true, OocCheckpoint::new());
    sim.run(dir.path(), &schedule, uniform).unwrap();
    let mut sim32 = OocSimulator::<f32>::new(OocConfig {
        checkpoint: Some(OocCheckpoint::resume()),
        ..OocConfig::sequential()
    });
    let err = sim32
        .run(dir.path(), &schedule, uniform)
        .expect_err("cross-precision resume must be rejected");
    assert!(
        err.to_string().contains("precision"),
        "unhelpful error: {err}"
    );
}

#[test]
fn compressed_crash_resume_is_bit_exact() {
    // The crash-consistency protocol digests *encoded* chunk bytes, so
    // it must survive a crash at every commit window unchanged when the
    // store holds codec frames instead of raw amplitudes. Resume reads
    // back through the decoder and must land on the bit-exact state of
    // an uninterrupted compressed run — which itself must equal the
    // uncompressed oracle, because the codec is lossless.
    let (_, schedule, uniform) = planned(6, 3);
    let (expect, _) = oracle(&schedule, uniform);

    let comp_sim = |checkpoint: OocCheckpoint| {
        OocSimulator::<f64>::new(OocConfig {
            pipeline: true,
            checkpoint: Some(checkpoint),
            compress: Codec::ShuffleRle,
            ..OocConfig::sequential()
        })
    };
    for point in [
        CrashPoint::BeforeManifest,
        CrashPoint::BeforeCommit,
        CrashPoint::AfterCommit,
    ] {
        let mut pass = 0usize;
        loop {
            let dir = ScratchDir::new("ooc_ckpt_comp_crash");
            let mut cp = OocCheckpoint::new();
            cp.crash = Some((pass, point));
            match comp_sim(cp).run(dir.path(), &schedule, uniform) {
                Ok(_) => break,
                Err(e) => assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted,
                    "injected crash must surface typed: {e}"
                ),
            }
            let mut sim = comp_sim(OocCheckpoint::resume());
            let (_, state) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();
            assert_eq!(
                max_dist(&state, &expect),
                0.0,
                "compressed resume after crash at pass {pass} ({point:?}) diverged"
            );
            pass += 1;
        }
        assert!(pass >= 3, "schedule too shallow to exercise {point:?}");
    }
}

#[test]
fn resume_rejects_cross_codec_manifests() {
    // Chunk records are raw bytes under `none` and self-describing
    // frames under a codec; resuming with a different codec than the
    // manifest records would mis-read every record, so it must be
    // rejected up front — in both directions.
    let (_, schedule, uniform) = planned(6, 3);
    let codec_sim = |codec: Codec, checkpoint: OocCheckpoint| {
        OocSimulator::<f64>::new(OocConfig {
            pipeline: true,
            checkpoint: Some(checkpoint),
            compress: codec,
            ..OocConfig::sequential()
        })
    };
    for (wrote, resumes) in [
        (Codec::ShuffleRle, Codec::None),
        (Codec::None, Codec::ShuffleRle),
        (Codec::ShuffleRle, Codec::Lossy(8)),
    ] {
        let dir = ScratchDir::new("ooc_ckpt_codec");
        codec_sim(wrote, OocCheckpoint::new())
            .run(dir.path(), &schedule, uniform)
            .unwrap();
        let err = codec_sim(resumes, OocCheckpoint::resume())
            .run(dir.path(), &schedule, uniform)
            .expect_err("cross-codec resume must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "got {err}");
        assert!(err.to_string().contains("codec"), "unhelpful error: {err}");
    }
}

#[test]
fn resume_without_a_manifest_is_a_fresh_start() {
    let (_, schedule, uniform) = planned(6, 3);
    let (expect, _) = oracle(&schedule, uniform);
    let dir = ScratchDir::new("ooc_ckpt_fresh");
    let mut sim = ckpt_sim(true, OocCheckpoint::resume());
    let (_, state) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();
    assert_eq!(max_dist(&state, &expect), 0.0);
}
