//! Out-of-core schedule execution.
//!
//! Mirrors `qsim_core::dist::run_rank` with chunk files in place of
//! ranks, batched and pipelined so the disk is touched as rarely — and
//! as concurrently — as possible:
//!
//! * **Stage-run batching** (`batch_runs`): consecutive swap-free stages
//!   form a single *run* ([`qsim_sched::plan_runs`]); each chunk
//!   residency applies every op of the run before writeback, so
//!   full-state traversals drop from one per stage to one per swap
//!   boundary (`runs == n_swaps() + 1`), independent of how finely the
//!   schedule was segmented for checkpointing.
//! * **Async double-buffering** (`pipeline`): every pass — stage runs
//!   and both halves of the external all-to-all — streams through the
//!   prefetch/compute/writeback pipeline of [`crate::pipeline`], hiding
//!   `read(c+1)` / `write(c−1)` behind `compute(c)` with pooled aligned
//!   buffers (zero steady-state allocations).
//! * **Compiled-stage compute** (`compiled_stages`): per-chunk compute
//!   goes through `qsim_core::exec`'s [`CompiledStage`] — each run is
//!   compiled once and reused for all 2^g chunks (the chunk index *is*
//!   the rank id), surfacing [`SweepStats`] in [`OocOutcome`].
//!
//! Each global-to-local swap runs as a *fused* external all-to-all, the
//! same data path as the in-memory `perform_swap` with file ranges as
//! the network:
//!
//! 1. fused permute-scatter: each source chunk is read once and its
//!    permuted piece for every destination is gathered straight into the
//!    destination's staged file (no standalone permutation pass);
//! 2. fused gather-unpermute: each committed chunk is read once and the
//!    inverse permutation applied on the way back out (skipped entirely
//!    when the slots already sit at the top positions).
//!
//! Disk traffic per swap is thus ≤ 2 state reads + 2 state writes (the
//! classic permute/transpose/unpermute pipeline takes 6 traversals) —
//! constant per swap, which is why the paper's 2-swap schedules make
//! SSD-resident states viable (§5). The final norm/entropy reduction is
//! folded into the last run's compute pass, so it costs no extra
//! traversal.

use crate::chunkstore::{BufferPool, ChunkStore, IoStats};
use crate::pipeline::{run_pass, PassConfig};
use qsim_compress::Codec;
use qsim_core::checkpoint::{schedule_fingerprint, Manifest, MANIFEST_VERSION};
use qsim_core::dist::{apply_rank_diagonal_amps, physical_to_logical, slots_to_top_permutation};
use qsim_core::exec::{compile_stages, execute_compiled_stage, resolve_tile_qubits};
use qsim_core::SimError;
use qsim_kernels::apply::{apply_gate, ApplyDispatch, KernelConfig, OptLevel};
use qsim_kernels::parallel::par_gather;
use qsim_kernels::specialized;
use qsim_kernels::{SweepDispatch, SweepStats};
use qsim_sched::{plan_runs, Schedule, StageOp, StageRun, SwapOp};
use qsim_telemetry::{Telemetry, TrackHandle};
use qsim_util::align::AlignedVec;
use qsim_util::complex::Complex;
use qsim_util::Real;
use std::path::Path;

/// Out-of-core engine configuration. The default is the full pipeline;
/// [`OocConfig::sync_baseline`] is the synchronous per-stage engine the
/// benchmarks (and the bit-exactness proptests) compare against.
#[derive(Clone, Debug)]
pub struct OocConfig {
    pub kernel: KernelConfig,
    /// Overlap chunk IO with compute on dedicated prefetch/writeback
    /// threads.
    pub pipeline: bool,
    /// Chunk buffers in flight when pipelined (≥ 1).
    pub prefetch_depth: usize,
    /// Batch consecutive swap-free stages into one traversal.
    pub batch_runs: bool,
    /// Route per-chunk compute through the compiled tiled stage
    /// executor (requires `OptLevel::Blocked`; falls back per-gate
    /// otherwise).
    pub compiled_stages: bool,
    /// Tile budget (log2 amplitudes) for compiled stages; `None` uses
    /// the measured auto-tune size.
    pub tile_qubits: Option<u32>,
    /// Chunk codec on the IO path: encode on writeback, decode on
    /// prefetch, both hidden behind compute when pipelined. The default
    /// [`Codec::None`] keeps the raw on-disk format byte for byte;
    /// [`Codec::ShuffleRle`] is lossless (bit-exact state);
    /// [`Codec::Lossy`] truncates low mantissa bits before encoding.
    pub compress: Codec,
    /// Span/metrics sink. The engine records its timeline on the
    /// `ooc.compute` / `ooc.prefetch` / `ooc.writeback` tracks and
    /// publishes `IoStats`/`SweepStats` under the `ooc.*` metric prefix;
    /// the default disabled handle makes all of it a no-op.
    pub telemetry: Telemetry,
    /// Crash-consistent checkpointing: after every streaming *pass*
    /// (stage run, swap scatter, swap unpermute), publish a manifest and
    /// promote the pass's staged chunks, so a crash anywhere resumes
    /// from the last completed pass. `None` (the default) runs the
    /// original non-checkpointed data path, byte for byte.
    pub checkpoint: Option<OocCheckpoint>,
}

/// Checkpoint/restart policy for an OOC run. The chunk store directory
/// doubles as the checkpoint directory: the manifest sits next to the
/// chunk files it describes.
#[derive(Clone, Debug, Default)]
pub struct OocCheckpoint {
    /// Resume from the directory's manifest when one exists (a missing
    /// manifest is a fresh start, not an error — the crash may have
    /// landed before the first checkpoint was published).
    pub resume: bool,
    /// Fault injection: abort with [`std::io::ErrorKind::Interrupted`]
    /// at the given point of the given pass's commit protocol.
    pub crash: Option<(usize, CrashPoint)>,
}

impl OocCheckpoint {
    /// Checkpoint every pass, starting fresh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint every pass, resuming from an existing manifest.
    pub fn resume() -> Self {
        Self {
            resume: true,
            crash: None,
        }
    }
}

/// Where in a pass's commit protocol an injected crash fires. The three
/// points bracket the two durability steps (manifest publish, staged
/// commit), covering every distinct recovery window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the pass's staged chunks are durable but before the
    /// manifest flips: recovery discards the staged files and replays
    /// the pass from the previous checkpoint.
    BeforeManifest,
    /// After the manifest flips but before the staged chunks are
    /// renamed live: recovery rolls the staged files forward by digest.
    BeforeCommit,
    /// After the commit completes: recovery resumes at the next pass.
    AfterCommit,
}

/// Typed payload of an injected [`OocCheckpoint::crash`], carried
/// inside the [`std::io::ErrorKind::Interrupted`] error the engine
/// returns so the unified [`SimError`] surface
/// ([`OocSimulator::try_run`]) can recover *which* checkpoint units were
/// durable when the crash fired — without parsing the error message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedCrash {
    /// The streaming pass whose commit protocol the crash fired in.
    pub pass: usize,
    pub point: CrashPoint,
}

impl InjectedCrash {
    /// Checkpoint units durable at the instant the crash fired: the
    /// pass's own unit counts only once its commit completed.
    pub fn durable_units(&self) -> usize {
        match self.point {
            CrashPoint::AfterCommit => self.pass + 1,
            CrashPoint::BeforeManifest | CrashPoint::BeforeCommit => self.pass,
        }
    }
}

impl std::fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected crash at pass {} ({:?})", self.pass, self.point)
    }
}

impl std::error::Error for InjectedCrash {}

impl Default for OocConfig {
    fn default() -> Self {
        Self {
            kernel: KernelConfig::default(),
            pipeline: true,
            prefetch_depth: 3,
            batch_runs: true,
            compiled_stages: true,
            tile_qubits: None,
            compress: Codec::None,
            telemetry: Telemetry::disabled(),
            checkpoint: None,
        }
    }
}

impl OocConfig {
    /// Full pipeline on a single-threaded scalar kernel (deterministic;
    /// the test workhorse).
    pub fn sequential() -> Self {
        Self {
            kernel: KernelConfig::sequential(),
            ..Self::default()
        }
    }

    /// The synchronous reference engine: one traversal per stage,
    /// inline IO, per-gate compute. This is the baseline the ≥ 1.3x
    /// wall-clock acceptance is measured against.
    pub fn sync_baseline(kernel: KernelConfig) -> Self {
        Self {
            kernel,
            pipeline: false,
            prefetch_depth: 1,
            batch_runs: false,
            compiled_stages: false,
            tile_qubits: None,
            compress: Codec::None,
            telemetry: Telemetry::disabled(),
            checkpoint: None,
        }
    }
}

/// Results of an out-of-core run.
#[derive(Clone, Debug)]
pub struct OocOutcome {
    pub norm: f64,
    pub entropy: f64,
    /// Total disk traffic and pipeline-overlap accounting.
    pub io: IoStats,
    /// Compiled-executor counters (all zeros on the per-gate path).
    pub sweep: SweepStats,
    /// Stage runs executed (`== n_swaps() + 1` with batching on).
    pub runs: usize,
    pub sim_seconds: f64,
}

/// The out-of-core engine. Owns the buffer pools, so repeated runs over
/// the same geometry are allocation-free after the first. Generic over
/// the working precision `R`; the default `f64` preserves the original
/// data path byte for byte.
pub struct OocSimulator<R: SweepDispatch = f64> {
    pub config: OocConfig,
    chunk_pool: BufferPool<R>,
    wire_pool: BufferPool<R>,
    /// Double-buffer for the unpermute pass (the `+1` chunk buffer).
    scratch: Option<AlignedVec<Complex<R>>>,
}

impl<R: SweepDispatch> Default for OocSimulator<R> {
    fn default() -> Self {
        Self::new(OocConfig::default())
    }
}

impl<R: SweepDispatch> OocSimulator<R> {
    pub fn new(config: OocConfig) -> Self {
        Self {
            config,
            chunk_pool: BufferPool::default(),
            wire_pool: BufferPool::default(),
            scratch: None,
        }
    }

    /// Deterministic single-threaded pipeline (see
    /// [`OocConfig::sequential`]).
    pub fn sequential() -> Self {
        Self::new(OocConfig::sequential())
    }

    /// The stage runs this configuration executes for `schedule`:
    /// swap-bounded batches when `batch_runs`, one run per stage
    /// otherwise. `run` executes exactly this list.
    pub fn planned_runs(&self, schedule: &Schedule) -> Vec<StageRun> {
        if self.config.batch_runs {
            plan_runs(schedule)
        } else {
            schedule
                .stages
                .iter()
                .enumerate()
                .map(|(i, s)| StageRun {
                    stages: i..i + 1,
                    swap: s.swap.clone(),
                })
                .collect()
        }
    }

    /// Checkpoint units (streaming passes) `schedule` executes under
    /// this configuration: one per stage run, plus the scatter pass and
    /// — unless the slots→top permutation is the identity — the
    /// unpermute pass of every swap.
    pub fn total_passes(&self, schedule: &Schedule) -> usize {
        let l = schedule.local_qubits;
        self.planned_runs(schedule)
            .iter()
            .map(|r| {
                1 + r.swap.as_ref().map_or(0, |s| {
                    1 + usize::from(!slots_to_top_permutation(&s.local_slots, l).is_identity())
                })
            })
            .sum()
    }

    /// [`OocSimulator::run`] on the typed [`SimError`] surface shared by
    /// every backend: an injected crash whose commit completed maps to
    /// [`SimError::InjectedStop`] (with `unit` = durable passes), any
    /// other IO failure to [`SimError::Io`].
    pub fn try_run(
        &mut self,
        dir: &Path,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> Result<OocOutcome, SimError> {
        self.run(dir, schedule, init_uniform).map_err(io_to_sim)
    }

    /// [`OocSimulator::run_gather`] on the typed [`SimError`] surface
    /// (see [`OocSimulator::try_run`]).
    pub fn try_run_gather(
        &mut self,
        dir: &Path,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> Result<(OocOutcome, Vec<Complex<R>>), SimError> {
        self.run_gather(dir, schedule, init_uniform)
            .map_err(io_to_sim)
    }

    /// Execute `schedule` against a chunk store rooted at `dir`.
    /// `init_uniform` selects the supremacy starting state.
    pub fn run(
        &mut self,
        dir: &Path,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> std::io::Result<OocOutcome> {
        let l = schedule.local_qubits;
        let g = schedule.n_qubits - l;
        assert!(l >= g, "external all-to-all needs l >= g");
        let t0 = std::time::Instant::now();
        let telemetry = self.config.telemetry.clone();
        let track = telemetry.track("ooc.compute");
        let _run_span = track.span("run");
        let runs: Vec<StageRun> = self.planned_runs(schedule);
        // Checkpoint units are streaming *passes*, not stage runs: the
        // external swap commits staged chunks mid-run (scatter) and then
        // rewrites them (unpermute), so a run is not recoverable as a
        // whole — but each pass leaves the store in exactly one durable
        // generation, which is what a manifest can name.
        let total_passes: usize = self.total_passes(schedule);
        let ckpt = self.config.checkpoint.clone();
        let (mut store, cursor) = {
            let resumed = match &ckpt {
                Some(cp) if cp.resume => {
                    let _s = track.span("resume.validate");
                    match Manifest::load(dir)? {
                        Some(m) => {
                            let point = m.validate(
                                "ooc",
                                schedule,
                                R::NAME,
                                &self.config.compress.name(),
                                init_uniform,
                                total_passes,
                                1 << g,
                            )?;
                            let store = ChunkStore::open_verified_with(
                                dir,
                                l,
                                g,
                                &m.digests,
                                self.config.compress,
                            )?;
                            Some((store, point.next_unit))
                        }
                        // No manifest: the crash landed before the first
                        // checkpoint was published — start over.
                        None => None,
                    }
                }
                _ => None,
            };
            match resumed {
                Some(sc) => sc,
                None => {
                    let mut store =
                        create_store(dir, l, g, init_uniform, self.config.compress, &track)?;
                    if ckpt.is_some() {
                        // A reused directory may hold shadow files from
                        // an abandoned pass; they must not survive into
                        // the first commit.
                        store.clear_staged()?;
                    }
                    (store, 0)
                }
            }
        };
        // Seed the live-progress denominator: the unit of OOC progress
        // is the streaming pass, and a resume pre-credits nothing (only
        // the passes beyond the manifest cursor are planned).
        if let Some(p) = telemetry.progress() {
            p.set_planned_units(
                qsim_telemetry::Phase::Stream,
                total_passes.saturating_sub(cursor) as u64,
            );
            p.set_state(qsim_telemetry::RunState::Running);
        }
        let ckpt_ctx = ckpt.as_ref().map(|cp| CkptCtx {
            dir,
            schedule_hash: schedule_fingerprint(schedule),
            n_qubits: schedule.n_qubits,
            local_qubits: l,
            codec: self.config.compress.name(),
            init_uniform,
            total_passes,
            crash: cp.crash,
        });
        let checkpointing = ckpt_ctx.is_some();
        let n_chunks = store.n_chunks();
        let chunk_len = store.chunk_len();

        // Pool setup: `depth` chunk buffers feed the pipeline, one more
        // is the unpermute scratch; wire buffers stage all-to-all
        // pieces. Prewarming here makes the passes themselves miss-free
        // (`io.buffer_allocs` counts any slip).
        let depth = if self.config.pipeline {
            self.config.prefetch_depth.max(1)
        } else {
            1
        };
        let wires = if self.config.pipeline {
            (2 * depth).clamp(1, n_chunks)
        } else {
            1
        };
        self.chunk_pool.ensure_len(chunk_len);
        self.wire_pool.ensure_len(chunk_len >> g);
        if self.scratch.as_ref().is_some_and(|s| s.len() != chunk_len) {
            self.scratch = None;
        }
        // The engine-held unpermute scratch counts toward the chunk
        // population: prewarm one extra only when it must be (re)built,
        // so a repeat run over the same geometry prewarms exactly what
        // the free list already holds.
        let need_scratch = self.scratch.is_none();
        self.chunk_pool.prewarm(depth + usize::from(need_scratch));
        self.wire_pool.prewarm(wires);
        if need_scratch {
            self.scratch = Some(self.chunk_pool.get());
        }
        let allocs0 = self.chunk_pool.allocs() + self.wire_pool.allocs();

        let kernel = self.config.kernel;
        let use_compiled = self.config.compiled_stages && kernel.opt == OptLevel::Blocked;
        let tile = resolve_tile_qubits(self.config.tile_qubits, l, kernel.threads);
        // Price the planned passes with the cost model so the live ETA
        // has a prior before measured pass times take over.
        if telemetry.progress().is_some() {
            qsim_core::planner::seed_progress(
                &telemetry,
                schedule,
                std::mem::size_of::<Complex<R>>() as u64,
                tile,
                qsim_core::planner::ProgressBackend::Ooc,
            );
        }

        let mut sweep = SweepStats::default();
        // Per-chunk reduction partials, combined pairwise afterwards:
        // the chunk is the rank analogue, so summing partials as a
        // balanced binary tree reproduces the distributed engine's
        // recursive-doubling all-reduce bit for bit.
        let mut partials: Vec<(f64, f64)> = vec![(0.0, 0.0); n_chunks];
        let mut pass_no = 0usize;
        for (ri, run) in runs.iter().enumerate() {
            let _rs = track.span_id("stage run", ri as u64);
            let this_pass = pass_no;
            pass_no += 1;
            if this_pass >= cursor {
                let t_pass = std::time::Instant::now();
                let stages = &schedule.stages[run.stages.clone()];
                let compiled = use_compiled.then(|| compile_stages(stages, l, &kernel, tile));
                // Checkpointing makes the reduction a separate final read
                // pass: the last run's buffers go to *staged* files, and
                // the fold must read what the commit made live.
                let reduce = !checkpointing && ri + 1 == runs.len();
                let cfg = PassConfig {
                    pipelined: self.config.pipeline,
                    depth,
                    wires: 0,
                    telemetry: telemetry.clone(),
                };
                run_pass(
                    &mut store,
                    &mut self.chunk_pool,
                    &mut self.wire_pool,
                    &cfg,
                    |c, mut buf, sink| {
                        let _cs = track.span_timed("compute", c as u64, "stage_apply_ns");
                        match &compiled {
                            Some(cs) => {
                                for stage in cs {
                                    execute_compiled_stage(
                                        &mut buf,
                                        stage,
                                        c,
                                        kernel.threads,
                                        &mut sweep,
                                    );
                                }
                            }
                            None => {
                                for stage in stages {
                                    apply_ops_per_gate(&mut buf, &stage.ops, c, l, &kernel);
                                }
                            }
                        }
                        if reduce {
                            // Fold the final reduction into the last
                            // run's pass — it costs no extra traversal.
                            partials[c] = reduce_chunk(&buf);
                        }
                        if checkpointing {
                            sink.write_chunk_staged(c, buf)
                        } else {
                            sink.write_chunk(c, buf)
                        }
                    },
                )?;
                if let Some(ck) = &ckpt_ctx {
                    checkpoint_pass(&mut store, ck, this_pass, &track)?;
                }
                live_pass_done(
                    &telemetry,
                    &store,
                    this_pass,
                    total_passes,
                    t_pass.elapsed().as_nanos() as u64,
                );
            }
            if let Some(swap) = &run.swap {
                self.external_swap(
                    &mut store,
                    swap,
                    ri,
                    depth,
                    wires,
                    ckpt_ctx.as_ref(),
                    &mut pass_no,
                    cursor,
                    total_passes,
                )?;
            }
        }
        if runs.is_empty() || checkpointing {
            // One read pass over the final chunks: the degenerate op-free
            // schedule reduces the initial state; a checkpointed run
            // reduces here because its last pass went through staged
            // files. Bitwise identical to the folded reduction — same
            // bytes, same fold order.
            let mut buf = self.chunk_pool.get();
            for (c, partial) in partials.iter_mut().enumerate() {
                store.read_chunk_into(c, &mut buf)?;
                *partial = reduce_chunk(&buf);
            }
            self.chunk_pool.put(buf);
            store.count_traversal();
        }
        let norm = tree_sum(partials.iter().map(|p| p.0).collect());
        let entropy = tree_sum(partials.iter().map(|p| p.1).collect());

        let mut io = store.stats();
        io.buffer_allocs = self.chunk_pool.allocs() + self.wire_pool.allocs() - allocs0;
        let sim_seconds = t0.elapsed().as_secs_f64();
        if let Some(m) = telemetry.metrics() {
            io.publish_into(m, "ooc.io");
            sweep.publish_into(m, "ooc.sweep");
            m.gauge_set("ooc.sim_seconds", sim_seconds);
            m.gauge_set(
                "ooc.bytes_per_amp",
                std::mem::size_of::<Complex<R>>() as f64,
            );
            m.gauge_set("ooc.precision_bits", (R::BYTES * 8) as f64);
            m.counter_add("ooc.runs", runs.len() as u64);
            m.counter_add("ooc.compressed_bytes", io.bytes_written);
            m.gauge_set("ooc.compression_ratio", io.compression_ratio());
        }
        if let Some(p) = telemetry.progress() {
            p.set_state(qsim_telemetry::RunState::Done);
        }
        telemetry.publish_progress_gauges();
        Ok(OocOutcome {
            norm,
            entropy,
            io,
            sweep,
            runs: runs.len(),
            sim_seconds,
        })
    }

    /// Run and additionally gather the full state in logical order
    /// (testing; small n).
    pub fn run_gather(
        &mut self,
        dir: &Path,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> std::io::Result<(OocOutcome, Vec<Complex<R>>)> {
        let outcome = self.run(dir, schedule, init_uniform)?;
        let l = schedule.local_qubits;
        let g = schedule.n_qubits - l;
        let mut store = ChunkStore::<R>::open_with(dir, l, g, self.config.compress)?;
        let physical = store.to_vec()?;
        let logical = physical_to_logical(&physical, schedule.final_mapping());
        Ok((outcome, logical))
    }

    /// The fused external all-to-all realizing one full global-to-local
    /// swap.
    ///
    /// Writing `p` for the slots→top permutation and `q = p⁻¹`,
    /// destination chunk `d` must end up holding
    /// `final[x] = chunk_{p(x) >> l'}[q(...)]` — concretely, piece `s` of
    /// `d`'s exchange buffer is `buf[s·piece + t] = chunk_s[q(d·piece +
    /// t)]`, and the final contents are `final[x] = buf[p(x)]`. Pass 1
    /// produces every `buf` piece directly from a single streaming read
    /// of each source chunk (fused permute-scatter into staged file
    /// ranges); pass 2 applies the `p`-gather on the way back out (fused
    /// gather-unpermute), and is skipped when `p` is the identity. Both
    /// passes run through the same prefetch/writeback pipeline as stage
    /// runs.
    #[allow(clippy::too_many_arguments)]
    fn external_swap(
        &mut self,
        store: &mut ChunkStore<R>,
        swap: &SwapOp,
        run_index: usize,
        depth: usize,
        wires: usize,
        ck: Option<&CkptCtx>,
        pass_no: &mut usize,
        cursor: usize,
        total_passes: usize,
    ) -> std::io::Result<()> {
        let telemetry = self.config.telemetry.clone();
        let track = telemetry.track("ooc.compute");
        let _sw = track.span_timed("external swap", run_index as u64, "swap_ns");
        let l = store.local_qubits();
        let g = store.global_qubits();
        assert_eq!(swap.local_slots.len(), g as usize, "full swap expected");
        let perm = slots_to_top_permutation(&swap.local_slots, l);
        let inv = perm.inverse();
        let n_chunks = store.n_chunks();
        let piece = store.chunk_len() / n_chunks;

        // Pass 1: fused permute-scatter. Each source chunk is read
        // exactly once; its permuted piece for destination `dst` lands
        // at offset `src·piece` of `dst`'s staged file. Staging keeps
        // the live chunks readable until the whole exchange is
        // assembled; commit renames everything at once.
        let scatter_pass = *pass_no;
        *pass_no += 1;
        if scatter_pass >= cursor {
            let t_pass = std::time::Instant::now();
            let cfg = PassConfig {
                pipelined: self.config.pipeline,
                depth,
                wires,
                telemetry: telemetry.clone(),
            };
            {
                let _s = track.span_id("scatter", run_index as u64);
                run_pass(
                    store,
                    &mut self.chunk_pool,
                    &mut self.wire_pool,
                    &cfg,
                    |src, buf, sink| {
                        for dst in 0..n_chunks {
                            let mut wire = sink.take_wire()?;
                            if perm.is_identity() {
                                wire.copy_from_slice(&buf[dst * piece..(dst + 1) * piece]);
                            } else {
                                par_gather(&buf, &mut wire, |t| inv.apply(dst * piece + t));
                            }
                            sink.write_staged(dst, src * piece, wire)?;
                        }
                        sink.recycle_chunk(buf);
                        Ok(())
                    },
                )?;
            }
            match ck {
                // The pass's commit is the checkpoint commit.
                Some(ck) => checkpoint_pass(store, ck, scatter_pass, &track)?,
                None => {
                    let _s = track.span_id("commit", run_index as u64);
                    store.commit_staged()?;
                }
            }
            live_pass_done(
                &telemetry,
                store,
                scatter_pass,
                total_passes,
                t_pass.elapsed().as_nanos() as u64,
            );
        }

        // Pass 2: fused gather-unpermute — `final[x] = buf[p(x)]` places
        // the incoming qubits at the swap's slots. An identity
        // permutation means the staged assembly is already final. The
        // engine-held scratch buffer double-buffers the gather, cycling
        // with the pipeline's chunk buffers.
        if !perm.is_identity() {
            let unpermute_pass = *pass_no;
            *pass_no += 1;
            if unpermute_pass >= cursor {
                let t_pass = std::time::Instant::now();
                let _s = track.span_id("unpermute", run_index as u64);
                // The scratch buffer is installed at run start and put
                // back after every unpermute pass; if an earlier pass
                // failed mid-swap the engine may be re-entered without
                // it, which must surface as an error, not a panic.
                let mut scratch = self.scratch.take().ok_or_else(|| {
                    std::io::Error::other(
                        "unpermute scratch buffer missing (engine re-entered after a failed pass?)",
                    )
                })?;
                let cfg = PassConfig {
                    pipelined: self.config.pipeline,
                    depth,
                    wires: 0,
                    telemetry: telemetry.clone(),
                };
                let checkpointing = ck.is_some();
                run_pass(
                    store,
                    &mut self.chunk_pool,
                    &mut self.wire_pool,
                    &cfg,
                    |c, buf, sink| {
                        par_gather(&buf, &mut scratch, |x| perm.apply(x));
                        let out = std::mem::replace(&mut scratch, buf);
                        if checkpointing {
                            sink.write_chunk_staged(c, out)
                        } else {
                            sink.write_chunk(c, out)
                        }
                    },
                )?;
                self.scratch = Some(scratch);
                if let Some(ck) = ck {
                    checkpoint_pass(store, ck, unpermute_pass, &track)?;
                }
                live_pass_done(
                    &telemetry,
                    store,
                    unpermute_pass,
                    total_passes,
                    t_pass.elapsed().as_nanos() as u64,
                );
            }
        }
        Ok(())
    }
}

/// Map an OOC engine IO failure onto the typed [`SimError`] surface: an
/// [`InjectedCrash`] becomes the uniform [`SimError::InjectedStop`]
/// (with `unit` = the passes durable at the crash), everything else
/// stays an IO error.
fn io_to_sim(e: std::io::Error) -> SimError {
    if let Some(c) = e.get_ref().and_then(|r| r.downcast_ref::<InjectedCrash>()) {
        return SimError::InjectedStop {
            unit: c.durable_units(),
        };
    }
    // Manifest and chunk-digest validation surface as `InvalidData`
    // (see `CheckpointError`'s io conversion): normalize them to the
    // typed checkpoint error the in-memory engines return, so callers
    // match one variant for "durable state rejected" on every backend.
    if e.kind() == std::io::ErrorKind::InvalidData {
        return SimError::Checkpoint(e.to_string());
    }
    SimError::Io(e)
}

/// One streaming pass completed: report it to the live progress engine
/// (the Stream phase's unit) and refresh the `live.ooc.*` gauges that
/// `/status` reads mid-run — the prefetch/compute/writeback thread
/// split, overlap fraction, and cumulative disk traffic so far.
fn live_pass_done<R: Real>(
    telemetry: &Telemetry,
    store: &ChunkStore<R>,
    pass: usize,
    total_passes: usize,
    pass_ns: u64,
) {
    if let Some(p) = telemetry.progress() {
        p.set_stage(pass as u64 + 1, total_passes as u64);
    }
    telemetry.progress_unit(qsim_telemetry::Phase::Stream, pass_ns);
    if let Some(m) = telemetry.metrics() {
        let io = store.stats();
        m.gauge_set("live.ooc.io_wait_seconds", io.io_wait_seconds);
        m.gauge_set("live.ooc.compute_seconds", io.compute_seconds);
        m.gauge_set("live.ooc.read_seconds", io.read_seconds);
        m.gauge_set("live.ooc.write_seconds", io.write_seconds);
        m.gauge_set("live.ooc.overlap_fraction", io.overlap_fraction());
        m.gauge_set("live.ooc.bytes_read", io.bytes_read as f64);
        m.gauge_set("live.ooc.bytes_written", io.bytes_written as f64);
    }
}

/// Create a fresh chunk store in the engine's initial state.
fn create_store<R: Real>(
    dir: &Path,
    l: u32,
    g: u32,
    init_uniform: bool,
    codec: Codec,
    track: &TrackHandle,
) -> std::io::Result<ChunkStore<R>> {
    let _s = track.span("init");
    if init_uniform {
        ChunkStore::create_uniform_with(dir, l, g, codec)
    } else {
        ChunkStore::create_zero_state_with(dir, l, g, codec)
    }
}

/// Checkpoint bookkeeping threaded through the pass loop (everything the
/// per-pass commit needs besides the store itself).
struct CkptCtx<'a> {
    dir: &'a Path,
    schedule_hash: u64,
    n_qubits: u32,
    local_qubits: u32,
    codec: String,
    init_uniform: bool,
    total_passes: usize,
    crash: Option<(usize, CrashPoint)>,
}

impl CkptCtx<'_> {
    /// Fire the injected crash when this pass/point is the configured
    /// target.
    fn crash_at(&self, pass: usize, point: CrashPoint) -> std::io::Result<()> {
        if self.crash == Some((pass, point)) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                InjectedCrash { pass, point },
            ));
        }
        Ok(())
    }
}

/// Commit one completed pass as a checkpoint: staged bytes durable →
/// manifest flip → staged promote. A crash between any two steps is
/// recoverable (see [`CrashPoint`]): before the manifest flips the old
/// generation is intact and named; after, `open_verified` rolls the
/// staged files forward by digest.
fn checkpoint_pass<R: Real>(
    store: &mut ChunkStore<R>,
    ck: &CkptCtx,
    pass: usize,
    track: &TrackHandle,
) -> std::io::Result<()> {
    let _s = track.span_timed("checkpoint.write", pass as u64, "checkpoint_ns");
    store.sync_staged()?;
    let mut digests = Vec::with_capacity(store.n_chunks());
    for c in 0..store.n_chunks() {
        digests.push(store.staged_digest(c)?);
    }
    ck.crash_at(pass, CrashPoint::BeforeManifest)?;
    Manifest {
        version: MANIFEST_VERSION,
        engine: "ooc".to_string(),
        schedule_hash: ck.schedule_hash,
        n_qubits: ck.n_qubits,
        local_qubits: ck.local_qubits,
        precision: R::NAME.to_string(),
        codec: ck.codec.clone(),
        init_uniform: ck.init_uniform,
        rng_seed: 0,
        next_unit: pass + 1,
        total_units: ck.total_passes,
        digests,
    }
    .write_atomic(ck.dir)?;
    ck.crash_at(pass, CrashPoint::BeforeCommit)?;
    store.commit_staged()?;
    ck.crash_at(pass, CrashPoint::AfterCommit)?;
    Ok(())
}

/// Sequential norm/entropy partial over one chunk — the same fold order
/// as one rank of the distributed engine (per-amplitude `|a|²` computed
/// at the working precision, accumulated in f64).
fn reduce_chunk<R: Real>(buf: &[Complex<R>]) -> (f64, f64) {
    let (mut norm, mut entropy) = (0.0f64, 0.0f64);
    for a in buf.iter() {
        let p = a.norm_sqr().to_f64();
        norm += p;
        if p > 0.0 {
            entropy -= p * p.log2();
        }
    }
    (norm, entropy)
}

/// Balanced pairwise summation over 2^g per-chunk partials — the exact
/// association of the recursive-doubling `all_reduce_sum`, so the final
/// scalar matches the distributed reduction bitwise.
fn tree_sum(mut v: Vec<f64>) -> f64 {
    while v.len() > 1 {
        v = v.chunks(2).map(|pair| pair.iter().sum()).collect();
    }
    v.into_iter().next().unwrap_or(0.0)
}

/// The per-gate fallback compute path, branch-identical to the
/// distributed rank loop's (diagonal fused clusters go through the
/// specialized diagonal kernel, not a dense apply) so per-gate OOC and
/// per-gate dist runs are bitwise equal.
fn apply_ops_per_gate<R: Real + ApplyDispatch>(
    buf: &mut [Complex<R>],
    ops: &[StageOp],
    chunk: usize,
    l: u32,
    kernel: &KernelConfig,
) {
    for op in ops {
        match op {
            StageOp::Cluster(cl) => match cl.matrix.as_diagonal() {
                Some(diag) => {
                    let diag: Vec<Complex<R>> = diag.iter().map(|a| a.convert()).collect();
                    specialized::apply_diagonal(buf, &cl.qubits, &diag)
                }
                None => apply_gate(buf, &cl.qubits, &cl.matrix.convert::<R>(), kernel),
            },
            StageOp::Diagonal(d) => apply_rank_diagonal_amps(buf, d, chunk, l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_core::single::{strip_initial_hadamards, SingleNodeSimulator};
    use qsim_sched::{plan, segment_stages, SchedulerConfig};
    use qsim_util::c64;
    use qsim_util::complex::max_dist;

    #[test]
    fn ooc_matches_in_memory_engine() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 16,
            seed: 5,
        });
        let single = SingleNodeSimulator::default().run(&c);
        let (exec, uniform) = strip_initial_hadamards(&c);
        for g in [1u32, 2, 3] {
            let l = 9 - g;
            let schedule = plan(&exec, &SchedulerConfig::distributed(l, 3));
            schedule.verify(&exec);
            let dir = ScratchDir::new("match");
            let mut sim = OocSimulator::<f64>::sequential();
            let (out, state) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();
            assert!(
                max_dist(&state, single.state.amplitudes()) < 1e-10,
                "g={g}: {}",
                max_dist(&state, single.state.amplitudes())
            );
            assert!((out.norm - 1.0).abs() < 1e-9);
            assert!((out.entropy - single.state.entropy()).abs() < 1e-8);
            assert!(out.sweep.sweep_passes > 0, "compiled executor engaged");
        }
    }

    #[test]
    fn batching_executes_one_traversal_per_swap_boundary() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 20,
            seed: 2,
        });
        let (exec, uniform) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(7, 3));
        // Segment to one op per stage: a synchronous engine would pay
        // one traversal per op; batching must collapse each swap-free
        // span back into a single traversal.
        let seg = segment_stages(&schedule, 1);
        seg.verify(&exec);
        assert!(seg.stages.len() > schedule.stages.len());
        let swaps = seg.n_swaps() as u64;

        let dir = ScratchDir::new("runs");
        let mut sim = OocSimulator::<f64>::sequential();
        let (out, state) = sim.run_gather(dir.path(), &seg, uniform).unwrap();
        assert_eq!(out.runs, swaps as usize + 1, "runs = swap boundaries + 1");
        // Traversals: one per run + 2 per swap (scatter + unpermute), or
        // 1 per swap when the permutation is the identity.
        assert!(
            out.io.traversals <= (swaps + 1) + 2 * swaps,
            "traversals {} exceed run/swap budget {}",
            out.io.traversals,
            (swaps + 1) + 2 * swaps
        );
        assert!(out.io.traversals >= (swaps + 1) + swaps);

        // And the batched result still matches the oracle.
        let single = SingleNodeSimulator::default().run(&c);
        assert!(max_dist(&state, single.state.amplitudes()) < 1e-10);

        // Without batching, the same segmented schedule pays one
        // traversal per stage.
        let dir2 = ScratchDir::new("runs_sync");
        let mut sync =
            OocSimulator::<f64>::new(OocConfig::sync_baseline(KernelConfig::sequential()));
        let out2 = sync.run(dir2.path(), &seg, uniform).unwrap();
        assert_eq!(out2.runs, seg.stages.len());
        assert!(out2.io.traversals > out.io.traversals);
        assert_eq!(out.norm, out2.norm, "bitwise-equal reductions");
    }

    #[test]
    fn pipelined_matches_sync_bitwise() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 2,
            cols: 4,
            depth: 18,
            seed: 7,
        });
        let (exec, uniform) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(6, 3));
        let dir = ScratchDir::new("bit_sync");
        let mut sync = OocSimulator::<f64>::new(OocConfig {
            pipeline: false,
            ..OocConfig::sequential()
        });
        let (_, oracle) = sync.run_gather(dir.path(), &schedule, uniform).unwrap();
        for depth in [1usize, 2, 4] {
            let dir = ScratchDir::new("bit_pipe");
            let mut sim = OocSimulator::<f64>::new(OocConfig {
                prefetch_depth: depth,
                ..OocConfig::sequential()
            });
            let (out, state) = sim.run_gather(dir.path(), &schedule, uniform).unwrap();
            assert_eq!(
                max_dist(&state, &oracle),
                0.0,
                "pipelining must not change a single bit (depth {depth})"
            );
            assert!(out.io.overlap_fraction() >= 0.0);
        }
    }

    #[test]
    fn io_traffic_is_constant_per_swap() {
        // The §5 argument: disk traffic scales with swaps, not gates.
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 25,
            seed: 1,
        });
        let (exec, uniform) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(10, 4));
        let dir = ScratchDir::new("traffic");
        let mut sim = OocSimulator::<f64>::sequential();
        let out = sim.run(dir.path(), &schedule, uniform).unwrap();
        let state_bytes = (1u64 << 12) * 16;
        // Budget: init write + per-run stream (r+w) + per-swap fused
        // exchange (scatter r+w, unpermute r+w). The final reduction is
        // folded into the last run, so it adds nothing.
        let runs = out.runs as u64;
        let swaps = schedule.n_swaps() as u64;
        let budget = state_bytes * (1 + 2 * runs + 4 * swaps);
        let total = out.io.bytes_read + out.io.bytes_written;
        assert!(
            total <= budget,
            "disk traffic {total} exceeds swap-proportional budget {budget}"
        );
        assert_eq!(runs, swaps + 1);
    }

    #[test]
    fn repeated_runs_reuse_pooled_buffers() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 2,
            cols: 3,
            depth: 12,
            seed: 4,
        });
        let (exec, uniform) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(4, 3));
        let mut sim = OocSimulator::<f64>::sequential();
        let dir = ScratchDir::new("pool_a");
        let first = sim.run(dir.path(), &schedule, uniform).unwrap();
        let dir = ScratchDir::new("pool_b");
        let second = sim.run(dir.path(), &schedule, uniform).unwrap();
        assert_eq!(
            second.io.buffer_allocs, 0,
            "second run over the same geometry must be pool-hit only"
        );
        assert_eq!(first.norm, second.norm);
    }

    #[test]
    fn zero_state_init() {
        let mut circ = qsim_circuit::Circuit::new(4);
        circ.t(0).cz(0, 3);
        let schedule = plan(&circ, &SchedulerConfig::distributed(3, 2));
        let dir = ScratchDir::new("zero");
        let mut sim = OocSimulator::<f64>::sequential();
        let (out, state) = sim.run_gather(dir.path(), &schedule, false).unwrap();
        assert!((state[0] - c64::one()).abs() < 1e-12);
        assert!((out.norm - 1.0).abs() < 1e-12);
    }
}
