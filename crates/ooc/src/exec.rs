//! Out-of-core schedule execution.
//!
//! Mirrors `qsim_core::dist::run_rank` with chunk files in place of
//! ranks: every stage streams the chunks through memory one at a time
//! (clusters + rank-conditional diagonals), and each global-to-local swap
//! runs as a *fused* external all-to-all — the same data path as the
//! in-memory `perform_swap`, with file ranges as the network:
//!
//! 1. fused permute-scatter: each source chunk is read once and its
//!    permuted piece for every destination is gathered straight into the
//!    destination's staged file (no standalone permutation pass);
//! 2. fused gather-unpermute: each committed chunk is read once and the
//!    inverse permutation applied on the way back out (skipped entirely
//!    when the slots already sit at the top positions).
//!
//! Disk traffic per swap is thus ≤ 2 state reads + 2 state writes (the
//! classic permute/transpose/unpermute pipeline takes 6 traversals) —
//! constant per swap, which is why the paper's 2-swap schedules make
//! SSD-resident states viable (§5).

use crate::chunkstore::ChunkStore;
use qsim_core::dist::{apply_rank_diagonal, physical_to_logical, slots_to_top_permutation};
use qsim_core::StateVector;
use qsim_kernels::apply::KernelConfig;
use qsim_kernels::parallel::par_gather;
use qsim_sched::{Schedule, StageOp, SwapOp};
use qsim_util::c64;
use std::path::Path;

/// Results of an out-of-core run.
#[derive(Clone, Debug)]
pub struct OocOutcome {
    pub norm: f64,
    pub entropy: f64,
    /// Total disk traffic.
    pub io: crate::chunkstore::IoStats,
    pub sim_seconds: f64,
}

/// The out-of-core engine.
#[derive(Default)]
pub struct OocSimulator {
    pub kernel: KernelConfig,
}

impl OocSimulator {
    /// Execute `schedule` against a chunk store rooted at `dir`.
    /// `init_uniform` selects the supremacy starting state.
    pub fn run(
        &self,
        dir: &Path,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> std::io::Result<OocOutcome> {
        let l = schedule.local_qubits;
        let g = schedule.n_qubits - l;
        assert!(l >= g, "external all-to-all needs l >= g");
        let t0 = std::time::Instant::now();
        let mut store = if init_uniform {
            ChunkStore::create_uniform(dir, l, g)?
        } else {
            ChunkStore::create_zero_state(dir, l, g)?
        };

        for stage in &schedule.stages {
            // Stream every chunk through memory once per stage.
            for c in 0..store.n_chunks() {
                let amps = store.read_chunk(c)?;
                let mut state = StateVector::from_amplitudes(amps);
                for op in &stage.ops {
                    match op {
                        StageOp::Cluster(cl) => state.apply(&cl.qubits, &cl.matrix, &self.kernel),
                        StageOp::Diagonal(d) => apply_rank_diagonal(&mut state, d, c, l),
                    }
                }
                store.write_chunk(c, state.amplitudes())?;
            }
            if let Some(swap) = &stage.swap {
                external_swap(&mut store, swap, &self.kernel)?;
            }
        }

        // Final reductions, streaming.
        let mut norm = 0.0f64;
        let mut entropy = 0.0f64;
        for c in 0..store.n_chunks() {
            for a in store.read_chunk(c)? {
                let p = a.norm_sqr();
                norm += p;
                if p > 0.0 {
                    entropy -= p * p.log2();
                }
            }
        }
        Ok(OocOutcome {
            norm,
            entropy,
            io: store.stats(),
            sim_seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// Run and additionally gather the full state in logical order
    /// (testing; small n).
    pub fn run_gather(
        &self,
        dir: &Path,
        schedule: &Schedule,
        init_uniform: bool,
    ) -> std::io::Result<(OocOutcome, Vec<c64>)> {
        let outcome = self.run(dir, schedule, init_uniform)?;
        let l = schedule.local_qubits;
        let g = schedule.n_qubits - l;
        let mut store = ChunkStore::open(dir, l, g)?;
        let physical = store.to_vec()?;
        let logical = physical_to_logical(&physical, schedule.final_mapping());
        Ok((outcome, logical))
    }
}

/// The fused external all-to-all realizing one full global-to-local swap.
///
/// Writing `p` for the slots→top permutation and `q = p⁻¹`, destination
/// chunk `d` must end up holding `final[x] = chunk_{p(x) >> l'}[q(...)]`
/// — concretely, piece `s` of `d`'s exchange buffer is
/// `buf[s·piece + t] = chunk_s[q(d·piece + t)]`, and the final contents
/// are `final[x] = buf[p(x)]`. Pass 1 produces every `buf` piece directly
/// from a single streaming read of each source chunk (fused
/// permute-scatter into staged file ranges); pass 2 applies the `p`-gather
/// on the way back out (fused gather-unpermute), and is skipped when `p`
/// is the identity.
fn external_swap(
    store: &mut ChunkStore,
    swap: &SwapOp,
    kernel: &KernelConfig,
) -> std::io::Result<()> {
    let l = store.local_qubits();
    let g = store.global_qubits();
    assert_eq!(swap.local_slots.len(), g as usize, "full swap expected");
    let perm = slots_to_top_permutation(&swap.local_slots, l);
    let _ = kernel;

    let n_chunks = store.n_chunks();
    let piece = store.chunk_len() / n_chunks;
    let inv = perm.inverse();

    // Pass 1: fused permute-scatter. Each source chunk is read exactly
    // once; its permuted piece for destination `dst` lands at offset
    // `src·piece` of `dst`'s staged file. Staging keeps the live chunks
    // readable until the whole exchange is assembled; commit renames
    // everything at once.
    let mut wire = vec![c64::zero(); piece];
    for src in 0..n_chunks {
        let chunk = store.read_chunk(src)?;
        for dst in 0..n_chunks {
            if perm.is_identity() {
                wire.copy_from_slice(&chunk[dst * piece..(dst + 1) * piece]);
            } else {
                par_gather(&chunk, &mut wire, |t| inv.apply(dst * piece + t));
            }
            store.write_staged_range(dst, src * piece, &wire)?;
        }
    }
    store.commit_staged()?;

    // Pass 2: fused gather-unpermute — `final[x] = buf[p(x)]` places the
    // incoming qubits at the swap's slots. An identity permutation means
    // the staged assembly is already final.
    if !perm.is_identity() {
        let mut fin = vec![c64::zero(); store.chunk_len()];
        for c in 0..n_chunks {
            let buf = store.read_chunk(c)?;
            par_gather(&buf, &mut fin, |x| perm.apply(x));
            store.write_chunk(c, &fin)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::supremacy::{supremacy_circuit, SupremacySpec};
    use qsim_core::single::{strip_initial_hadamards, SingleNodeSimulator};
    use qsim_sched::{plan, SchedulerConfig};
    use qsim_util::complex::max_dist;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("qsim_ooc_exec_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn ooc_matches_in_memory_engine() {
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 3,
            depth: 16,
            seed: 5,
        });
        let single = SingleNodeSimulator::default().run(&c);
        let (exec, uniform) = strip_initial_hadamards(&c);
        for g in [1u32, 2, 3] {
            let l = 9 - g;
            let schedule = plan(&exec, &SchedulerConfig::distributed(l, 3));
            schedule.verify(&exec);
            let dir = tmpdir(&format!("match{g}"));
            let sim = OocSimulator {
                kernel: KernelConfig::sequential(),
            };
            let (out, state) = sim.run_gather(&dir, &schedule, uniform).unwrap();
            assert!(
                max_dist(&state, single.state.amplitudes()) < 1e-10,
                "g={g}: {}",
                max_dist(&state, single.state.amplitudes())
            );
            assert!((out.norm - 1.0).abs() < 1e-9);
            assert!((out.entropy - single.state.entropy()).abs() < 1e-8);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn io_traffic_is_constant_per_swap() {
        // The §5 argument: disk traffic scales with swaps, not gates.
        let c = supremacy_circuit(&SupremacySpec {
            rows: 3,
            cols: 4,
            depth: 25,
            seed: 1,
        });
        let (exec, uniform) = strip_initial_hadamards(&c);
        let schedule = plan(&exec, &SchedulerConfig::distributed(10, 4));
        let dir = tmpdir("traffic");
        let sim = OocSimulator {
            kernel: KernelConfig::sequential(),
        };
        let out = sim.run(&dir, &schedule, uniform).unwrap();
        let state_bytes = (1u64 << 12) * 16;
        // Budget: init write + per-stage stream (r+w) + per-swap fused
        // exchange (scatter r+w, unpermute r+w) + final read.
        let stages = schedule.stages.len() as u64;
        let swaps = schedule.n_swaps() as u64;
        let budget = state_bytes * (1 + 2 * stages + 4 * swaps + 1 + 1);
        let total = out.io.bytes_read + out.io.bytes_written;
        assert!(
            total <= budget,
            "disk traffic {total} exceeds swap-proportional budget {budget}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_state_init() {
        let mut circ = qsim_circuit::Circuit::new(4);
        circ.t(0).cz(0, 3);
        let schedule = plan(&circ, &SchedulerConfig::distributed(3, 2));
        let dir = tmpdir("zero");
        let sim = OocSimulator {
            kernel: KernelConfig::sequential(),
        };
        let (out, state) = sim.run_gather(&dir, &schedule, false).unwrap();
        assert!((state[0] - c64::one()).abs() < 1e-12);
        assert!((out.norm - 1.0).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
