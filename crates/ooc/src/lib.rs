//! # qsim-ooc
//!
//! Out-of-core (disk-backed) state-vector execution — the paper's §5
//! outlook made concrete:
//!
//! > "While the memory requirements to simulate such a large circuit are
//! > beyond what is possible today, the low amount of communication may
//! > allow the use of, e.g., solid-state drives."
//!
//! The enabling observation is the scheduler's: a depth-25 supremacy
//! circuit needs only **two** global-to-local swaps, so a state vector
//! that does not fit in DRAM touches the slow tier a constant number of
//! times. This crate plays the rank structure of `qsim-core::dist` onto a
//! directory of chunk files:
//!
//! * the *chunk index* takes the role of the rank id (the "global" bits);
//! * stage clusters stream chunk-by-chunk through a DRAM-sized window
//!   (load → fused kernels → store);
//! * a global-to-local swap becomes an **external all-to-all**: a
//!   two-pass scatter/gather transpose over the chunk files.
//!
//! The engine is a *pipelined data path*: consecutive swap-free stages
//! batch into a single traversal ([`qsim_sched::plan_runs`]), each pass
//! overlaps prefetch/compute/writeback on dedicated threads with pooled
//! aligned buffers, and per-chunk compute runs through the compiled
//! tiled stage executor.
//!
//! [`ChunkStore`] is the storage substrate with byte-level IO accounting;
//! [`OocSimulator`] executes any [`qsim_sched::Schedule`] against it and
//! must produce bit-identical amplitudes to the in-memory engines (tested
//! against both). [`ScratchDir`] keeps test/bench stores self-cleaning.

pub mod backend;
pub mod chunkstore;
pub mod exec;
mod pipeline;
pub mod scratch;

pub use backend::OocBackend;
pub use chunkstore::{BufferPool, ChunkReader, ChunkStore, ChunkWriter, IoStats};
pub use exec::{CrashPoint, InjectedCrash, OocCheckpoint, OocConfig, OocOutcome, OocSimulator};
pub use qsim_compress::Codec;
pub use scratch::ScratchDir;
